//! Software reference algorithms for the AutoGNN reproduction.
//!
//! Everything the accelerator computes in hardware exists here first as a
//! plain, well-tested software implementation:
//!
//! - [`scan`] — prefix sums, *set-partitioning* (Fig. 8) and *set-counting*
//!   (Fig. 9), the two primitives §IV-A reduces all preprocessing to;
//! - [`sort`] — LSD radix sort and merges (the Table IV `Ordering` baseline);
//! - [`ordering`] — edge ordering: sort edges by (dst, src) (§II-B);
//! - [`reshape`] — data reshaping: CSC pointer-array construction, both the
//!   sequential scan and the set-counting reformulation;
//! - [`select`] — unique random selection: the paper's bitmap/set-partition
//!   sampler plus the hash-set and reservoir-sampling baselines (Table IV);
//! - [`reindex`] — subgraph reindexing: hash-map baseline and the
//!   set-counting two-array scheme (§IV-A);
//! - [`pipeline`] — the complete software preprocessing pipeline
//!   (conversion → sampling → reindexing → subgraph conversion), the golden
//!   model the hardware simulator is verified against.
//!
//! # Examples
//!
//! ```
//! use agnn_algo::pipeline::{preprocess, SampleParams};
//! use agnn_graph::{generate, Vid};
//!
//! let coo = generate::power_law(200, 2_000, 0.8, 1);
//! let params = SampleParams::new(5, 2);
//! let out = preprocess(&coo, &[Vid(0), Vid(1)], &params, 42);
//! assert!(out.subgraph.csc.num_vertices() <= 200);
//! ```

pub mod ordering;
pub mod pipeline;
pub mod reindex;
pub mod reshape;
pub mod scan;
pub mod select;
pub mod sort;

//! Edge ordering: sort the COO edge array by (destination, source).
//!
//! "Edge ordering … begins by sorting edges primarily by their destination
//! VIDs and then secondarily by their source VIDs … this sorted edge array
//! serves as a foundational structure for the CSC format" (§II-B, Fig. 3a).

use agnn_graph::Edge;

use crate::sort::radix_sort_u64;

/// Orders edges using the standard-library comparison sort (reference
/// implementation).
///
/// # Examples
///
/// ```
/// use agnn_algo::ordering::order_edges_std;
/// use agnn_graph::{Edge, Vid};
///
/// let sorted = order_edges_std(&[Edge::new(Vid(1), Vid(2)), Edge::new(Vid(0), Vid(1))]);
/// assert_eq!(sorted[0].dst, Vid(1));
/// ```
pub fn order_edges_std(edges: &[Edge]) -> Vec<Edge> {
    let mut out = edges.to_vec();
    out.sort_by_key(|e| e.sort_key());
    out
}

/// Orders edges with LSD radix sort over the concatenated 64-bit keys — the
/// Table IV `Ordering` algorithm and the workload the UPE accelerates.
///
/// The key concatenation/deconcatenation mirrors the UPE controller workflow
/// of Fig. 15 (concatenate → sort → deconcatenate).
pub fn order_edges_radix(edges: &[Edge]) -> Vec<Edge> {
    let mut keys: Vec<u64> = edges.iter().map(|e| e.sort_key()).collect();
    radix_sort_u64(&mut keys);
    keys.into_iter().map(Edge::from_sort_key).collect()
}

/// Returns whether `edges` is ordered by (dst, src).
pub fn is_ordered(edges: &[Edge]) -> bool {
    edges.windows(2).all(|w| w[0].sort_key() <= w[1].sort_key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::{generate, Vid};
    use proptest::prelude::*;

    #[test]
    fn std_and_radix_agree_on_generated_graph() {
        let g = generate::power_law(100, 2_000, 0.9, 3);
        let a = order_edges_std(g.edges());
        let b = order_edges_radix(g.edges());
        assert_eq!(a, b);
        assert!(is_ordered(&a));
    }

    #[test]
    fn ordering_groups_shared_destinations() {
        let edges = [
            Edge::new(Vid(5), Vid(1)),
            Edge::new(Vid(2), Vid(0)),
            Edge::new(Vid(1), Vid(1)),
        ];
        let sorted = order_edges_radix(&edges);
        assert_eq!(
            sorted,
            vec![
                Edge::new(Vid(2), Vid(0)),
                Edge::new(Vid(1), Vid(1)),
                Edge::new(Vid(5), Vid(1)),
            ]
        );
    }

    #[test]
    fn empty_input() {
        assert!(order_edges_radix(&[]).is_empty());
        assert!(is_ordered(&[]));
    }

    proptest! {
        #[test]
        fn prop_radix_ordering_is_sorted_permutation(
            pairs in proptest::collection::vec((0u32..1000, 0u32..1000), 0..300),
        ) {
            let edges: Vec<Edge> = pairs.iter().map(|&p| Edge::from(p)).collect();
            let sorted = order_edges_radix(&edges);
            prop_assert!(is_ordered(&sorted));
            let mut a: Vec<u64> = edges.iter().map(|e| e.sort_key()).collect();
            let mut b: Vec<u64> = sorted.iter().map(|e| e.sort_key()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

//! The complete software GNN preprocessing pipeline.
//!
//! This is the functional specification the hardware simulator is verified
//! against: graph conversion (edge ordering → data reshaping), graph
//! sampling (uni-random selection → subgraph reindexing), and the final
//! conversion of the sampled COO into CSC (§II-B, Fig. 14).

use std::collections::{HashMap, HashSet};

use agnn_graph::{Coo, Csc, Edge, Vid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ordering::order_edges_radix;

/// How neighbors are drawn across a layer (§II-B, Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Each frontier node independently samples `k` of its own neighbors —
    /// "preferred for its higher accuracy".
    #[default]
    NodeWise,
    /// All neighbor arrays of a layer are aggregated and `k` nodes are drawn
    /// from the aggregate — "faster, completing the process in fewer steps".
    LayerWise,
}

/// Sampling hyperparameters (Table III: `k = 10`, 2-layer GraphSAGE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleParams {
    /// Neighbors sampled per node (node-wise) or per layer (layer-wise).
    pub k: usize,
    /// Number of GNN layers (hops).
    pub layers: u32,
    /// Node-wise or layer-wise selection.
    pub strategy: SelectionStrategy,
}

impl SampleParams {
    /// Node-wise parameters with fan-out `k` over `layers` hops.
    pub fn new(k: usize, layers: u32) -> Self {
        SampleParams {
            k,
            layers,
            strategy: SelectionStrategy::NodeWise,
        }
    }

    /// Layer-wise parameters with `k` draws per layer.
    pub fn layer_wise(k: usize, layers: u32) -> Self {
        SampleParams {
            k,
            layers,
            strategy: SelectionStrategy::LayerWise,
        }
    }

    /// Total node draws the analytic cost model expects:
    /// `s = b·(k^(l+1) − 1)/(k − 1)` (Table I; see `DESIGN.md` on the
    /// geometric-sum reading of the paper's formula). Saturates at
    /// `u64::MAX` when the geometric sum overflows — large `k`·`layers`
    /// products exceed any physical frontier long before `2^64` draws.
    pub fn expected_selections(&self, batch_size: usize) -> u64 {
        let k = self.k as u64;
        let b = batch_size as u64;
        if k <= 1 {
            return b.saturating_mul(u64::from(self.layers) + 1);
        }
        match self.layers.checked_add(1).and_then(|e| k.checked_pow(e)) {
            Some(power) => b.saturating_mul((power - 1) / (k - 1)),
            None => u64::MAX,
        }
    }
}

/// One selection pool as processed by a UPE: its size and the positions
/// drawn from it, in draw order. The hardware simulator replays these
/// through its one-hot extraction network and charges one cycle per draw.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolRecord {
    /// The frontier nodes whose neighbor arrays form the pool: one parent
    /// for node-wise selection, the whole layer frontier for layer-wise.
    pub parents: Vec<Vid>,
    /// Number of candidate elements in the pool.
    pub pool_len: u32,
    /// Drawn positions, in draw order.
    pub positions: Vec<u32>,
}

/// The raw product of graph sampling, still in original VID space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleTrace {
    /// Sampled edges `(src = chosen neighbor, dst = parent)`.
    pub edges: Vec<Edge>,
    /// VIDs in the order they are handed to the reindexer: batch nodes first,
    /// then every selection in draw order (duplicates included — "loops in
    /// the parent-child relationships may lead to repeated vertices").
    pub node_stream: Vec<Vid>,
    /// Total selection draws performed.
    pub selections: usize,
    /// Total neighbor-pool elements examined (drives bandwidth models).
    pub pool_elements: usize,
    /// Per-pool draw records grouped by layer, in processing order.
    pub layers: Vec<Vec<PoolRecord>>,
}

/// A reindexed, CSC-converted sampled subgraph — what AutoGNN ships to the
/// GPU (§V-A).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampledSubgraph {
    /// The subgraph in CSC form over renumbered VIDs.
    pub csc: Csc,
    /// `new_to_old[new.index()] == old`: the embedding-gather list (Fig. 4b).
    pub new_to_old: Vec<Vid>,
    /// Renumbered ids of the batch nodes, in batch order.
    pub batch_new: Vec<Vid>,
}

impl SampledSubgraph {
    /// Bytes transferred to the GPU: subgraph CSC plus the gather list.
    pub fn byte_size(&self) -> u64 {
        self.csc.byte_size() + self.new_to_old.len() as u64 * 4
    }
}

/// Workload counters used by every timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessStats {
    /// Edges sorted during full-graph edge ordering.
    pub edges_ordered: usize,
    /// Pointer-array entries built during full-graph data reshaping.
    pub pointer_entries: usize,
    /// Selection draws during uni-random selection.
    pub selections: usize,
    /// Neighbor-pool elements examined during selection.
    pub pool_elements: usize,
    /// VIDs pushed through subgraph reindexing.
    pub reindex_inputs: usize,
    /// Edges of the sampled subgraph (sorted again for its CSC).
    pub subgraph_edges: usize,
    /// Unique nodes of the sampled subgraph.
    pub subgraph_nodes: usize,
}

/// Full preprocessing result: the subgraph plus its workload counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PreprocessOutput {
    /// The converted, sampled, reindexed subgraph.
    pub subgraph: SampledSubgraph,
    /// Workload counters for the timing models.
    pub stats: PreprocessStats,
}

/// Graph conversion: edge ordering (radix) followed by data reshaping.
///
/// # Examples
///
/// ```
/// use agnn_algo::pipeline::convert;
/// use agnn_graph::{Coo, Csc};
///
/// let coo = Coo::from_pairs(3, [(2, 0), (0, 1), (1, 0)])?;
/// assert_eq!(convert(&coo), Csc::from_coo(&coo));
/// # Ok::<(), agnn_graph::GraphError>(())
/// ```
pub fn convert(coo: &Coo) -> Csc {
    let ordered = order_edges_radix(coo.edges());
    Csc::from_sorted_edges(coo.num_vertices(), &ordered)
        .expect("radix ordering produces sorted, in-range edges")
}

/// Graph sampling over a converted graph: `params.layers` hops of uni-random
/// selection starting from `batch`.
///
/// Deterministic in the RNG; the hardware engine consumes the RNG in exactly
/// the same order, so software and hardware traces are bit-identical.
pub fn sample(csc: &Csc, batch: &[Vid], params: &SampleParams, rng: &mut impl Rng) -> SampleTrace {
    let mut trace = SampleTrace {
        node_stream: batch.to_vec(),
        ..SampleTrace::default()
    };
    let mut frontier = dedup_preserving_order(batch);
    for _ in 0..params.layers {
        if frontier.is_empty() {
            break;
        }
        let mut layer_records = Vec::new();
        let selected = match params.strategy {
            SelectionStrategy::NodeWise => {
                let mut layer_selected = Vec::new();
                for &parent in &frontier {
                    let pool = csc.neighbors(parent);
                    trace.pool_elements += pool.len();
                    let positions = crate::select::uni_random_positions(pool.len(), params.k, rng);
                    trace.selections += positions.len();
                    for &position in &positions {
                        let src = pool[position];
                        trace.edges.push(Edge::new(src, parent));
                        trace.node_stream.push(src);
                        layer_selected.push(src);
                    }
                    layer_records.push(PoolRecord {
                        parents: vec![parent],
                        pool_len: pool.len() as u32,
                        positions: positions.iter().map(|&p| p as u32).collect(),
                    });
                }
                layer_selected
            }
            SelectionStrategy::LayerWise => {
                // Aggregate every neighbor array of the layer (§V-A).
                let mut pool: Vec<(Vid, Vid)> = Vec::new();
                for &parent in &frontier {
                    for &src in csc.neighbors(parent) {
                        pool.push((src, parent));
                    }
                }
                trace.pool_elements += pool.len();
                let positions = crate::select::uni_random_positions(pool.len(), params.k, rng);
                trace.selections += positions.len();
                let mut layer_selected = Vec::new();
                for &position in &positions {
                    let (src, parent) = pool[position];
                    trace.edges.push(Edge::new(src, parent));
                    trace.node_stream.push(src);
                    layer_selected.push(src);
                }
                layer_records.push(PoolRecord {
                    parents: frontier.clone(),
                    pool_len: pool.len() as u32,
                    positions: positions.iter().map(|&p| p as u32).collect(),
                });
                layer_selected
            }
        };
        trace.layers.push(layer_records);
        frontier = dedup_preserving_order(&selected);
    }
    trace
}

/// Subgraph reindexing + final conversion: renumber the trace into a dense
/// VID space and convert the sampled COO to CSC (§II-B: "subgraph reindexing
/// outputs are initially collected in COO format, then undergo edge ordering
/// and data reshaping").
pub fn build_subgraph(batch: &[Vid], trace: &SampleTrace) -> SampledSubgraph {
    let reindexed = crate::reindex::reindex_hashmap(&trace.node_stream);
    let old_to_new: HashMap<Vid, Vid> = reindexed
        .new_to_old
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, Vid::from_index(new)))
        .collect();
    let sub_edges: Vec<Edge> = trace
        .edges
        .iter()
        .map(|e| Edge::new(old_to_new[&e.src], old_to_new[&e.dst]))
        .collect();
    let ordered = order_edges_radix(&sub_edges);
    let csc = Csc::from_sorted_edges(reindexed.num_unique(), &ordered)
        .expect("reindexed edges are dense and sorted");
    let batch_new = batch.iter().map(|b| old_to_new[b]).collect();
    SampledSubgraph {
        csc,
        new_to_old: reindexed.new_to_old,
        batch_new,
    }
}

/// End-to-end software preprocessing: conversion → sampling → reindexing →
/// subgraph conversion, deterministic in `seed`.
///
/// # Panics
///
/// Panics if a batch node is out of range for `coo`.
pub fn preprocess(coo: &Coo, batch: &[Vid], params: &SampleParams, seed: u64) -> PreprocessOutput {
    for b in batch {
        assert!(
            b.index() < coo.num_vertices(),
            "batch node {b} out of range"
        );
    }
    let csc = convert(coo);
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sample(&csc, batch, params, &mut rng);
    let subgraph = build_subgraph(batch, &trace);
    let stats = PreprocessStats {
        edges_ordered: coo.num_edges(),
        pointer_entries: coo.num_vertices() + 1,
        selections: trace.selections,
        pool_elements: trace.pool_elements,
        reindex_inputs: trace.node_stream.len(),
        subgraph_edges: subgraph.csc.num_edges(),
        subgraph_nodes: subgraph.csc.num_vertices(),
    };
    PreprocessOutput { subgraph, stats }
}

fn dedup_preserving_order(vids: &[Vid]) -> Vec<Vid> {
    let mut seen = HashSet::with_capacity(vids.len());
    vids.iter().copied().filter(|v| seen.insert(*v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::generate;

    fn setup() -> (Coo, Vec<Vid>) {
        let coo = generate::power_law(300, 4_000, 0.9, 17);
        (coo, vec![Vid(0), Vid(5), Vid(9)])
    }

    #[test]
    fn convert_matches_counting_sort_reference() {
        let (coo, _) = setup();
        assert_eq!(convert(&coo), Csc::from_coo(&coo));
    }

    #[test]
    fn expected_selections_geometric_sum() {
        let p = SampleParams::new(10, 2);
        // 1 + 10 + 100 per batch node.
        assert_eq!(p.expected_selections(3000), 3000 * 111);
        let p1 = SampleParams::new(1, 3);
        assert_eq!(p1.expected_selections(2), 8);
    }

    #[test]
    fn expected_selections_saturates_instead_of_overflowing() {
        // k^(layers+1) far beyond u64: must not panic in debug or wrap in
        // release (regression: `k.pow(layers + 1)` overflowed).
        let huge = SampleParams::new(1_000, 10);
        assert_eq!(huge.expected_selections(64), u64::MAX);
        // The maximum layer count must not overflow `layers + 1`, for any k.
        let deep = SampleParams::new(1, u32::MAX);
        assert_eq!(deep.expected_selections(2), 2 * (u64::from(u32::MAX) + 1));
        let deep_wide = SampleParams::new(2, u32::MAX);
        assert_eq!(deep_wide.expected_selections(1), u64::MAX);
        // Saturation also guards the batch multiply.
        let wide = SampleParams::new(2, 62);
        assert_eq!(wide.expected_selections(usize::MAX), u64::MAX);
        // In-range values are exact.
        assert_eq!(SampleParams::new(10, 2).expected_selections(1), 111);
    }

    #[test]
    fn sample_respects_k_bound_per_parent() {
        let (coo, batch) = setup();
        let csc = convert(&coo);
        let params = SampleParams::new(4, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = sample(&csc, &batch, &params, &mut rng);
        for &parent in &batch {
            let from_parent = trace.edges.iter().filter(|e| e.dst == parent).count();
            assert!(from_parent <= 4);
        }
    }

    #[test]
    fn sampled_edges_exist_in_graph() {
        let (coo, batch) = setup();
        let csc = convert(&coo);
        let params = SampleParams::new(5, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = sample(&csc, &batch, &params, &mut rng);
        for e in &trace.edges {
            assert!(
                csc.neighbors(e.dst).contains(&e.src),
                "sampled edge {e} not in graph"
            );
        }
    }

    #[test]
    fn subgraph_batch_nodes_get_lowest_ids() {
        let (coo, batch) = setup();
        let out = preprocess(&coo, &batch, &SampleParams::new(3, 2), 5);
        // Batch nodes head the reindex stream, so their new ids are 0..batch.
        let expect: Vec<Vid> = (0..batch.len()).map(Vid::from_index).collect();
        assert_eq!(out.subgraph.batch_new, expect);
    }

    #[test]
    fn subgraph_gather_list_is_consistent() {
        let (coo, batch) = setup();
        let out = preprocess(&coo, &batch, &SampleParams::new(3, 2), 6);
        let sub = &out.subgraph;
        assert_eq!(sub.csc.num_vertices(), sub.new_to_old.len());
        // Every subgraph edge maps back to an original edge endpoint pair.
        let orig = convert(&coo);
        for d in 0..sub.csc.num_vertices() {
            for &s in sub.csc.neighbors(Vid::from_index(d)) {
                let old_s = sub.new_to_old[s.index()];
                let old_d = sub.new_to_old[d];
                assert!(orig.neighbors(old_d).contains(&old_s));
            }
        }
    }

    #[test]
    fn preprocess_is_deterministic() {
        let (coo, batch) = setup();
        let p = SampleParams::new(5, 2);
        assert_eq!(
            preprocess(&coo, &batch, &p, 9),
            preprocess(&coo, &batch, &p, 9)
        );
    }

    #[test]
    fn layer_wise_draws_k_per_layer() {
        let (coo, batch) = setup();
        let csc = convert(&coo);
        let params = SampleParams::layer_wise(6, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let trace = sample(&csc, &batch, &params, &mut rng);
        assert!(trace.selections <= 12, "at most k per layer");
    }

    #[test]
    fn zero_layers_yields_batch_only_subgraph() {
        let (coo, batch) = setup();
        let out = preprocess(&coo, &batch, &SampleParams::new(5, 0), 1);
        assert_eq!(out.subgraph.csc.num_edges(), 0);
        assert_eq!(out.subgraph.csc.num_vertices(), batch.len());
        assert_eq!(out.stats.selections, 0);
    }

    #[test]
    fn isolated_batch_node_is_kept() {
        let coo = Coo::from_pairs(4, [(0, 1), (1, 2)]).unwrap();
        let out = preprocess(&coo, &[Vid(3)], &SampleParams::new(5, 2), 1);
        assert_eq!(out.subgraph.csc.num_vertices(), 1);
        assert_eq!(out.subgraph.csc.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_batch_node_panics() {
        let (coo, _) = setup();
        preprocess(&coo, &[Vid(99_999)], &SampleParams::new(2, 1), 0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (coo, batch) = setup();
        let out = preprocess(&coo, &batch, &SampleParams::new(5, 2), 10);
        let s = out.stats;
        assert_eq!(s.edges_ordered, coo.num_edges());
        assert_eq!(s.pointer_entries, coo.num_vertices() + 1);
        assert_eq!(s.reindex_inputs, batch.len() + s.selections);
        assert_eq!(s.subgraph_nodes, out.subgraph.new_to_old.len());
        assert!(s.subgraph_edges <= s.selections);
    }

    #[test]
    fn node_stream_duplicates_collapse_in_subgraph() {
        // A graph with a 2-cycle guarantees revisits across hops.
        let coo = Coo::from_pairs(2, [(0, 1), (1, 0)]).unwrap();
        let out = preprocess(&coo, &[Vid(0)], &SampleParams::new(1, 4), 2);
        assert_eq!(out.subgraph.csc.num_vertices(), 2);
        assert!(out.stats.reindex_inputs > 2, "revisits feed the reindexer");
    }
}

//! Subgraph reindexing: renumber sampled VIDs into a dense range.
//!
//! "Subgraph reindexing addresses this by mapping each original graph VID to
//! a new VID in the sampled subgraph" (§II-B, Fig. 4b). The conventional
//! implementation uses a (synchronized) hash map; §IV-A replaces it with
//! set-counting over two SRAM-resident arrays — original VIDs and renumbered
//! VIDs — which is what the SCR reindexer executes.

use std::collections::HashMap;

use agnn_graph::Vid;

/// Result of reindexing a VID stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReindexResult {
    /// Per-input renumbered VID (`new_ids.len() == inputs.len()`).
    pub new_ids: Vec<Vid>,
    /// Mapping table: `new_to_old[new.index()] == old`, in first-appearance
    /// order — exactly the row order of the new embedding table (Fig. 4b).
    pub new_to_old: Vec<Vid>,
}

impl ReindexResult {
    /// Number of distinct VIDs discovered.
    pub fn num_unique(&self) -> usize {
        self.new_to_old.len()
    }
}

/// Hash-map reindexing — the conventional baseline (§IV-A notes resizing
/// costs and mutual exclusion make it serialize on GPUs).
///
/// # Examples
///
/// ```
/// use agnn_algo::reindex::reindex_hashmap;
/// use agnn_graph::Vid;
///
/// let r = reindex_hashmap(&[Vid(40), Vid(7), Vid(40)]);
/// assert_eq!(r.new_ids, vec![Vid(0), Vid(1), Vid(0)]);
/// assert_eq!(r.new_to_old, vec![Vid(40), Vid(7)]);
/// ```
pub fn reindex_hashmap(inputs: &[Vid]) -> ReindexResult {
    let mut map: HashMap<Vid, Vid> = HashMap::new();
    let mut new_to_old = Vec::new();
    let new_ids = inputs
        .iter()
        .map(|&old| {
            *map.entry(old).or_insert_with(|| {
                let fresh = Vid::from_index(new_to_old.len());
                new_to_old.push(old);
                fresh
            })
        })
        .collect();
    ReindexResult {
        new_ids,
        new_to_old,
    }
}

/// Set-counting reindexing (§IV-A): two growing arrays — original VIDs and
/// renumbered VIDs — searched by equality for every input ("by setting the
/// VID from uni-random selection as the condition for set-counting, it can
/// determine whether the VID has been reindexed without relying on a hash
/// map"). A miss appends `(input, counter)` and increments the counter,
/// mirroring the SCR reindexer's SRAM update (Fig. 13c).
pub fn reindex_set_counting(inputs: &[Vid]) -> ReindexResult {
    let mut originals: Vec<Vid> = Vec::new();
    let mut renumbered: Vec<Vid> = Vec::new();
    let new_ids = inputs
        .iter()
        .map(|&old| {
            match originals.iter().position(|&o| o == old) {
                Some(hit) => renumbered[hit],
                None => {
                    // Counter value becomes the new VID.
                    let fresh = Vid::from_index(originals.len());
                    originals.push(old);
                    renumbered.push(fresh);
                    fresh
                }
            }
        })
        .collect();
    ReindexResult {
        new_ids,
        new_to_old: originals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn both_implementations_agree() {
        let inputs: Vec<Vid> = [9, 4, 9, 1, 4, 9, 0].into_iter().map(Vid).collect();
        assert_eq!(reindex_hashmap(&inputs), reindex_set_counting(&inputs));
    }

    #[test]
    fn first_appearance_order_is_preserved() {
        let r = reindex_set_counting(&[Vid(30), Vid(10), Vid(20), Vid(10)]);
        assert_eq!(r.new_to_old, vec![Vid(30), Vid(10), Vid(20)]);
        assert_eq!(r.new_ids, vec![Vid(0), Vid(1), Vid(2), Vid(1)]);
        assert_eq!(r.num_unique(), 3);
    }

    #[test]
    fn empty_input() {
        let r = reindex_hashmap(&[]);
        assert!(r.new_ids.is_empty());
        assert_eq!(r.num_unique(), 0);
    }

    #[test]
    fn repeated_vertex_from_loops_maps_once() {
        // §II-B: "loops in the parent-child relationships may lead to
        // repeated vertices in the final result" — they must share one new id.
        let r = reindex_set_counting(&[Vid(5), Vid(5), Vid(5)]);
        assert_eq!(r.new_ids, vec![Vid(0); 3]);
        assert_eq!(r.num_unique(), 1);
    }

    proptest! {
        #[test]
        fn prop_implementations_agree(raw in proptest::collection::vec(0u32..50, 0..200)) {
            let inputs: Vec<Vid> = raw.iter().map(|&v| Vid(v)).collect();
            prop_assert_eq!(reindex_hashmap(&inputs), reindex_set_counting(&inputs));
        }

        #[test]
        fn prop_mapping_is_a_bijection_on_uniques(
            raw in proptest::collection::vec(0u32..50, 0..200),
        ) {
            let inputs: Vec<Vid> = raw.iter().map(|&v| Vid(v)).collect();
            let r = reindex_hashmap(&inputs);
            // new_to_old has no duplicates.
            let mut uniq = r.new_to_old.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), r.new_to_old.len());
            // Round trip: new_ids map back to the original inputs.
            for (i, &new) in r.new_ids.iter().enumerate() {
                prop_assert_eq!(r.new_to_old[new.index()], inputs[i]);
            }
        }
    }
}

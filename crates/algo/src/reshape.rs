//! Data reshaping: CSC pointer-array construction from a sorted edge array.
//!
//! "Data reshaping repurposes the sorted COO array into an index array,
//! creating range information for each group of edges that share the same
//! destination VID" (§II-B, Fig. 3b). §IV-A reformulates it as set-counting:
//! `pointer[v]` equals the number of sorted elements with destination `< v`,
//! which removes the serial dependence of the classic scan.

use agnn_graph::Vid;

/// Classic sequential construction: scan the sorted destination array once,
/// recording the start offset whenever a new destination appears (§II-B).
///
/// This is the baseline whose serial dependence motivates the SCR.
///
/// # Examples
///
/// ```
/// use agnn_algo::reshape::pointer_array_sequential;
/// use agnn_graph::Vid;
///
/// let dsts = [Vid(0), Vid(0), Vid(2)];
/// assert_eq!(pointer_array_sequential(3, &dsts), vec![0, 2, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics (in debug builds) if `sorted_dsts` is not non-decreasing or
/// references a vertex `>= num_vertices`.
pub fn pointer_array_sequential(num_vertices: usize, sorted_dsts: &[Vid]) -> Vec<u32> {
    debug_assert!(sorted_dsts.windows(2).all(|w| w[0] <= w[1]));
    let mut pointers = vec![0u32; num_vertices + 1];
    for &d in sorted_dsts {
        debug_assert!(d.index() < num_vertices);
        pointers[d.index() + 1] += 1;
    }
    for v in 0..num_vertices {
        pointers[v + 1] += pointers[v];
    }
    pointers
}

/// Set-counting construction (§IV-A): each pointer entry is computed
/// *independently* as the count of destinations strictly below its index,
/// "effectively enabling concurrent computation of each pointer array entry".
///
/// On sorted input the count is a binary search; this mirrors what each SCR
/// computes with its comparator array + adder tree.
pub fn pointer_array_set_counting(num_vertices: usize, sorted_dsts: &[Vid]) -> Vec<u32> {
    debug_assert!(sorted_dsts.windows(2).all(|w| w[0] <= w[1]));
    (0..=num_vertices)
        .map(|v| sorted_dsts.partition_point(|&d| d.index() < v) as u32)
        .collect()
}

/// Histogram-hashing construction — the GPU baseline of Table IV
/// (`Reshaping`, after Juenger et al.): build a per-destination histogram
/// with (simulated) atomic increments, then prefix-sum it.
///
/// Functionally identical to the sequential scan; kept separate because the
/// GPU timing model charges its atomic-contention cost.
pub fn pointer_array_histogram(num_vertices: usize, dsts: &[Vid]) -> Vec<u32> {
    let mut histogram = vec![0u32; num_vertices];
    for &d in dsts {
        assert!(d.index() < num_vertices, "destination out of range");
        histogram[d.index()] += 1;
    }
    let mut pointers = Vec::with_capacity(num_vertices + 1);
    let mut acc = 0u32;
    pointers.push(0);
    for h in histogram {
        acc += h;
        pointers.push(acc);
    }
    pointers
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::{generate, Csc};
    use proptest::prelude::*;

    fn sorted_dsts(n: usize, e: usize, seed: u64) -> (usize, Vec<Vid>) {
        let g = generate::power_law(n, e, 0.8, seed);
        let mut d: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
        d.sort_unstable();
        (n, d)
    }

    #[test]
    fn all_three_constructions_agree() {
        let (n, dsts) = sorted_dsts(64, 1_000, 5);
        let a = pointer_array_sequential(n, &dsts);
        let b = pointer_array_set_counting(n, &dsts);
        let c = pointer_array_histogram(n, &dsts);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn pointer_array_matches_csc_from_coo() {
        let g = generate::power_law(50, 500, 1.0, 9);
        let csc = Csc::from_coo(&g);
        let mut dsts: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        assert_eq!(
            pointer_array_sequential(g.num_vertices(), &dsts),
            csc.pointers()
        );
    }

    #[test]
    fn empty_and_isolated_vertices() {
        assert_eq!(pointer_array_sequential(3, &[]), vec![0, 0, 0, 0]);
        let dsts = [Vid(1)];
        assert_eq!(pointer_array_sequential(3, &dsts), vec![0, 0, 1, 1]);
    }

    #[test]
    fn histogram_unsorted_input_allowed() {
        // Histogram hashing does not require sorted input.
        let dsts = [Vid(2), Vid(0), Vid(2)];
        assert_eq!(pointer_array_histogram(3, &dsts), vec![0, 1, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range() {
        pointer_array_histogram(2, &[Vid(2)]);
    }

    proptest! {
        #[test]
        fn prop_set_counting_equals_sequential(
            mut raw in proptest::collection::vec(0u32..40, 0..300),
        ) {
            raw.sort_unstable();
            let dsts: Vec<Vid> = raw.iter().map(|&d| Vid(d)).collect();
            prop_assert_eq!(
                pointer_array_set_counting(40, &dsts),
                pointer_array_sequential(40, &dsts)
            );
        }

        #[test]
        fn prop_pointers_are_monotonic_and_end_at_edge_count(
            mut raw in proptest::collection::vec(0u32..40, 0..300),
        ) {
            raw.sort_unstable();
            let dsts: Vec<Vid> = raw.iter().map(|&d| Vid(d)).collect();
            let p = pointer_array_sequential(40, &dsts);
            prop_assert_eq!(p.len(), 41);
            prop_assert!(p.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(*p.last().unwrap() as usize, dsts.len());
        }
    }
}

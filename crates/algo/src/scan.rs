//! Prefix sums, set-partitioning and set-counting.
//!
//! §IV-A observes that every GNN preprocessing task reduces to one of two
//! primitives: **set-partitioning** ("divides a given array … into two
//! disjoint subsets by evaluating each element", implemented by relocating
//! elements according to prefix-sum results, Fig. 8) and **set-counting**
//! ("examines all elements in a set against a specified condition and counts
//! the number that satisfy it", Fig. 9).

/// Inclusive prefix sum: `out[i] = in[0] + … + in[i]`.
///
/// # Examples
///
/// ```
/// use agnn_algo::scan::inclusive_prefix_sum;
///
/// assert_eq!(inclusive_prefix_sum(&[1, 0, 1, 1]), vec![1, 1, 2, 3]);
/// ```
pub fn inclusive_prefix_sum(values: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u32;
    for &v in values {
        acc += v;
        out.push(acc);
    }
    out
}

/// Exclusive prefix sum: `out[i] = in[0] + … + in[i-1]`, `out[0] = 0`.
///
/// This is the "exclusive write index in the output" Fig. 8 uses to scatter
/// elements in one pass.
///
/// # Examples
///
/// ```
/// use agnn_algo::scan::exclusive_prefix_sum;
///
/// assert_eq!(exclusive_prefix_sum(&[1, 0, 1, 1]), vec![0, 1, 1, 2]);
/// ```
pub fn exclusive_prefix_sum(values: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u32;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

/// Stable set-partition: splits `items` into (condition-true, condition-false)
/// subsets, each preserving input order — the semantics of one UPE pass.
///
/// # Examples
///
/// ```
/// use agnn_algo::scan::set_partition;
///
/// let (even, odd) = set_partition(&[1, 2, 3, 4], |&x| x % 2 == 0);
/// assert_eq!(even, vec![2, 4]);
/// assert_eq!(odd, vec![1, 3]);
/// ```
pub fn set_partition<T: Copy>(items: &[T], mut cond: impl FnMut(&T) -> bool) -> (Vec<T>, Vec<T>) {
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for &item in items {
        if cond(&item) {
            yes.push(item);
        } else {
            no.push(item);
        }
    }
    (yes, no)
}

/// Set-partition expressed exactly as the hardware does it: compute the
/// exclusive prefix sum of the condition array (each true element's write
/// index), then scatter. Returns the compacted condition-true subset plus the
/// displacement array, so callers (and tests) can inspect the intermediate
/// the UPE relocation logic consumes.
pub fn set_partition_by_prefix<T: Copy + Default>(
    items: &[T],
    cond: &[bool],
) -> (Vec<T>, Vec<u32>) {
    assert_eq!(items.len(), cond.len(), "condition array length mismatch");
    let flags: Vec<u32> = cond.iter().map(|&c| u32::from(c)).collect();
    let write_index = exclusive_prefix_sum(&flags);
    let kept = flags.iter().sum::<u32>() as usize;
    let mut out = vec![T::default(); kept];
    for i in 0..items.len() {
        if cond[i] {
            out[write_index[i] as usize] = items[i];
        }
    }
    (out, write_index)
}

/// Set-counting: number of elements satisfying `cond`.
///
/// # Examples
///
/// ```
/// use agnn_algo::scan::set_count;
///
/// assert_eq!(set_count(&[5, 2, 9, 2], |&x| x < 5), 2);
/// ```
pub fn set_count<T>(items: &[T], cond: impl Fn(&T) -> bool) -> usize {
    items.iter().filter(|item| cond(item)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_sums_of_empty_are_empty() {
        assert!(inclusive_prefix_sum(&[]).is_empty());
        assert!(exclusive_prefix_sum(&[]).is_empty());
    }

    #[test]
    fn exclusive_is_shifted_inclusive() {
        let v = [3, 1, 4, 1, 5];
        let inc = inclusive_prefix_sum(&v);
        let exc = exclusive_prefix_sum(&v);
        assert_eq!(exc[0], 0);
        assert_eq!(&inc[..4], &exc[1..]);
    }

    #[test]
    fn partition_keeps_relative_order() {
        let (yes, no) = set_partition(&[5, 1, 4, 2, 3], |&x| x >= 3);
        assert_eq!(yes, vec![5, 4, 3]);
        assert_eq!(no, vec![1, 2]);
    }

    #[test]
    fn partition_by_prefix_matches_direct_partition() {
        let items = [10u32, 20, 30, 40, 50];
        let cond = [true, false, true, true, false];
        let (by_prefix, write_index) = set_partition_by_prefix(&items, &cond);
        let (direct, _) = set_partition(&items, |&x| [10, 30, 40].contains(&x));
        assert_eq!(by_prefix, direct);
        assert_eq!(write_index, vec![0, 1, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn partition_by_prefix_rejects_mismatched_lengths() {
        set_partition_by_prefix(&[1, 2, 3], &[true]);
    }

    #[test]
    fn set_count_all_and_none() {
        let v = [1, 2, 3];
        assert_eq!(set_count(&v, |_| true), 3);
        assert_eq!(set_count(&v, |_| false), 0);
    }

    proptest! {
        #[test]
        fn prop_prefix_sum_total_equals_sum(v in proptest::collection::vec(0u32..100, 0..200)) {
            let inc = inclusive_prefix_sum(&v);
            let total: u32 = v.iter().sum();
            prop_assert_eq!(inc.last().copied().unwrap_or(0), total);
        }

        #[test]
        fn prop_partition_is_a_permutation(
            v in proptest::collection::vec(0u64..1000, 0..200),
            threshold in 0u64..1000,
        ) {
            let (yes, no) = set_partition(&v, |&x| x < threshold);
            let mut recombined = yes.clone();
            recombined.extend(&no);
            let mut sorted_in = v.clone();
            sorted_in.sort_unstable();
            recombined.sort_unstable();
            prop_assert_eq!(recombined, sorted_in);
            prop_assert!(yes.iter().all(|&x| x < threshold));
            prop_assert!(no.iter().all(|&x| x >= threshold));
        }

        #[test]
        fn prop_prefix_partition_equals_filter(
            v in proptest::collection::vec(0u32..64, 0..128),
        ) {
            let cond: Vec<bool> = v.iter().map(|&x| x % 3 == 0).collect();
            let (kept, _) = set_partition_by_prefix(&v, &cond);
            let filtered: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
            prop_assert_eq!(kept, filtered);
        }
    }
}

//! Unique random selection (uni-random selection).
//!
//! Sampling draws `k` unique neighbors per node (node-wise) or per layer
//! (layer-wise) (§II-B, Fig. 4a). Three implementations:
//!
//! - [`uni_random_bitmap`] — the paper's redesigned algorithm (§IV-A,
//!   Fig. 16): partition the pool into sampled/unsampled buckets and draw
//!   only from the unsampled bucket, "guaranteeing uniqueness without a
//!   full-space scan". This is the exact procedure the UPE kernel executes,
//!   so the hardware simulator reuses it for functional equivalence.
//! - [`uni_random_hashset`] — the conventional baseline: draw, check a
//!   synchronized dictionary, retry on duplicates (§II-B).
//! - [`reservoir_sample`] — Vitter's Algorithm R, the Table IV `Selecting`
//!   baseline.
//!
//! Selection is *positional*: the pool is an index array over a neighbor
//! list, so a VID that appears twice in the pool (multi-edge) may be chosen
//! once per occurrence, exactly as in the hardware's index-array scheme.

use std::collections::HashSet;

use rand::Rng;

/// Draws `min(k, pool.len())` unique positions from `pool` using the
/// bitmap/set-partition scheme of Fig. 16, returning the selected elements
/// in selection order.
///
/// # Examples
///
/// ```
/// use agnn_algo::select::uni_random_bitmap;
/// use agnn_graph::Vid;
/// use rand::SeedableRng;
///
/// let pool: Vec<Vid> = (0..10).map(Vid).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let picked = uni_random_bitmap(&pool, 4, &mut rng);
/// assert_eq!(picked.len(), 4);
/// ```
pub fn uni_random_bitmap<T: Copy>(pool: &[T], k: usize, rng: &mut impl Rng) -> Vec<T> {
    uni_random_positions(pool.len(), k, rng)
        .into_iter()
        .map(|position| pool[position])
        .collect()
}

/// Position-level variant of [`uni_random_bitmap`]: returns the drawn pool
/// *positions* in draw order.
///
/// The hardware simulator replays these positions through the UPE's one-hot
/// extraction network, so the two functions must consume the RNG
/// identically; `uni_random_bitmap` is implemented on top of this one to
/// guarantee it.
pub fn uni_random_positions(pool_len: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    // The unsampled bucket, kept in pool order as the UPE's set-partition
    // extraction preserves relative order.
    let mut unsampled: Vec<usize> = (0..pool_len).collect();
    let take = k.min(pool_len);
    let mut positions = Vec::with_capacity(take);
    for _ in 0..take {
        let slot = rng.gen_range(0..unsampled.len());
        positions.push(unsampled.remove(slot));
    }
    positions
}

/// Conventional draw-and-check selection against a dictionary of already
/// sampled positions; retries on collisions (§II-B "checking a synchronized
/// dictionary to track selected nodes").
pub fn uni_random_hashset<T: Copy>(pool: &[T], k: usize, rng: &mut impl Rng) -> Vec<T> {
    let take = k.min(pool.len());
    let mut seen: HashSet<usize> = HashSet::with_capacity(take);
    let mut selected = Vec::with_capacity(take);
    while selected.len() < take {
        let position = rng.gen_range(0..pool.len());
        if seen.insert(position) {
            selected.push(pool[position]);
        }
    }
    selected
}

/// Vitter's reservoir sampling (Algorithm R): one pass over the pool keeping
/// a uniformly random `k`-subset (Table IV).
pub fn reservoir_sample<T: Copy>(pool: &[T], k: usize, rng: &mut impl Rng) -> Vec<T> {
    let take = k.min(pool.len());
    let mut reservoir: Vec<T> = pool[..take].to_vec();
    for (position, &item) in pool.iter().enumerate().skip(take) {
        let j = rng.gen_range(0..=position);
        if j < take {
            reservoir[j] = item;
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::Vid;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(n: u32) -> Vec<Vid> {
        (0..n).map(Vid).collect()
    }

    #[test]
    fn bitmap_selection_is_unique_and_bounded() {
        let p = pool(20);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = uni_random_bitmap(&p, 8, &mut rng);
        assert_eq!(sel.len(), 8);
        let distinct: HashSet<_> = sel.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn k_larger_than_pool_returns_whole_pool() {
        let p = pool(3);
        let mut rng = StdRng::seed_from_u64(2);
        for f in [
            uni_random_bitmap as fn(&[Vid], usize, &mut StdRng) -> Vec<Vid>,
            uni_random_hashset,
            reservoir_sample,
        ] {
            let sel = f(&p, 10, &mut rng);
            let mut sorted: Vec<u32> = sel.iter().map(|v| v.0).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn empty_pool_selects_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(uni_random_bitmap::<Vid>(&[], 5, &mut rng).is_empty());
        assert!(uni_random_hashset::<Vid>(&[], 5, &mut rng).is_empty());
        assert!(reservoir_sample::<Vid>(&[], 5, &mut rng).is_empty());
    }

    #[test]
    fn bitmap_selection_is_deterministic_per_seed() {
        let p = pool(50);
        let a = uni_random_bitmap(&p, 10, &mut StdRng::seed_from_u64(9));
        let b = uni_random_bitmap(&p, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn selection_is_roughly_uniform() {
        // Over many trials every position should be picked a similar number
        // of times ("randomness improves inference accuracy", §II-B).
        let p = pool(10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..2_000 {
            for v in uni_random_bitmap(&p, 3, &mut rng) {
                counts[v.index()] += 1;
            }
        }
        let expected = 2_000.0 * 3.0 / 10.0;
        for &c in &counts {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.25,
                "count {c} vs expected {expected}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_all_selectors_return_unique_pool_members(
            n in 1u32..60,
            k in 0usize..80,
            seed in any::<u64>(),
        ) {
            let p = pool(n);
            for f in [
                uni_random_bitmap as fn(&[Vid], usize, &mut StdRng) -> Vec<Vid>,
                uni_random_hashset,
                reservoir_sample,
            ] {
                let mut rng = StdRng::seed_from_u64(seed);
                let sel = f(&p, k, &mut rng);
                prop_assert_eq!(sel.len(), k.min(p.len()));
                let distinct: HashSet<_> = sel.iter().collect();
                prop_assert_eq!(distinct.len(), sel.len());
                prop_assert!(sel.iter().all(|v| v.index() < n as usize));
            }
        }
    }
}

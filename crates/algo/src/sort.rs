//! Radix sort and merge primitives.
//!
//! Table IV lists radix sort as the `Ordering` baseline algorithm; §IV-A
//! notes its "digit-wise passes are precisely set-partitioning", the insight
//! the UPE exploits. The merge routines implement the software analogue of
//! Algorithm 1 (merge sorting using UPE).

/// Least-significant-digit radix sort over `u64` keys, 8 bits per pass,
/// skipping passes whose digit is constant across the input.
///
/// Stable, O(passes · n).
///
/// # Examples
///
/// ```
/// use agnn_algo::sort::radix_sort_u64;
///
/// let mut keys = vec![9, 2, 7, 2, 0];
/// radix_sort_u64(&mut keys);
/// assert_eq!(keys, vec![0, 2, 2, 7, 9]);
/// ```
pub fn radix_sort_u64(keys: &mut Vec<u64>) {
    const BITS_PER_PASS: u32 = 8;
    const BUCKETS: usize = 1 << BITS_PER_PASS;
    if keys.len() <= 1 {
        return;
    }
    let max = keys.iter().copied().max().expect("non-empty");
    let significant_bits = 64 - max.leading_zeros();
    let passes = significant_bits.div_ceil(BITS_PER_PASS);
    let mut scratch = vec![0u64; keys.len()];
    for pass in 0..passes {
        let shift = pass * BITS_PER_PASS;
        let mut histogram = [0u32; BUCKETS];
        for &k in keys.iter() {
            histogram[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut offsets = [0u32; BUCKETS];
        let mut acc = 0u32;
        for b in 0..BUCKETS {
            offsets[b] = acc;
            acc += histogram[b];
        }
        for &k in keys.iter() {
            let bucket = ((k >> shift) as usize) & (BUCKETS - 1);
            scratch[offsets[bucket] as usize] = k;
            offsets[bucket] += 1;
        }
        std::mem::swap(keys, &mut scratch);
    }
}

/// Number of radix passes the sort performs for keys up to `max_key`
/// (used by the timing models).
pub fn radix_pass_count(max_key: u64) -> u32 {
    if max_key == 0 {
        return 0;
    }
    (64 - max_key.leading_zeros()).div_ceil(8)
}

/// Merges two sorted slices into one sorted vector (stable: ties take from
/// `a` first).
///
/// # Examples
///
/// ```
/// use agnn_algo::sort::merge_sorted;
///
/// assert_eq!(merge_sorted(&[1, 4, 6], &[2, 4, 9]), vec![1, 2, 4, 4, 6, 9]);
/// ```
pub fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges `chunks` (each sorted) pairwise round by round until one sorted
/// array remains — the software model of the UPE merge tree (Fig. 15).
/// Returns the merged array and the number of merge rounds performed
/// (Table I's `m`).
pub fn tree_merge(mut chunks: Vec<Vec<u64>>) -> (Vec<u64>, u32) {
    if chunks.is_empty() {
        return (Vec::new(), 0);
    }
    let mut rounds = 0;
    while chunks.len() > 1 {
        rounds += 1;
        let mut next = Vec::with_capacity(chunks.len().div_ceil(2));
        let mut iter = chunks.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_sorted(&a, &b)),
                None => next.push(a),
            }
        }
        chunks = next;
    }
    (chunks.pop().expect("one chunk remains"), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn radix_handles_trivial_inputs() {
        let mut empty: Vec<u64> = vec![];
        radix_sort_u64(&mut empty);
        assert!(empty.is_empty());

        let mut single = vec![42];
        radix_sort_u64(&mut single);
        assert_eq!(single, vec![42]);

        let mut zeros = vec![0, 0, 0];
        radix_sort_u64(&mut zeros);
        assert_eq!(zeros, vec![0, 0, 0]);
    }

    #[test]
    fn radix_sorts_full_width_keys() {
        let mut keys = vec![u64::MAX, 0, u64::MAX - 1, 1, 1 << 63];
        radix_sort_u64(&mut keys);
        assert_eq!(keys, vec![0, 1, 1 << 63, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn pass_count_scales_with_key_width() {
        assert_eq!(radix_pass_count(0), 0);
        assert_eq!(radix_pass_count(0xff), 1);
        assert_eq!(radix_pass_count(0x100), 2);
        assert_eq!(radix_pass_count(u64::MAX), 8);
    }

    #[test]
    fn merge_with_empty_sides() {
        assert_eq!(merge_sorted(&[], &[1, 2]), vec![1, 2]);
        assert_eq!(merge_sorted(&[1, 2], &[]), vec![1, 2]);
        assert!(merge_sorted(&[], &[]).is_empty());
    }

    #[test]
    fn tree_merge_counts_rounds() {
        let chunks = vec![vec![4, 8], vec![1, 9], vec![2, 3], vec![5, 7]];
        let (merged, rounds) = tree_merge(chunks);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 7, 8, 9]);
        assert_eq!(rounds, 2, "4 chunks need log2(4) rounds");
    }

    #[test]
    fn tree_merge_odd_chunk_count() {
        let (merged, rounds) = tree_merge(vec![vec![3], vec![1], vec![2]]);
        assert_eq!(merged, vec![1, 2, 3]);
        assert_eq!(rounds, 2);
    }

    #[test]
    fn tree_merge_empty_and_single() {
        assert_eq!(tree_merge(vec![]), (vec![], 0));
        assert_eq!(tree_merge(vec![vec![5, 6]]), (vec![5, 6], 0));
    }

    proptest! {
        #[test]
        fn prop_radix_equals_std_sort(mut v in proptest::collection::vec(any::<u64>(), 0..500)) {
            let mut expected = v.clone();
            expected.sort_unstable();
            radix_sort_u64(&mut v);
            prop_assert_eq!(v, expected);
        }

        #[test]
        fn prop_merge_equals_sorted_concat(
            mut a in proptest::collection::vec(any::<u64>(), 0..100),
            mut b in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            a.sort_unstable();
            b.sort_unstable();
            let merged = merge_sorted(&a, &b);
            let mut expected = a.clone();
            expected.extend(&b);
            expected.sort_unstable();
            prop_assert_eq!(merged, expected);
        }

        #[test]
        fn prop_tree_merge_sorts_chunks(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 0..50), 0..16),
        ) {
            let sorted_chunks: Vec<Vec<u64>> = chunks.iter().map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            }).collect();
            let mut expected: Vec<u64> = chunks.concat();
            expected.sort_unstable();
            let (merged, _) = tree_merge(sorted_chunks);
            prop_assert_eq!(merged, expected);
        }
    }
}

//! Criterion benches of the Table IV software algorithms: the measured CPU
//! costs behind each preprocessing task.

use agnn_algo::ordering::{order_edges_radix, order_edges_std};
use agnn_algo::reindex::{reindex_hashmap, reindex_set_counting};
use agnn_algo::reshape::{
    pointer_array_histogram, pointer_array_sequential, pointer_array_set_counting,
};
use agnn_algo::select::{reservoir_sample, uni_random_bitmap, uni_random_hashset};
use agnn_graph::{generate, Vid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    for edges in [10_000usize, 100_000] {
        let g = generate::power_law(edges / 10, edges, 0.9, 1);
        group.bench_with_input(BenchmarkId::new("std_sort", edges), &g, |b, g| {
            b.iter(|| order_edges_std(g.edges()))
        });
        group.bench_with_input(BenchmarkId::new("radix_sort", edges), &g, |b, g| {
            b.iter(|| order_edges_radix(g.edges()))
        });
    }
    group.finish();
}

fn bench_reshaping(c: &mut Criterion) {
    let mut group = c.benchmark_group("reshaping");
    let n = 20_000;
    let g = generate::power_law(n, 200_000, 0.9, 2);
    let mut dsts: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
    dsts.sort_unstable();
    group.bench_function("sequential_scan", |b| {
        b.iter(|| pointer_array_sequential(n, &dsts))
    });
    group.bench_function("set_counting", |b| {
        b.iter(|| pointer_array_set_counting(n, &dsts))
    });
    group.bench_function("histogram_hashing", |b| {
        b.iter(|| pointer_array_histogram(n, &dsts))
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let pool: Vec<Vid> = (0..10_000).map(Vid).collect();
    let k = 10;
    group.bench_function("bitmap_partition", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| uni_random_bitmap(&pool, k, &mut rng))
    });
    group.bench_function("hashset_retry", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| uni_random_hashset(&pool, k, &mut rng))
    });
    group.bench_function("reservoir", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| reservoir_sample(&pool, k, &mut rng))
    });
    group.finish();
}

fn bench_reindexing(c: &mut Criterion) {
    let mut group = c.benchmark_group("reindexing");
    let g = generate::power_law(2_000, 20_000, 1.2, 4);
    let stream: Vec<Vid> = g.edges().iter().map(|e| e.dst).take(5_000).collect();
    group.bench_function("hashmap", |b| b.iter(|| reindex_hashmap(&stream)));
    group.bench_function("set_counting", |b| b.iter(|| reindex_set_counting(&stream)));
    group.finish();
}

criterion_group!(
    benches,
    bench_ordering,
    bench_reshaping,
    bench_selection,
    bench_reindexing
);
criterion_main!(benches);

//! Criterion benches of the hardware simulator: network evaluation costs
//! and the fidelity gap between structural and fast simulation.

use agnn_algo::pipeline::SampleParams;
use agnn_graph::{generate, Vid};
use agnn_hw::engine::AutoGnnEngine;
use agnn_hw::kernel::{Fidelity, Reshaper, UpeKernel};
use agnn_hw::scr::Scr;
use agnn_hw::upe::Upe;
use agnn_hw::{HwConfig, ScrConfig, UpeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_upe_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("upe_networks");
    for width in [64usize, 256] {
        let upe = Upe::new(width);
        let cond: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let values: Vec<u64> = (0..width as u64).collect();
        group.bench_with_input(BenchmarkId::new("prefix_sum", width), &width, |b, _| {
            b.iter(|| upe.prefix_sum_network(&cond))
        });
        group.bench_with_input(BenchmarkId::new("set_partition", width), &width, |b, _| {
            b.iter(|| upe.set_partition(&values, &cond))
        });
        group.bench_with_input(BenchmarkId::new("radix_chunk", width), &width, |b, _| {
            b.iter(|| upe.radix_sort_chunk(&values))
        });
    }
    group.finish();
}

fn bench_scr(c: &mut Criterion) {
    let mut group = c.benchmark_group("scr");
    let scr = Scr::new(1024);
    let window: Vec<u32> = (0..1024).collect();
    let mapping: Vec<(u32, u32)> = (0..1024).map(|i| (i * 7, i)).collect();
    group.bench_function("adder_tree_count", |b| {
        b.iter(|| scr.count_less_than(&window, 512))
    });
    group.bench_function("filter_tree_lookup", |b| {
        b.iter(|| scr.filter_lookup(&mapping, 700))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let g = generate::power_law(2_000, 20_000, 0.9, 7);
    let kernel = UpeKernel::new(UpeConfig::new(16, 64));
    group.bench_function("sort_edges_fast", |b| {
        b.iter(|| kernel.sort_edges(g.edges()))
    });
    let sorted = agnn_algo::ordering::order_edges_radix(g.edges());
    let dsts: Vec<Vid> = sorted.iter().map(|e| e.dst).collect();
    let reshaper = Reshaper::new(ScrConfig::new(4, 256));
    group.bench_function("reshaper", |b| {
        b.iter(|| reshaper.build_pointers(g.num_vertices(), &dsts))
    });
    group.finish();
}

fn bench_engine_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_preprocess");
    group.sample_size(10);
    let g = generate::power_law(500, 5_000, 0.9, 9);
    let batch: Vec<Vid> = (0..8).map(Vid).collect();
    let params = SampleParams::new(5, 2);
    let cfg = HwConfig {
        upe: UpeConfig::new(8, 32),
        scr: ScrConfig::new(2, 64),
    };
    group.bench_function("fast", |b| {
        b.iter(|| {
            AutoGnnEngine::with_fidelity(cfg, Fidelity::Fast).preprocess(&g, &batch, &params, 1)
        })
    });
    group.bench_function("structural", |b| {
        b.iter(|| {
            AutoGnnEngine::with_fidelity(cfg, Fidelity::Structural)
                .preprocess(&g, &batch, &params, 1)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_upe_networks,
    bench_scr,
    bench_kernels,
    bench_engine_fidelity
);
criterion_main!(benches);

//! Criterion benches of the end-to-end stack: software pipeline vs
//! simulated hardware engine, GNN forward passes, cost evaluation and the
//! configuration search.

use agnn_algo::pipeline::{preprocess, SampleParams};
use agnn_cost::{BitstreamLibrary, CostModel, SearchSpace, Workload};
use agnn_devices::fpga::FpgaModel;
use agnn_gnn::features::FeatureTable;
use agnn_gnn::models::{forward, GnnModel, GnnSpec};
use agnn_graph::datasets::Dataset;
use agnn_graph::Vid;
use agnn_hw::engine::AutoGnnEngine;
use agnn_hw::floorplan::Floorplan;
use agnn_hw::HwConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_ph_scaled");
    group.sample_size(20);
    let d = Dataset::Physics;
    let g = d.generate_scaled(d.scale_for_max_edges(50_000), 1);
    let batch: Vec<Vid> = (0..30).map(Vid).collect();
    let params = SampleParams::new(10, 2);
    group.bench_function("software_pipeline", |b| {
        b.iter(|| preprocess(&g, &batch, &params, 3))
    });
    group.bench_function("hardware_engine_fast", |b| {
        b.iter(|| AutoGnnEngine::new(HwConfig::vpk180_default()).preprocess(&g, &batch, &params, 3))
    });
    group.finish();
}

fn bench_gnn_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn_forward");
    let g = agnn_graph::generate::power_law(1_000, 10_000, 0.9, 5);
    let batch: Vec<Vid> = (0..16).map(Vid).collect();
    let out = preprocess(&g, &batch, &SampleParams::new(8, 2), 7);
    let table = FeatureTable::random(1_000, 32, 9);
    for model in GnnModel::ALL {
        let spec = GnnSpec::new(model, 2, 32, 32);
        group.bench_with_input(BenchmarkId::new("model", model.name()), &spec, |b, spec| {
            b.iter(|| forward(spec, &out.subgraph, &table, 11))
        });
    }
    group.finish();
}

fn bench_cost_and_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost");
    let w = Workload::new(2_450_000, 123_000_000, 3_000, 10, 2);
    let plan = Floorplan::vpk180();
    let library = BitstreamLibrary::for_floorplan(&plan);
    // The paper reports cost evaluation under 0.1 ms; the full search
    // across the 10x10 library should stay well under that budget.
    group.bench_function("table_i_estimate", |b| {
        b.iter(|| CostModel.estimate(&w, HwConfig::vpk180_default()))
    });
    group.bench_function("table_i_full_search", |b| {
        b.iter(|| CostModel.choose_config(&w, &library))
    });
    group.bench_function("timing_aware_full_search", |b| {
        b.iter(|| FpgaModel::default().search(&w, &plan, SearchSpace::Full))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_gnn_models,
    bench_cost_and_search
);
criterion_main!(benches);

//! Criterion benches of the serving layer: discrete-event replay
//! throughput under FIFO vs reconfig-aware dispatch, the pool-size ×
//! placement-policy sweep, the multi-core fan-out of independent seeded
//! runs, and the arrival generators in isolation.

use agnn_graph::datasets::Dataset;
use agnn_serve::pool::PlacementPolicy;
use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("movies", Dataset::Movie, 20.0),
        TenantSpec::new("feed", Dataset::StackOverflow, 20.0),
        TenantSpec::new("papers", Dataset::Arxiv, 10.0),
    ]
}

fn bench_dispatch_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_dispatch");
    group.sample_size(10);
    for (name, policy) in [
        ("fifo", DispatchPolicy::Fifo),
        ("reconfig_aware", DispatchPolicy::reconfig_aware()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("replay_10k", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    simulate(
                        mixed_tenants(),
                        ServeConfig::builder()
                            .seed(3)
                            .total_requests(10_000)
                            .policy(policy)
                            .build()
                            .expect("bench config is valid"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The pool-size × placement-policy sweep: replay cost of sharding the
/// same 10k-request trace over 1/2/4/8 boards under each placement.
fn bench_board_pool_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_pool");
    group.sample_size(10);
    for boards in [1usize, 2, 4, 8] {
        for placement in [
            PlacementPolicy::TenantAffine,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::BitstreamAffine,
        ] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("replay_10k_{}", placement.name()),
                    format!("{boards}_boards"),
                ),
                &(boards, placement),
                |b, &(boards, placement)| {
                    b.iter(|| {
                        simulate(
                            mixed_tenants(),
                            ServeConfig::builder()
                                .seed(3)
                                .total_requests(10_000)
                                .boards(boards)
                                .placement(placement)
                                .policy(DispatchPolicy::reconfig_aware())
                                .build()
                                .expect("bench config is valid"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The parallel fan-out: one 8-run seeded batch through
/// `agnn_serve::par_runs` at a single worker vs every core — the
/// wall-clock lever CI's `bench-smoke` batch rides. Results merge in
/// input order either way, so both arms produce identical reports.
fn bench_parallel_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_par");
    group.sample_size(10);
    let batch = || -> Vec<(Vec<TenantSpec>, ServeConfig)> {
        (0..8)
            .map(|seed| {
                (
                    mixed_tenants(),
                    ServeConfig::builder()
                        .seed(seed)
                        .total_requests(4_000)
                        .policy(DispatchPolicy::reconfig_aware())
                        .build()
                        .expect("bench config is valid"),
                )
            })
            .collect()
    };
    for (label, jobs) in [("jobs_1", 1), ("jobs_auto", agnn_serve::default_jobs())] {
        group.bench_with_input(BenchmarkId::new("replay_8x4k", label), &jobs, |b, &jobs| {
            b.iter(|| agnn_serve::par_runs(jobs, batch()))
        });
    }
    group.finish();
}

fn bench_arrival_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_arrivals");
    let poisson = ArrivalProcess::Poisson { rate_rps: 100.0 };
    let diurnal = ArrivalProcess::Diurnal {
        mean_rps: 100.0,
        amplitude: 0.9,
        period_secs: 86_400.0,
        phase_secs: 0.0,
    };
    for (name, process) in [("poisson", poisson), ("diurnal", diurnal)] {
        group.bench_with_input(
            BenchmarkId::new("draw_100k", name),
            &process,
            |b, process| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut t = 0.0;
                    for _ in 0..100_000 {
                        t = process.next_after(t, &mut rng);
                    }
                    t
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch_policies,
    bench_board_pool_sweep,
    bench_parallel_runs,
    bench_arrival_generators
);
criterion_main!(benches);

//! CI `bench-smoke`: replay the seeded serving sweep, write the
//! `BENCH_serving.json` artifact, and gate p99 against the checked-in
//! baseline.
//!
//! ```text
//! # what CI runs (fails with exit code 1 on a >20 % p99 regression):
//! cargo run --release -p agnn-bench --bin bench_smoke -- \
//!     --baseline ci/bench_serving_baseline.json --out BENCH_serving.json
//!
//! # refresh the baseline after an intentional perf change (in-PR):
//! cargo run --release -p agnn-bench --bin bench_smoke -- \
//!     --write-baseline ci/bench_serving_baseline.json
//! ```

use std::process::ExitCode;

use agnn_bench::{perfgate, serving_smoke};

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        baseline: None,
        write_baseline: None,
        tolerance: 0.20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(args.tolerance.is_finite() && args.tolerance >= 0.0) {
                    return Err("--tolerance must be a non-negative number".to_string());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let sweep = serving_smoke::run_sweep();
    for s in &sweep {
        let overall = s.report.overall_latency();
        println!(
            "{:<28} boards={} placement={:<17} p99={:>9.4} s reconfigs={:>6} completed={}",
            s.name,
            s.boards,
            s.placement.name(),
            overall.quantile(0.99),
            s.report.reconfigs,
            s.report.completed(),
        );
    }

    let artifact = serving_smoke::render_json(&sweep);
    if let Some(path) = &args.out {
        std::fs::write(path, &artifact).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote artifact {path}");
    }
    if let Some(path) = &args.write_baseline {
        let baseline = serving_smoke::render_baseline_json(&sweep);
        std::fs::write(path, baseline).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote baseline {path}");
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let baseline = perfgate::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let current = perfgate::parse(&artifact).map_err(|e| format!("parsing artifact: {e}"))?;
        let outcome = perfgate::gate_p99(&baseline, &current, args.tolerance)?;
        for note in &outcome.notes {
            println!("note: {note}");
        }
        if !outcome.passed() {
            for failure in &outcome.failures {
                eprintln!("PERF GATE FAILURE: {failure}");
            }
            return Err(format!(
                "{} scenario(s) regressed past {:.0} % — if intentional, refresh the \
                 baseline with --write-baseline {path}",
                outcome.failures.len(),
                args.tolerance * 100.0
            ));
        }
        println!(
            "perf gate passed ({} scenario(s), tolerance {:.0} %)",
            baseline
                .get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map_or(0, <[perfgate::Json]>::len),
            args.tolerance * 100.0
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_smoke: {message}");
            ExitCode::FAILURE
        }
    }
}

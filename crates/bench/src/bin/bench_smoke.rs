//! CI `bench-smoke`: replay the seeded serving sweep plus the
//! `grid_sweep` family as one parallel batch, write the
//! `BENCH_serving.json` artifact, and gate p99 against the checked-in
//! baseline.
//!
//! ```text
//! # what CI runs (fails with exit code 1 on a >20 % regression of any
//! # gated metric — p99, reconfigs, host_upload_bytes, victim_p99_secs,
//! # victim_goodput_p99_secs, wasted_work_bytes, wasted_secs,
//! # tenant_drops, hit_rate, recompute_secs_saved, sim_events_per_sec):
//! cargo run --release -p agnn-bench --bin bench_smoke -- \
//!     --baseline ci/bench_serving_baseline.json --out BENCH_serving.json \
//!     --trace-out BENCH_trace.json --timing-out BENCH_timing.md \
//!     --summary "$GITHUB_STEP_SUMMARY"
//!
//! # refresh the baseline after an intentional perf change (in-PR):
//! cargo run --release -p agnn-bench --bin bench_smoke -- \
//!     --write-baseline ci/bench_serving_baseline.json
//! ```
//!
//! `--jobs N` caps the scenario fan-out (default: every core,
//! [`agnn_serve::default_jobs`]). The job count is invisible in the
//! artifacts: scenarios merge in case order
//! ([`serving_smoke::run_all_jobs`]), so `--jobs 1` and `--jobs 8`
//! render byte-identical documents apart from the host-wall sim
//! self-metrics, and a `wall clock` line prints the measured speedup
//! (serial estimate = the sum of every scenario's in-worker
//! `sim_wall_secs`, over the batch's actual wall clock).
//!
//! `--timing-out <file>` writes the per-scenario timing table
//! ([`serving_smoke::render_timing_table`]) — CI uploads it next to the
//! metrics artifact so "which scenario got slow" needs no local rebuild.
//!
//! `--summary` appends a baseline-vs-run markdown delta table to the
//! given file (GitHub renders `$GITHUB_STEP_SUMMARY` on the job page, so
//! regressions are readable without downloading the artifact). The table
//! is written *before* the gate verdict is returned — a failing run still
//! publishes its deltas.
//!
//! `--trace-out <file>` additionally replays the `migration_drift`
//! scenario with a Perfetto trace sink attached
//! ([`serving_smoke::perfetto_trace`]) and writes the
//! `chrome://tracing` / [ui.perfetto.dev] JSON document — the CI job
//! uploads it next to `BENCH_serving.json` so a regressed run's
//! board-resource timeline can be inspected without a local rebuild.
//! The document is sanity-parsed (valid JSON, nonzero `traceEvents`)
//! before it is written: a malformed trace fails the run, never lands
//! as a green artifact.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use std::process::ExitCode;

use agnn_bench::{perfgate, serving_smoke};

/// The sweep case `--trace-out` replays: the scenario exercising the
/// most machinery at once (pipelined boards, LRU eviction, peer
/// migration), so its trace shows every track the writer knows.
const TRACE_SCENARIO: &str = "migration_drift";

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    summary: Option<String>,
    trace_out: Option<String>,
    timing_out: Option<String>,
    jobs: usize,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        baseline: None,
        write_baseline: None,
        summary: None,
        trace_out: None,
        timing_out: None,
        jobs: agnn_serve::default_jobs(),
        tolerance: 0.20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--summary" => args.summary = Some(value("--summary")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--timing-out" => args.timing_out = Some(value("--timing-out")?),
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(args.tolerance.is_finite() && args.tolerance >= 0.0) {
                    return Err("--tolerance must be a non-negative number".to_string());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let started = std::time::Instant::now();
    let sweep = serving_smoke::run_all_jobs(args.jobs);
    let wall = started.elapsed().as_secs_f64();
    for s in &sweep {
        let overall = s.report.overall_latency();
        let victim = s
            .victim_p99_secs()
            .map_or(String::new(), |p| format!(" victim_p99={p:>9.4} s"));
        let goodput = s
            .victim_goodput_p99_secs()
            .map_or(String::new(), |p| format!(" goodput_p99={p:>7.4} s"));
        println!(
            "{:<28} boards={} placement={:<17} sched={:<4} p99={:>9.4} s reconfigs={:>6} \
             completed={} migrations={:>4} host_gb={:>8.2}{victim}{goodput}",
            s.name,
            s.config.boards,
            s.config.placement.name(),
            s.config.scheduler.name(),
            overall.quantile(0.99),
            s.report.reconfigs,
            s.report.completed(),
            s.report.migrations(),
            s.report.host_upload_bytes() as f64 / 1e9,
        );
    }

    // The speedup line: the serial estimate is the sum of every run's
    // in-worker wall clock, so it and the measured batch wall share the
    // same host and the ratio is an honest fan-out figure.
    let serial_estimate: f64 = sweep.iter().map(|s| s.report.sim.wall_secs).sum();
    let speedup_line = format!(
        "wall clock {wall:.2} s vs {serial_estimate:.2} s serial estimate \
         ({:.2}x at --jobs {})",
        serial_estimate / wall.max(1e-9),
        args.jobs,
    );
    println!("{speedup_line}");
    if let Some(path) = &args.summary {
        append_to(path, &format!("\n{speedup_line}\n"))
            .map_err(|e| format!("writing summary {path}: {e}"))?;
    }

    if let Some(path) = &args.timing_out {
        let table = serving_smoke::render_timing_table(&sweep);
        std::fs::write(path, &table).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote timing table {path}");
    }

    let artifact = serving_smoke::render_json(&sweep);
    if let Some(path) = &args.out {
        std::fs::write(path, &artifact).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote artifact {path}");
    }
    if let Some(path) = &args.write_baseline {
        let baseline = serving_smoke::render_baseline_json(&sweep);
        std::fs::write(path, baseline).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote baseline {path}");
    }
    if let Some(path) = &args.trace_out {
        let trace = serving_smoke::perfetto_trace(TRACE_SCENARIO)
            .ok_or_else(|| format!("unknown trace scenario '{TRACE_SCENARIO}'"))?;
        // Sanity-parse before writing: an artifact Perfetto cannot load
        // must fail the run, not land green.
        let doc = perfgate::parse(&trace).map_err(|e| format!("trace does not parse: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(perfgate::Json::as_arr)
            .map_or(0, <[perfgate::Json]>::len);
        if events == 0 {
            return Err("trace parsed but carries no traceEvents".to_string());
        }
        std::fs::write(path, &trace).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote Perfetto trace {path} ({TRACE_SCENARIO}, {events} events)");
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let baseline = perfgate::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let current = perfgate::parse(&artifact).map_err(|e| format!("parsing artifact: {e}"))?;
        // The delta table lands in the summary before the verdict is
        // decided, so a failing gate still publishes its numbers.
        if let Some(summary_path) = &args.summary {
            let table = perfgate::render_summary_table(&baseline, &current)?;
            append_to(summary_path, &table)
                .map_err(|e| format!("writing summary {summary_path}: {e}"))?;
            println!("appended delta table to {summary_path}");
        }
        let outcome = perfgate::gate_p99(&baseline, &current, args.tolerance)?;
        for note in &outcome.notes {
            println!("note: {note}");
        }
        if !outcome.passed() {
            for failure in &outcome.failures {
                eprintln!("PERF GATE FAILURE: {failure}");
            }
            return Err(format!(
                "{} scenario(s) regressed past {:.0} % — if intentional, refresh the \
                 baseline with --write-baseline {path}",
                outcome.failures.len(),
                args.tolerance * 100.0
            ));
        }
        println!(
            "perf gate passed ({} scenario(s), tolerance {:.0} %)",
            baseline
                .get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map_or(0, <[perfgate::Json]>::len),
            args.tolerance * 100.0
        );
    }
    Ok(())
}

/// Appends `content` to the file at `path` (creating it if missing) —
/// `$GITHUB_STEP_SUMMARY` is append-only by contract, and other steps may
/// already have written to it.
fn append_to(path: &str, content: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(content.as_bytes())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_smoke: {message}");
            ExitCode::FAILURE
        }
    }
}

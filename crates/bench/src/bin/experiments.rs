//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p agnn-bench --bin experiments
//! ```

fn main() {
    agnn_bench::run_all();
}

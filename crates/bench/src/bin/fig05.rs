//! Regenerates Fig. 5.
fn main() {
    agnn_bench::motivation::fig05();
}

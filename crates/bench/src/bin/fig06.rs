//! Regenerates Fig. 6.
fn main() {
    agnn_bench::motivation::fig06();
}

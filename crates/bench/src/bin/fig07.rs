//! Regenerates Fig. 7.
fn main() {
    agnn_bench::motivation::fig07();
}

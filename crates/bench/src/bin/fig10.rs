//! Regenerates Fig. 10.
fn main() {
    agnn_bench::motivation::fig10();
}

//! Regenerates Fig. 18.
fn main() {
    agnn_bench::headline::fig18();
}

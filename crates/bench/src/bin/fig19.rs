//! Regenerates Fig. 19.
fn main() {
    agnn_bench::headline::fig19();
}

//! Regenerates Fig. 20.
fn main() {
    agnn_bench::headline::fig20();
}

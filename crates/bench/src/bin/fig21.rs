//! Regenerates Fig. 21.
fn main() {
    agnn_bench::headline::fig21();
}

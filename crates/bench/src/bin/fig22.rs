//! Regenerates Fig. 22.
fn main() {
    agnn_bench::reconfig::fig22();
}

//! Regenerates Fig. 23.
fn main() {
    agnn_bench::reconfig::fig23();
}

//! Regenerates Fig. 24.
fn main() {
    agnn_bench::reconfig::fig24();
}

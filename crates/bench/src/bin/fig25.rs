//! Regenerates Fig. 25.
fn main() {
    agnn_bench::sensitivity::fig25();
}

//! Regenerates Fig. 26.
fn main() {
    agnn_bench::sensitivity::fig26();
}

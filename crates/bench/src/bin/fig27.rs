//! Regenerates Fig. 27.
fn main() {
    agnn_bench::sensitivity::fig27();
}

//! Regenerates Fig. 28.
fn main() {
    agnn_bench::reconfig::fig28();
}

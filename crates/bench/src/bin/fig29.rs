//! Regenerates Fig. 29.
fn main() {
    agnn_bench::sensitivity::fig29();
}

//! Regenerates Fig. 30.
fn main() {
    agnn_bench::reconfig::fig30();
}

//! Regenerates Fig. 31.
fn main() {
    agnn_bench::reconfig::fig31();
}

//! A million served requests at interactive speed — the scale target of
//! the calendar-queue simulator core (`crates/serve/src/engine/`).
//!
//! Replays the gated `migration_drift` deployment shape — six
//! memory-pressured Taobao regions on four pipelined boards with
//! peer-to-peer graph rehydration — but for **1,000,000 requests**
//! instead of the smoke sweep's 6,000, and reports the simulator's own
//! self-metrics (events processed, host wall clock, events/second)
//! alongside the serving results. On a laptop-class core this finishes
//! in around a second; before the engine rewrite it took an order of
//! magnitude longer.
//!
//! ```text
//! cargo run --release -p agnn-bench --bin million_requests [-- REQUESTS]
//! ```
//!
//! The run is fully deterministic in the seed (the wall-clock
//! self-metrics are the only numbers that vary between hosts), so the
//! printed p99/reconfig/migration figures are reproducible bit-for-bit.

use agnn_serve::{MigratePolicy, ServeConfig, TenantSpec, TrafficSim};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    // The `migration_drift` sweep case, scaled up: same tenants, same
    // policies, three orders of magnitude more offered load.
    let config = ServeConfig::reconfig_aware()
        .to_builder()
        .seed(4_242)
        .total_requests(requests)
        .queue_capacity(512)
        .boards(4)
        .overlap(true)
        .migrate(MigratePolicy::PeerRehydrate)
        .build()
        .expect("scaled migration_drift config is valid");
    let tenants = TenantSpec::taobao_regions(4.0, 900.0);

    let mut sim = TrafficSim::new(tenants, config);
    let report = sim.run();

    let completed: u64 = report.tenants.iter().map(|t| t.completed).sum();
    let dropped: u64 = report.tenants.iter().map(|t| t.dropped).sum();
    println!("requests offered     {requests}");
    println!("completed            {completed}");
    println!("dropped              {dropped}");
    println!("simulated duration   {:>12.1} s", report.duration_secs);
    println!(
        "p50 / p99 latency    {:>12.4} s / {:.4} s",
        report.overall_latency().quantile(0.50),
        report.overall_latency().quantile(0.99),
    );
    println!("reconfigurations     {}", report.reconfigs);
    println!("migrations           {}", report.migrations());
    println!(
        "cache hit-rate       {:>12.1} % ({}, {} coalesced)",
        report.cache.hit_rate() * 100.0,
        config.cache.name(),
        report.cache.coalesced,
    );
    println!(
        "host / switch bytes  {:.2} GiB / {:.2} GiB",
        report.host_upload_bytes() as f64 / (1u64 << 30) as f64,
        report.switch_bytes() as f64 / (1u64 << 30) as f64,
    );
    println!();
    println!("sim events           {}", report.sim.events);
    println!("sim wall clock       {:>12.3} s", report.sim.wall_secs);
    println!(
        "sim speed            {:>12.2} M events/s",
        report.sim.events_per_sec() / 1e6
    );
}

//! A million served requests at interactive speed — the scale target of
//! the calendar-queue simulator core (`crates/serve/src/engine/`).
//!
//! Replays the gated `migration_drift` deployment shape — six
//! memory-pressured Taobao regions on four pipelined boards with
//! peer-to-peer graph rehydration (see [`agnn_bench::million`]) — but
//! for **1,000,000 requests** instead of the smoke sweep's 6,000, and
//! reports the simulator's own self-metrics (events processed, host wall
//! clock, events/second) alongside the serving results. On a
//! laptop-class core a single seed finishes in around a second; before
//! the engine rewrite it took an order of magnitude longer.
//!
//! ```text
//! cargo run --release -p agnn-bench --bin million_requests -- \
//!     [REQUESTS] [--seeds 4242,4243,...] [--jobs N]
//! ```
//!
//! `--seeds` replays the identical deployment once per seed — fanned
//! across up to `--jobs` worker threads (default: every core) — and
//! prints a per-seed digest table. The runs are fully deterministic in
//! their seeds and merge in seed order (the wall-clock self-metrics are
//! the only numbers that vary between hosts or job counts), so the
//! printed p99/reconfig/migration figures and every per-seed
//! `trace_digest` are reproducible bit-for-bit: `--jobs 8` prints the
//! digest table `--jobs 1` does.

use std::process::ExitCode;
use std::time::Instant;

use agnn_bench::million;
use agnn_serve::TrafficReport;

struct Args {
    requests: u64,
    seeds: Vec<u64>,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 1_000_000,
        seeds: vec![million::DEFAULT_SEED],
        jobs: agnn_serve::default_jobs(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.seeds.is_empty() {
                    return Err("--seeds needs at least one seed".to_string());
                }
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            other => {
                args.requests = other
                    .parse::<u64>()
                    .map_err(|_| format!("unknown argument '{other}'"))?;
            }
        }
    }
    Ok(args)
}

/// The original single-seed report: every serving figure plus the
/// simulator's self-metrics.
fn print_report(requests: u64, report: &TrafficReport) {
    let completed: u64 = report.tenants.iter().map(|t| t.completed).sum();
    let dropped: u64 = report.tenants.iter().map(|t| t.dropped).sum();
    let cache = million::config(million::DEFAULT_SEED, requests).cache;
    println!("requests offered     {requests}");
    println!("completed            {completed}");
    println!("dropped              {dropped}");
    println!("simulated duration   {:>12.1} s", report.duration_secs);
    println!(
        "p50 / p99 latency    {:>12.4} s / {:.4} s",
        report.overall_latency().quantile(0.50),
        report.overall_latency().quantile(0.99),
    );
    println!("reconfigurations     {}", report.reconfigs);
    println!("migrations           {}", report.migrations());
    println!(
        "cache hit-rate       {:>12.1} % ({}, {} coalesced)",
        report.cache.hit_rate() * 100.0,
        cache.name(),
        report.cache.coalesced,
    );
    println!(
        "host / switch bytes  {:.2} GiB / {:.2} GiB",
        report.host_upload_bytes() as f64 / (1u64 << 30) as f64,
        report.switch_bytes() as f64 / (1u64 << 30) as f64,
    );
    println!();
    println!("sim events           {}", report.sim.events);
    println!("sim wall clock       {:>12.3} s", report.sim.wall_secs);
    println!(
        "sim speed            {:>12.2} M events/s",
        report.sim.events_per_sec() / 1e6
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("million_requests: {message}");
            return ExitCode::FAILURE;
        }
    };

    let started = Instant::now();
    let reports = million::seed_reports(args.requests, &args.seeds, args.jobs);
    let wall = started.elapsed().as_secs_f64();

    if let [report] = reports.as_slice() {
        print_report(args.requests, report);
        return ExitCode::SUCCESS;
    }

    // Multi-seed mode: one digest row per seed, in seed order — the
    // digests are what the determinism contract pins, so they lead.
    println!(
        "{} requests x {} seeds (--jobs {})",
        args.requests,
        args.seeds.len(),
        args.jobs
    );
    println!("seed      completed   dropped  p99_secs   reconfigs  trace_digest");
    for (seed, report) in args.seeds.iter().zip(&reports) {
        println!(
            "{:<8} {:>10} {:>9} {:>9.4} {:>11} {:>17}",
            seed,
            report.completed(),
            report.dropped(),
            report.overall_latency().quantile(0.99),
            report.reconfigs,
            format!("{:016x}", report.trace_digest),
        );
    }
    let serial_estimate: f64 = reports.iter().map(|r| r.sim.wall_secs).sum();
    let events: u64 = reports.iter().map(|r| r.sim.events).sum();
    println!();
    println!("sim events           {events}");
    println!(
        "wall clock           {wall:>12.3} s ({serial_estimate:.3} s serial estimate, {:.2}x)",
        serial_estimate / wall.max(1e-9),
    );
    ExitCode::SUCCESS
}

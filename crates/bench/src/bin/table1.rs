//! Regenerates Table I.
fn main() {
    agnn_bench::tables::table1();
}

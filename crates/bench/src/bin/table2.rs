//! Regenerates Table II.
fn main() {
    agnn_bench::tables::table2();
}

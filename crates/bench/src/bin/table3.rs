//! Regenerates Table III.
fn main() {
    agnn_bench::tables::table3();
}

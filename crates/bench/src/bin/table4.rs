//! Regenerates Table IV.
fn main() {
    agnn_bench::tables::table4();
}

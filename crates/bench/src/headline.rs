//! The headline comparison: Figs. 18–21.

use agnn_core::systems::{evaluate, lut_utilization, transfer_bytes, SystemContext, SystemKind};
use agnn_devices::power::PowerModel;
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;

use crate::banner;

fn contexts() -> Vec<(Dataset, SystemContext)> {
    agnn_core::systems::dataset_contexts(GnnSpec::table_iii_default())
}

/// Fig. 18: end-to-end latency of the seven systems, normalized to GPU,
/// plus DynPre's memory-bandwidth utilization. Paper speedups over CPU:
/// GPU 3.4x, GSamp 4.5x, FPGA 4.1x, AutoPre 7.3x, StatPre 8.4x, DynPre 9.0x.
pub fn fig18() {
    banner("Fig. 18: end-to-end latency (normalized to GPU) + DynPre BW util");
    print!("{:<4}", "id");
    for kind in SystemKind::ALL {
        print!(" {:>8}", kind.name());
    }
    println!(" {:>8}", "BW-util");

    let mut logsum = [0.0f64; 7];
    let mut rows = 0usize;
    for (d, ctx) in contexts() {
        let runs: Vec<_> = SystemKind::ALL.iter().map(|&k| evaluate(&ctx, k)).collect();
        let gpu_total = runs[1].total_secs();
        print!("{:<4}", d.abbrev());
        for run in &runs {
            if run.oom {
                print!(" {:>8}", "OOM");
            } else if gpu_total.is_finite() {
                print!(" {:>8.2}", run.total_secs() / gpu_total);
            } else {
                print!(" {:>7.0}ms", run.total_secs() * 1e3);
            }
        }
        let util = runs[6].bandwidth_utilization.unwrap_or(0.0);
        println!(" {:>7.1}%", util * 100.0);
        if runs.iter().all(|r| !r.oom) {
            let cpu = runs[0].total_secs();
            for (i, run) in runs.iter().enumerate() {
                logsum[i] += (cpu / run.total_secs()).ln();
            }
            rows += 1;
        }
    }
    println!("\ngeometric-mean speedup over CPU (paper in parentheses):");
    let paper = [1.0, 3.4, 4.5, 4.1, 7.3, 8.4, 9.0];
    for (i, kind) in SystemKind::ALL.iter().enumerate() {
        let measured = (logsum[i] / rows as f64).exp();
        println!("  {:<8} {:>6.2}x  ({}x)", kind.name(), measured, paper[i]);
    }
}

/// Fig. 19: power and energy. Paper: 9.3 W vs 183 W preprocessing power
/// (19.7x) and 3.3x lower end-to-end energy.
pub fn fig19() {
    banner("Fig. 19: power and energy (AM workload)");
    let power = PowerModel::default();
    let ctx = contexts()
        .into_iter()
        .find(|(d, _)| *d == Dataset::Amazon)
        .expect("AM in catalog")
        .1;
    let gpu = evaluate(&ctx, SystemKind::Gpu);
    let dynpre = evaluate(&ctx, SystemKind::DynPre);
    println!(
        "preprocessing power : FPGA {:.1} W vs GPU {:.0} W -> {:.1}x (paper 19.7x)",
        power.fpga_preprocess_w,
        power.gpu_preprocess_w,
        power.preprocess_power_ratio()
    );
    let gpu_energy = power.end_to_end_energy(
        power.gpu_preprocess_w,
        gpu.preprocess.total() + gpu.transfer_secs,
        gpu.inference_secs,
    );
    let dyn_energy = power.end_to_end_energy(
        power.fpga_preprocess_w,
        dynpre.preprocess.total() + dynpre.transfer_secs,
        dynpre.inference_secs,
    );
    println!(
        "end-to-end energy   : GPU {:.1} J vs DynPre {:.1} J -> {:.1}x lower (paper 3.3x)",
        gpu_energy,
        dyn_energy,
        gpu_energy / dyn_energy
    );
}

/// Fig. 20: per-pass transfer volume. Paper: AutoPre moves 13.6x less than
/// GPU and 20x less than the external FPGA sampler.
pub fn fig20() {
    banner("Fig. 20: transfer overhead per pass");
    println!(
        "{:<4} {:>12} {:>12} {:>12}",
        "id", "GPU(MB)", "FPGA(MB)", "AutoPre(MB)"
    );
    let mut ratios = (Vec::new(), Vec::new());
    for (d, ctx) in contexts() {
        let gpu = transfer_bytes(&ctx, SystemKind::Gpu) as f64 / 1e6;
        let fpga = transfer_bytes(&ctx, SystemKind::FpgaSampler) as f64 / 1e6;
        let auto = transfer_bytes(&ctx, SystemKind::AutoPre) as f64 / 1e6;
        ratios.0.push(gpu / auto);
        ratios.1.push(fpga / auto);
        println!(
            "{:<4} {:>12.1} {:>12.1} {:>12.1}",
            d.abbrev(),
            gpu,
            fpga,
            auto
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average reduction vs GPU {:.1}x (paper 13.6x), vs FPGA {:.1}x (paper 20x)",
        avg(&ratios.0),
        avg(&ratios.1)
    );
}

/// Fig. 21: LUT utilization of AutoPre vs StatPre. Paper: 47 % vs 82.2 %
/// (1.7x).
pub fn fig21() {
    banner("Fig. 21: LUT utilization");
    let mut autos = Vec::new();
    let mut stats = Vec::new();
    for (_, ctx) in contexts() {
        autos.push(lut_utilization(&ctx, SystemKind::AutoPre));
        stats.push(lut_utilization(&ctx, SystemKind::StatPre));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (a, s) = (avg(&autos) * 100.0, avg(&stats) * 100.0);
    println!(
        "AutoPre {a:.1}% vs StatPre {s:.1}% -> {:.2}x (paper: 47% vs 82.2%, 1.7x)",
        s / a
    );
}

//! The AutoGNN experiment harness: one function per table and figure of the
//! paper's evaluation (§III and §VI), each printing the same rows/series the
//! paper reports together with the paper's reported values.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p agnn-bench --bin experiments
//! ```
//!
//! or a single experiment, e.g. `cargo run -p agnn-bench --bin fig18`.
//! Criterion micro-benchmarks of the underlying components live in
//! `benches/`.
#![warn(missing_docs)]

pub mod headline;
pub mod million;
pub mod motivation;
pub mod perfgate;
pub mod reconfig;
pub mod sensitivity;
pub mod serving_smoke;
pub mod tables;

/// Runs every table and figure harness in paper order.
pub fn run_all() {
    tables::table1();
    tables::table2();
    tables::table3();
    tables::table4();
    motivation::fig05();
    motivation::fig06();
    motivation::fig07();
    motivation::fig10();
    headline::fig18();
    headline::fig19();
    headline::fig20();
    headline::fig21();
    reconfig::fig22();
    reconfig::fig23();
    reconfig::fig24();
    sensitivity::fig25();
    sensitivity::fig26();
    sensitivity::fig27();
    reconfig::fig28();
    sensitivity::fig29();
    reconfig::fig30();
    reconfig::fig31();
}

/// Prints a section banner.
pub(crate) fn banner(title: &str) {
    println!("\n==========================================================");
    println!("{title}");
    println!("==========================================================");
}

//! The million-request replay deployment behind the `million_requests`
//! binary: the gated `migration_drift` shape — six memory-pressured
//! Taobao regions on four pipelined boards with peer-to-peer graph
//! rehydration — scaled to arbitrary offered load and replayed once per
//! seed.
//!
//! Multi-seed replays fan out through [`agnn_serve::par_runs`] and come
//! back **in seed order** (the fixed-order merge contract), so every
//! per-seed trace digest the binary prints is independent of the job
//! count — `--jobs 8` must print the same digest table as `--jobs 1`,
//! and the test below pins that.

use agnn_serve::{par_runs, MigratePolicy, ServeConfig, TenantSpec, TrafficReport};

/// The default seed of the single-seed replay (the smoke sweep's
/// [`crate::serving_smoke::SMOKE_SEED`], so the 6 000-request prefix of
/// the default run is the gated scenario's trace).
pub const DEFAULT_SEED: u64 = 4_242;

/// The scaled `migration_drift` configuration at `requests` offered load
/// under `seed`.
///
/// # Panics
///
/// Panics if the builder rejects the configuration (impossible for the
/// fixed knobs used here).
pub fn config(seed: u64, requests: u64) -> ServeConfig {
    ServeConfig::reconfig_aware()
        .to_builder()
        .seed(seed)
        .total_requests(requests)
        .queue_capacity(512)
        .boards(4)
        .overlap(true)
        .migrate(MigratePolicy::PeerRehydrate)
        .build()
        .expect("scaled migration_drift config is valid")
}

/// The deployment's tenant mix (fresh per run — every simulation owns
/// its tenants).
pub fn tenants() -> Vec<TenantSpec> {
    TenantSpec::taobao_regions(4.0, 900.0)
}

/// Replays the deployment once per seed at `requests` offered load,
/// fanned across up to `jobs` worker threads; reports return in seed
/// order regardless of the job count.
pub fn seed_reports(requests: u64, seeds: &[u64], jobs: usize) -> Vec<TrafficReport> {
    par_runs(
        jobs,
        seeds
            .iter()
            .map(|&seed| (tenants(), config(seed, requests)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multi-seed digests match the serial loop for every job count, and
    /// distinct seeds genuinely produce distinct traces.
    #[test]
    fn per_seed_digests_match_serial_for_every_job_count() {
        let seeds = [DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2];
        let requests = 1_000;
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| {
                agnn_serve::TrafficSim::new(tenants(), config(s, requests))
                    .run()
                    .trace_digest
            })
            .collect();
        assert_eq!(
            serial
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            seeds.len(),
            "seeds must decorrelate the traces: {serial:?}"
        );
        for jobs in [1, 2, 4] {
            let digests: Vec<u64> = seed_reports(requests, &seeds, jobs)
                .iter()
                .map(|r| r.trace_digest)
                .collect();
            assert_eq!(digests, serial, "jobs={jobs}");
        }
    }
}

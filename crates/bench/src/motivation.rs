//! The §III motivation studies: Figs. 5, 6, 7 and 10.

use agnn_core::config::EvalSetup;
use agnn_core::scenario::task_share_series;
use agnn_core::systems::{evaluate, SystemContext, SystemKind};
use agnn_devices::gpu::SerializedFractions;
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;

use crate::banner;

fn contexts() -> Vec<(Dataset, SystemContext)> {
    agnn_core::systems::dataset_contexts(GnnSpec::table_iii_default())
}

/// Fig. 5: preprocessing share of end-to-end GNN service latency on the
/// GPU/DGL system. Paper: 70 % average, growing with graph size; TB OOMs.
pub fn fig05() {
    banner("Fig. 5: GNN preprocessing overhead (GPU system)");
    println!(
        "{:<4} {:>14} {:>12} {:>12}",
        "id", "preprocess(%)", "inference(%)", "total(ms)"
    );
    let mut shares = Vec::new();
    for (d, ctx) in contexts() {
        let run = evaluate(&ctx, SystemKind::Gpu);
        if run.oom {
            println!("{:<4} {:>14} {:>12} {:>12}", d.abbrev(), "OOM", "-", "-");
            continue;
        }
        let share = run.preprocess_share_pct();
        shares.push(share);
        println!(
            "{:<4} {:>13.1}% {:>11.1}% {:>12.1}",
            d.abbrev(),
            share,
            100.0 - share,
            run.total_secs() * 1e3
        );
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    println!("measured average preprocessing share: {avg:.1}% (paper: ~70%, up to 90.8%)");
}

/// Fig. 6: the four-task breakdown of GPU preprocessing. Paper: sampling
/// (Selecting+Reindexing) dominates small graphs; Reshaping (86.1 %)
/// dominates large ones with Ordering at 1.8 %.
pub fn fig06() {
    banner("Fig. 6: breakdown of GNN preprocessing (GPU system)");
    println!(
        "{:<4} {:>10} {:>10} {:>10} {:>11}",
        "id", "ordering", "reshaping", "selecting", "reindexing"
    );
    for (d, ctx) in contexts() {
        match evaluate(&ctx, SystemKind::Gpu) {
            run if run.oom => println!("{:<4} {:>10}", d.abbrev(), "OOM"),
            run => {
                let s = run.preprocess.shares_pct();
                println!(
                    "{:<4} {:>9.1}% {:>9.1}% {:>9.1}% {:>10.1}%",
                    d.abbrev(),
                    s[0],
                    s[1],
                    s[2],
                    s[3]
                );
            }
        }
    }
    println!("paper: small graphs Selecting 33.8% / Reindexing 22.1%; large graphs Reshaping 86.1% / Ordering 1.8%");
}

/// Fig. 7: task-share drift of the dynamic graphs SO and TB.
pub fn fig07() {
    banner("Fig. 7: latency breakdown of dynamic graphs over time (GPU system)");
    let gnn = GnnSpec::table_iii_default();
    for (dataset, days, step) in [
        (Dataset::StackOverflow, 2_000u32, 250u32),
        (Dataset::Taobao, 2_000, 250),
    ] {
        println!(
            "\n{} ({}%/day edge growth):",
            dataset.abbrev(),
            dataset.spec().daily_growth_pct.unwrap()
        );
        println!(
            "{:>6} {:>9} {:>10} {:>10} {:>11} {:>10}",
            "day", "ordering", "reshaping", "selecting", "reindexing", "inference"
        );
        let series = task_share_series(dataset, days, step, gnn);
        let mut crossover = None;
        for p in &series {
            println!(
                "{:>6} {:>8.1}% {:>9.1}% {:>9.1}% {:>10.1}% {:>9.1}%",
                p.day, p.shares[0], p.shares[1], p.shares[2], p.shares[3], p.shares[4]
            );
            // Conversion (ordering + reshaping) vs sampling (selecting +
            // reindexing): the trend Fig. 7 illustrates.
            if crossover.is_none() && p.shares[0] + p.shares[1] > p.shares[2] + p.shares[3] {
                crossover = Some(p.day);
            }
        }
        if let Some(day) = crossover {
            println!(
                "conversion overtakes sampling by day {day} (paper: Reshaping passes \
                 Selecting around day 400 for SO, day 20 for TB)"
            );
        }
    }
}

/// Fig. 10: serialized-computation analysis of the GPU implementation.
/// Paper: 64.1 % of execution serialized on average; the serial time splits
/// 27.9 % selection / 41 % reshaping / 31.1 % reindexing.
pub fn fig10() {
    banner("Fig. 10: serialized computation analysis (GPU)");
    let fractions = SerializedFractions::default();
    println!(
        "{:<4} {:>12} | {:>10} {:>10} {:>10}",
        "id", "serialized", "sel-share", "resh-share", "reidx-share"
    );
    let mut serialized_all = Vec::new();
    let mut splits = (Vec::new(), Vec::new(), Vec::new());
    for (d, ctx) in contexts() {
        let Some(serialized) = ctx.gpu.serialized_fraction(&ctx.workload, &fractions) else {
            println!("{:<4} {:>12}", d.abbrev(), "OOM");
            continue;
        };
        let (sel, resh, reidx) = ctx
            .gpu
            .serial_task_shares(&ctx.workload, &fractions)
            .expect("non-OOM");
        serialized_all.push(serialized);
        splits.0.push(sel);
        splits.1.push(resh);
        splits.2.push(reidx);
        println!(
            "{:<4} {:>11.1}% | {:>9.1}% {:>9.1}% {:>9.1}%",
            d.abbrev(),
            serialized * 100.0,
            sel,
            resh,
            reidx
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "measured averages: serialized {:.1}% (paper 64.1%); serial split sel {:.1}% / resh {:.1}% / reidx {:.1}% (paper 27.9/41/31.1)",
        avg(&serialized_all) * 100.0,
        avg(&splits.0),
        avg(&splits.1),
        avg(&splits.2)
    );
    let setup = EvalSetup::default();
    let mid = setup.workload(233_000, 23_200_000);
    let util = agnn_devices::gpu::GpuModel::default()
        .bandwidth_utilization(&mid, &fractions)
        .expect("RD fits");
    println!(
        "GPU memory-bandwidth utilization (RD): {:.1}% (paper average 30.3%)",
        util * 100.0
    );
}

//! The CI perf-regression gate.
//!
//! `bench_smoke` (see `src/bin/bench_smoke.rs`) replays a small seeded
//! serving scenario sweep and emits `BENCH_serving.json`; this module
//! parses that document (and the checked-in baseline
//! `ci/bench_serving_baseline.json`) with a dependency-free JSON reader
//! and decides whether the run regressed. The contract, enforced by the
//! `bench-smoke` CI job:
//!
//! - the baseline and run scenario sets must match: a baseline scenario
//!   missing from the run fails, and so does a run scenario missing from
//!   the baseline (an ungated scenario is a silent hole in the perf
//!   trajectory);
//! - a scenario's p99 may not exceed the baseline p99 by more than the
//!   tolerance (20 % by default) — ICAP stalls leaking back into the tail
//!   is exactly the regression the board pool exists to prevent;
//! - when both documents record a scenario's `reconfigs`, the count is
//!   gated with the same tolerance — bitstream-affinity breakage must
//!   fail even on a trace whose p99 absorbs the extra stalls;
//! - when both documents record a scenario's `host_upload_bytes`, it is
//!   gated with the same tolerance — cross-board migration exists to keep
//!   graphs off the host link, so quietly re-uploading from the host must
//!   fail even when the tail absorbs it;
//! - when both documents record a scenario's `victim_p99_secs` (the
//!   worse victim-tenant tail of a bursty-aggressor scenario), it is
//!   gated with the same tolerance — weighted fair queueing exists to
//!   bound exactly that number, and the *overall* p99 is dominated by the
//!   aggressor, so victim starvation would otherwise hide;
//! - when both documents record a scenario's `victim_goodput_p99_secs`
//!   (the worse victim-tenant tail over *on-time* completions of a
//!   deadline-enforcing scenario), it is gated with the same tolerance —
//!   deadline enforcement exists to bound exactly that number, and the
//!   raw victim p99 shrinks as soon as slow requests expire instead of
//!   completing, so only the goodput tail is honest;
//! - when both documents record a scenario's `wasted_work_bytes` or
//!   `wasted_secs` (the deadline lifecycle's waste ledger: bytes moved
//!   and board time spent for requests that then expired, were aborted
//!   or lost their hedge race), each is gated with the same tolerance —
//!   a zero-byte baseline means enforcement silently starting to move
//!   dead bytes fails CI;
//! - when both documents record a scenario's `tenant_drops` (an object of
//!   per-tenant drop counts), each tenant present on both sides is gated
//!   with the same tolerance — a baseline of zero victim drops means
//!   *any* victim drop fails, which is the fairness isolation contract;
//! - when both documents record a scenario's `hit_rate` or
//!   `recompute_secs_saved` (the result-cache scenario's effectiveness),
//!   the gate is **inverted** — it fails when the run's value drops below
//!   `baseline * (1 - tolerance)`. Both are simulated, deterministic
//!   numbers, so they use the caller's tolerance (not the generous
//!   wall-clock one): a cache that silently stops hitting keeps a fine
//!   tail on the light replay trace, so the p99 gate alone would hide
//!   the regression;
//! - when both documents record a scenario's `sim_events_per_sec` (the
//!   simulator's own event-processing throughput), the gate is
//!   **inverted** — it fails when the run is *slower* than the baseline
//!   by more than [`SIM_SPEED_TOLERANCE`]. That tolerance is deliberately
//!   generous (40 %, vs 20 % for the simulated metrics) because wall
//!   clock on a shared CI runner is noisy in a way simulated seconds are
//!   not; the gate exists to catch a simulator that got *several times*
//!   slower (an accidental `O(n²)` scan, tracing overhead leaking into
//!   the `NullSink` path), not to flag scheduler jitter;
//! - improvements beyond the tolerance are reported as notes, nudging the
//!   author to refresh the baseline in the same PR;
//! - keys the gate does not know are **ignored, never fatal** — run
//!   documents grow metrics (per-stage breakdowns, overlap ratios,
//!   eviction counts) faster than baselines are refreshed, and an old
//!   baseline must keep gating a new artifact.
//!
//! The three documents involved — the per-run report
//! (`agnn-serve-report/v7`), the sweep artifact (`agnn-bench-serving/v7`)
//! and the checked-in baseline (`agnn-bench-serving-baseline/v6`) — are
//! specified field-by-field, with the versioning and refresh rules the
//! stale-baseline CI guard enforces, in `docs/SCHEMAS.md`.

use std::collections::BTreeMap;

/// Regression tolerance for `sim_events_per_sec` — deliberately wider
/// than the 20 % used for simulated metrics, because this is the one
/// gated number measured in *host* wall clock, and two legitimate noise
/// sources stack on it:
///
/// - shared CI runners jitter by tens of percent run to run;
/// - the sweep fans scenarios across every core
///   ([`crate::serving_smoke::run_all_jobs`]), so concurrent runs
///   contend for cores, cache and SMT siblings. Each run's wall clock is
///   still measured on its own worker around only that run — parallelism
///   never *bills* one scenario for another — but a run that shares its
///   core with a neighbor is genuinely slower than the same run alone,
///   by an amount that varies with the batch's scheduling.
///
/// 40 % absorbs both while still catching the failures the gate exists
/// for (a simulator that got severalfold slower, or tracing overhead
/// leaking into the default `NullSink` path). The baseline should be
/// refreshed with the same `--jobs` CI runs (the default on both sides)
/// so contention is on both sides of the comparison.
pub const SIM_SPEED_TOLERANCE: f64 = 0.40;

/// A parsed JSON value. Objects keep insertion order irrelevant — lookups
/// go through a sorted map, which is all the gate needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, ample for gate metrics).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole unescaped run in one go. Byte-wise
                // scanning is UTF-8-safe ('"' and '\\' never appear in
                // continuation bytes), and pushing the run as a chunk
                // keeps parsing O(n) — per-char `from_utf8` on the tail
                // made string-heavy documents (the Perfetto trace is
                // megabytes of short strings) quadratic.
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// What the gate decided.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Hard failures: the CI job must fail.
    pub failures: Vec<String>,
    /// Informational notes (e.g. "improved enough to refresh the
    /// baseline").
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// True when no scenario regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One scenario's gated metrics.
#[derive(Debug, Clone, PartialEq)]
struct ScenarioMetrics {
    p99_secs: f64,
    /// Absent in pre-reconfig-gate baselines; gated only when both sides
    /// carry it.
    reconfigs: Option<f64>,
    /// Absent in pre-migration baselines; gated only when both sides
    /// carry it.
    host_upload_bytes: Option<f64>,
    /// The worse victim-tenant p99 of a bursty-aggressor scenario; gated
    /// only when both sides carry it.
    victim_p99_secs: Option<f64>,
    /// The worse victim-tenant p99 over *on-time* completions of a
    /// deadline-enforcing scenario; gated only when both sides carry it.
    victim_goodput_p99_secs: Option<f64>,
    /// Bytes moved for requests that then expired, were aborted or lost
    /// their hedge race; gated only when both sides carry it.
    wasted_work_bytes: Option<f64>,
    /// Board time written off by the deadline lifecycle's waste ledger;
    /// gated only when both sides carry it.
    wasted_secs: Option<f64>,
    /// Per-tenant drop counts; each tenant present on both sides is
    /// gated.
    tenant_drops: Option<BTreeMap<String, f64>>,
    /// The result-cache hit-rate of a cache-enabled scenario; gated
    /// *inverted* — lower is a regression — at the caller's tolerance
    /// when both sides carry it.
    hit_rate: Option<f64>,
    /// Recompute seconds the cache avoided; gated *inverted* at the
    /// caller's tolerance when both sides carry it.
    recompute_secs_saved: Option<f64>,
    /// The simulator's own event throughput (host wall clock); gated
    /// *inverted* — lower is a regression — at [`SIM_SPEED_TOLERANCE`]
    /// when both sides carry it.
    sim_events_per_sec: Option<f64>,
}

/// Extracts `scenarios[].{name, p99_secs, reconfigs?, host_upload_bytes?,
/// victim_p99_secs?, victim_goodput_p99_secs?, wasted_work_bytes?,
/// wasted_secs?, tenant_drops?, hit_rate?, recompute_secs_saved?}`
/// from a smoke/baseline document.
fn scenario_metrics(doc: &Json) -> Result<Vec<(String, ScenarioMetrics)>, String> {
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("document has no 'scenarios' array")?;
    scenarios
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario missing 'name'")?
                .to_string();
            let p99_secs = s
                .get("p99_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario '{name}' missing numeric 'p99_secs'"))?;
            let reconfigs = s.get("reconfigs").and_then(Json::as_f64);
            let host_upload_bytes = s.get("host_upload_bytes").and_then(Json::as_f64);
            let victim_p99_secs = s.get("victim_p99_secs").and_then(Json::as_f64);
            let victim_goodput_p99_secs = s.get("victim_goodput_p99_secs").and_then(Json::as_f64);
            let wasted_work_bytes = s.get("wasted_work_bytes").and_then(Json::as_f64);
            let wasted_secs = s.get("wasted_secs").and_then(Json::as_f64);
            let tenant_drops = s.get("tenant_drops").and_then(Json::as_obj).map(|obj| {
                obj.iter()
                    .filter_map(|(tenant, v)| v.as_f64().map(|d| (tenant.clone(), d)))
                    .collect()
            });
            let hit_rate = s.get("hit_rate").and_then(Json::as_f64);
            let recompute_secs_saved = s.get("recompute_secs_saved").and_then(Json::as_f64);
            let sim_events_per_sec = s.get("sim_events_per_sec").and_then(Json::as_f64);
            Ok((
                name,
                ScenarioMetrics {
                    p99_secs,
                    reconfigs,
                    host_upload_bytes,
                    victim_p99_secs,
                    victim_goodput_p99_secs,
                    wasted_work_bytes,
                    wasted_secs,
                    tenant_drops,
                    hit_rate,
                    recompute_secs_saved,
                    sim_events_per_sec,
                },
            ))
        })
        .collect()
}

/// Gates `current` against `baseline`: the two scenario sets must match
/// (a baseline scenario missing from the run, or a run scenario missing
/// from the baseline, both fail — an ungated scenario is a silent hole in
/// the perf trajectory), p99 must not exceed `baseline * (1 + tolerance)`,
/// and — when both documents record it — neither may the reconfiguration
/// count (ICAP thrash regresses the tail even when this trace's p99
/// absorbs it).
///
/// # Errors
///
/// Returns an error when either document lacks the gate schema
/// (`scenarios[].name` / `scenarios[].p99_secs`).
pub fn gate_p99(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateOutcome, String> {
    let base = scenario_metrics(baseline)?;
    let cur: BTreeMap<String, ScenarioMetrics> = scenario_metrics(current)?.into_iter().collect();
    let mut outcome = GateOutcome::default();
    for (name, base_m) in &base {
        let Some(cur_m) = cur.get(name) else {
            outcome
                .failures
                .push(format!("scenario '{name}' missing from the current run"));
            continue;
        };
        let (base_p99, cur_p99) = (base_m.p99_secs, cur_m.p99_secs);
        let limit = base_p99 * (1.0 + tolerance);
        if cur_p99 > limit {
            outcome.failures.push(format!(
                "'{name}' p99 regressed: {cur_p99:.6} s vs baseline {base_p99:.6} s \
                 (limit {limit:.6} s, +{:.1} %)",
                (cur_p99 / base_p99 - 1.0) * 100.0
            ));
        } else if cur_p99 < base_p99 * (1.0 - tolerance) {
            outcome.notes.push(format!(
                "'{name}' p99 improved {:.1} % past the tolerance — consider refreshing \
                 the baseline ({cur_p99:.6} s vs {base_p99:.6} s)",
                (1.0 - cur_p99 / base_p99) * 100.0
            ));
        }
        if let (Some(base_rc), Some(cur_rc)) = (base_m.reconfigs, cur_m.reconfigs) {
            if cur_rc > base_rc * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' reconfigurations regressed: {cur_rc:.0} vs baseline {base_rc:.0} \
                     (limit {:.1})",
                    base_rc * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_hb), Some(cur_hb)) = (base_m.host_upload_bytes, cur_m.host_upload_bytes) {
            if cur_hb > base_hb * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' host upload bytes regressed: {cur_hb:.0} vs baseline {base_hb:.0} \
                     (limit {:.0}) — graphs are re-crossing the host link",
                    base_hb * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_vp), Some(cur_vp)) = (base_m.victim_p99_secs, cur_m.victim_p99_secs) {
            if cur_vp > base_vp * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' victim p99 regressed: {cur_vp:.6} s vs baseline {base_vp:.6} s \
                     (limit {:.6} s) — the fair queue is no longer isolating victims",
                    base_vp * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_gp), Some(cur_gp)) = (
            base_m.victim_goodput_p99_secs,
            cur_m.victim_goodput_p99_secs,
        ) {
            if cur_gp > base_gp * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' victim goodput p99 regressed: {cur_gp:.6} s vs baseline \
                     {base_gp:.6} s (limit {:.6} s) — on-time service is drifting toward \
                     the deadline",
                    base_gp * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_wb), Some(cur_wb)) = (base_m.wasted_work_bytes, cur_m.wasted_work_bytes) {
            // A zero-byte baseline tolerates zero: the deadline lifecycle
            // moving *any* dead bytes on a trace that never did is a
            // regression, not noise.
            if cur_wb > base_wb * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' wasted work regressed: {cur_wb:.0} bytes moved for dead \
                     requests vs baseline {base_wb:.0} (limit {:.0})",
                    base_wb * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_ws), Some(cur_ws)) = (base_m.wasted_secs, cur_m.wasted_secs) {
            if cur_ws > base_ws * (1.0 + tolerance) {
                outcome.failures.push(format!(
                    "'{name}' wasted board time regressed: {cur_ws:.3} s written off vs \
                     baseline {base_ws:.3} s (limit {:.3} s)",
                    base_ws * (1.0 + tolerance)
                ));
            }
        }
        if let (Some(base_drops), Some(cur_drops)) = (&base_m.tenant_drops, &cur_m.tenant_drops) {
            for (tenant, base_d) in base_drops {
                let Some(cur_d) = cur_drops.get(tenant) else {
                    continue;
                };
                // A zero-drop baseline tolerates zero: any drop for that
                // tenant is a fairness-isolation failure.
                if *cur_d > base_d * (1.0 + tolerance) {
                    outcome.failures.push(format!(
                        "'{name}' drops for tenant '{tenant}' regressed: {cur_d:.0} vs \
                         baseline {base_d:.0} (limit {:.1})",
                        base_d * (1.0 + tolerance)
                    ));
                }
            }
        }
        if let (Some(base_hr), Some(cur_hr)) = (base_m.hit_rate, cur_m.hit_rate) {
            // Inverted gate, caller's tolerance: the hit-rate is a
            // deterministic simulated number, and the regression
            // direction is *down* — a cache that stops hitting keeps a
            // fine tail on the light replay trace.
            let floor = base_hr * (1.0 - tolerance);
            if cur_hr < floor {
                outcome.failures.push(format!(
                    "'{name}' cache hit-rate regressed: {cur_hr:.4} vs baseline {base_hr:.4} \
                     (floor {floor:.4}) — the result cache stopped hitting",
                ));
            }
        }
        if let (Some(base_rs), Some(cur_rs)) =
            (base_m.recompute_secs_saved, cur_m.recompute_secs_saved)
        {
            // Inverted like the hit-rate: the saving is the scenario's
            // whole point, and a cache serving cheaper hits (partial
            // instead of full) can hold its hit-rate while quietly
            // recomputing more.
            let floor = base_rs * (1.0 - tolerance);
            if cur_rs < floor {
                outcome.failures.push(format!(
                    "'{name}' recompute seconds saved regressed: {cur_rs:.1} s vs baseline \
                     {base_rs:.1} s (floor {floor:.1} s) — the cache is avoiding less work",
                ));
            }
        }
        if let (Some(base_ev), Some(cur_ev)) = (base_m.sim_events_per_sec, cur_m.sim_events_per_sec)
        {
            // Inverted gate: the regression direction is *down*. The
            // floor uses SIM_SPEED_TOLERANCE, not the caller's
            // `tolerance` — host wall clock on a CI runner deserves far
            // more slack than simulated seconds (see the const's docs).
            let floor = base_ev * (1.0 - SIM_SPEED_TOLERANCE);
            if cur_ev < floor {
                outcome.failures.push(format!(
                    "'{name}' sim speed regressed: {cur_ev:.0} events/s vs baseline \
                     {base_ev:.0} (floor {floor:.0}, -{:.1} %) — the simulator itself \
                     got slower, beyond even the generous CI-noise tolerance",
                    (1.0 - cur_ev / base_ev) * 100.0
                ));
            } else if cur_ev > base_ev * (1.0 + SIM_SPEED_TOLERANCE) {
                outcome.notes.push(format!(
                    "'{name}' sim speed improved {:.1} % past the tolerance — consider \
                     refreshing the baseline ({cur_ev:.0} events/s vs {base_ev:.0})",
                    (cur_ev / base_ev - 1.0) * 100.0
                ));
            }
        }
    }
    let base_names: std::collections::BTreeSet<&str> =
        base.iter().map(|(name, _)| name.as_str()).collect();
    for name in cur.keys() {
        if !base_names.contains(name.as_str()) {
            outcome.failures.push(format!(
                "scenario '{name}' ran but is missing from the baseline — refresh it \
                 with --write-baseline so the scenario is gated"
            ));
        }
    }
    Ok(outcome)
}

/// Renders a baseline-vs-run delta table in GitHub-flavored markdown —
/// the `bench-smoke` job appends it to `$GITHUB_STEP_SUMMARY`, so a perf
/// regression is readable on the job page without downloading the
/// artifact. Scenarios appear in baseline order, followed by run-only
/// scenarios; a metric either side lacks renders as `—`.
///
/// # Errors
///
/// Returns an error when either document lacks the gate schema.
pub fn render_summary_table(baseline: &Json, current: &Json) -> Result<String, String> {
    let base = scenario_metrics(baseline)?;
    let cur = scenario_metrics(current)?;
    let cur_map: BTreeMap<String, ScenarioMetrics> = cur.iter().cloned().collect();
    let pct = |b: f64, c: f64| {
        if b > 0.0 {
            format!("{:+.1}%", (c / b - 1.0) * 100.0)
        } else {
            "—".to_string()
        }
    };
    let opt = |v: Option<f64>, scale: f64, digits: usize| {
        v.map_or("—".to_string(), |x| format!("{:.*}", digits, x * scale))
    };
    let opt_pct = |b: Option<f64>, c: Option<f64>| match (b, c) {
        (Some(b), Some(c)) => pct(b, c),
        _ => "—".to_string(),
    };
    // Per-tenant drops, base → run for every tenant both sides know
    // (run-only tenants appear with a `—` base) — the fairness gate fails
    // per tenant, so the summary must name the tenant too.
    let drops_cell = |b: Option<&BTreeMap<String, f64>>, c: Option<&BTreeMap<String, f64>>| {
        let (Some(b), Some(c)) = (b, c) else {
            return "—".to_string();
        };
        let cells: Vec<String> = b
            .iter()
            .map(|(tenant, base_d)| {
                let run_d = c.get(tenant).map_or("—".to_string(), |d| format!("{d:.0}"));
                format!("{tenant} {base_d:.0}→{run_d}")
            })
            .chain(
                c.iter()
                    .filter(|(tenant, _)| !b.contains_key(*tenant))
                    .map(|(tenant, run_d)| format!("{tenant} —→{run_d:.0}")),
            )
            .collect();
        cells.join(", ")
    };
    let mut out = String::from("### Serving perf gate: baseline vs run\n\n");
    out.push_str(
        "| scenario | p99 ms (base → run) | Δ p99 | reconfigs (base → run) \
         | host GB (base → run) | Δ host | victim p99 ms (base → run) | Δ victim \
         | goodput p99 ms (base → run) | wasted s (base → run) | wasted MB (base → run) \
         | tenant drops (base → run) | hit rate (base → run) \
         | recompute s saved (base → run) | sim kev/s (base → run) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for (name, b) in &base {
        match cur_map.get(name) {
            Some(c) => {
                out.push_str(&format!(
                    "| `{name}` | {:.1} → {:.1} | {} | {} → {} | {} → {} | {} \
                     | {} → {} | {} | {} → {} | {} → {} | {} → {} | {} | {} → {} \
                     | {} → {} | {} → {} |\n",
                    b.p99_secs * 1e3,
                    c.p99_secs * 1e3,
                    pct(b.p99_secs, c.p99_secs),
                    opt(b.reconfigs, 1.0, 0),
                    opt(c.reconfigs, 1.0, 0),
                    opt(b.host_upload_bytes, 1e-9, 2),
                    opt(c.host_upload_bytes, 1e-9, 2),
                    opt_pct(b.host_upload_bytes, c.host_upload_bytes),
                    opt(b.victim_p99_secs, 1e3, 1),
                    opt(c.victim_p99_secs, 1e3, 1),
                    opt_pct(b.victim_p99_secs, c.victim_p99_secs),
                    opt(b.victim_goodput_p99_secs, 1e3, 1),
                    opt(c.victim_goodput_p99_secs, 1e3, 1),
                    opt(b.wasted_secs, 1.0, 2),
                    opt(c.wasted_secs, 1.0, 2),
                    opt(b.wasted_work_bytes, 1e-6, 2),
                    opt(c.wasted_work_bytes, 1e-6, 2),
                    drops_cell(b.tenant_drops.as_ref(), c.tenant_drops.as_ref()),
                    opt(b.hit_rate, 100.0, 1),
                    opt(c.hit_rate, 100.0, 1),
                    opt(b.recompute_secs_saved, 1.0, 1),
                    opt(c.recompute_secs_saved, 1.0, 1),
                    opt(b.sim_events_per_sec, 1e-3, 0),
                    opt(c.sim_events_per_sec, 1e-3, 0),
                ));
            }
            None => {
                out.push_str(&format!(
                    "| `{name}` | {:.1} → **missing from run** | — | — | — | — | — | — | — | — | — | — | — | — | — |\n",
                    b.p99_secs * 1e3,
                ));
            }
        }
    }
    let base_names: std::collections::BTreeSet<&str> =
        base.iter().map(|(name, _)| name.as_str()).collect();
    for (name, c) in &cur {
        if !base_names.contains(name.as_str()) {
            out.push_str(&format!(
                "| `{name}` | **not in baseline** → {:.1} | — | — → {} | — → {} | — \
                 | — → {} | — | — → {} | — → {} | — → {} | — | — → {} | — → {} | — → {} |\n",
                c.p99_secs * 1e3,
                opt(c.reconfigs, 1.0, 0),
                opt(c.host_upload_bytes, 1e-9, 2),
                opt(c.victim_p99_secs, 1e3, 1),
                opt(c.victim_goodput_p99_secs, 1e3, 1),
                opt(c.wasted_secs, 1.0, 2),
                opt(c.wasted_work_bytes, 1e-6, 2),
                opt(c.hit_rate, 100.0, 1),
                opt(c.recompute_secs_saved, 1.0, 1),
                opt(c.sim_events_per_sec, 1e-3, 0),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\nyA", "d": null}, "e": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\nyA")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parse_round_trips_a_serve_report() {
        use agnn_graph::datasets::Dataset;
        use agnn_serve::sim::{simulate, ServeConfig};
        use agnn_serve::tenant::TenantSpec;
        let report = simulate(
            vec![TenantSpec::new("feed", Dataset::Movie, 5.0)],
            ServeConfig::builder()
                .seed(1)
                .total_requests(100)
                .boards(2)
                .build()
                .expect("test config is valid"),
        );
        let doc = parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(
            doc.get("completed").and_then(Json::as_f64),
            Some(report.completed() as f64)
        );
        assert_eq!(
            doc.get("boards").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    fn doc(pairs: &[(&str, f64)]) -> Json {
        let scenarios = pairs
            .iter()
            .map(|(name, p99)| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::Str((*name).to_string()));
                obj.insert("p99_secs".to_string(), Json::Num(*p99));
                Json::Obj(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("scenarios".to_string(), Json::Arr(scenarios));
        Json::Obj(root)
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = doc(&[("a", 1.0), ("b", 0.5)]);
        let ok = gate_p99(&baseline, &doc(&[("a", 1.19), ("b", 0.5)]), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let bad = gate_p99(&baseline, &doc(&[("a", 1.21), ("b", 0.5)]), 0.20).unwrap();
        assert!(!bad.passed());
        assert!(bad.failures[0].contains("'a'"), "{:?}", bad.failures);
    }

    #[test]
    fn gate_fails_on_missing_scenarios_and_notes_improvements() {
        let baseline = doc(&[("a", 1.0), ("b", 1.0)]);
        let outcome = gate_p99(&baseline, &doc(&[("a", 0.5)]), 0.20).unwrap();
        assert!(!outcome.passed(), "missing scenario must fail the gate");
        assert!(outcome.failures[0].contains("'b'"));
        assert_eq!(outcome.notes.len(), 1, "halved p99 earns a refresh note");
    }

    #[test]
    fn gate_fails_on_scenarios_absent_from_the_baseline() {
        let baseline = doc(&[("a", 1.0)]);
        let outcome = gate_p99(&baseline, &doc(&[("a", 1.0), ("new", 0.1)]), 0.20).unwrap();
        assert!(!outcome.passed(), "an ungated scenario must fail the gate");
        assert!(
            outcome.failures[0].contains("'new'") && outcome.failures[0].contains("baseline"),
            "{:?}",
            outcome.failures
        );
    }

    fn doc_with_reconfigs(pairs: &[(&str, f64, f64)]) -> Json {
        let scenarios = pairs
            .iter()
            .map(|(name, p99, reconfigs)| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::Str((*name).to_string()));
                obj.insert("p99_secs".to_string(), Json::Num(*p99));
                obj.insert("reconfigs".to_string(), Json::Num(*reconfigs));
                Json::Obj(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("scenarios".to_string(), Json::Arr(scenarios));
        Json::Obj(root)
    }

    #[test]
    fn gate_fails_when_reconfigurations_regress() {
        let baseline = doc_with_reconfigs(&[("a", 1.0, 3.0)]);
        let ok = gate_p99(&baseline, &doc_with_reconfigs(&[("a", 1.0, 3.0)]), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let bad = gate_p99(&baseline, &doc_with_reconfigs(&[("a", 1.0, 2404.0)]), 0.20).unwrap();
        assert!(!bad.passed(), "ICAP thrash must fail even at equal p99");
        assert!(
            bad.failures[0].contains("reconfigurations"),
            "{:?}",
            bad.failures
        );
        // A baseline without the field gates p99 only (older schema).
        let legacy = gate_p99(
            &doc(&[("a", 1.0)]),
            &doc_with_reconfigs(&[("a", 1.0, 9999.0)]),
            0.2,
        )
        .unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn gate_fails_when_host_upload_bytes_regress() {
        let row = |hb: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "m", "p99_secs": 1.0, "host_upload_bytes": {hb}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(100.0e9);
        let ok = gate_p99(&baseline, &row(110.0e9), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let bad = gate_p99(&baseline, &row(130.0e9), 0.20).unwrap();
        assert!(!bad.passed(), "host-link leakage must fail at equal p99");
        assert!(
            bad.failures[0].contains("host upload bytes"),
            "{:?}",
            bad.failures
        );
        // A baseline without the field gates p99/reconfigs only.
        let legacy = gate_p99(&doc(&[("m", 1.0)]), &row(900.0e9), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn gate_fails_when_the_victim_tail_regresses() {
        let row = |vp: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "b", "p99_secs": 10.0, "victim_p99_secs": {vp}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(0.8);
        let ok = gate_p99(&baseline, &row(0.9), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        // The overall p99 (aggressor-dominated) is identical, yet victim
        // starvation must fail on its own.
        let bad = gate_p99(&baseline, &row(8.0), 0.20).unwrap();
        assert!(!bad.passed());
        assert!(bad.failures[0].contains("victim p99"), "{:?}", bad.failures);
        // A baseline without the field gates the overall p99 only.
        let legacy = gate_p99(&doc(&[("b", 10.0)]), &row(80.0), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn gate_fails_when_a_tenant_starts_dropping() {
        let row = |victim: f64, aggressor: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "b", "p99_secs": 1.0,
                    "tenant_drops": {{"victim": {victim}, "aggressor": {aggressor}}}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(0.0, 4000.0);
        let ok = gate_p99(&baseline, &row(0.0, 4100.0), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let bad = gate_p99(&baseline, &row(5.0, 4000.0), 0.20).unwrap();
        assert!(!bad.passed(), "a zero-drop baseline tolerates zero drops");
        assert!(bad.failures[0].contains("'victim'"), "{:?}", bad.failures);
        // A tenant present only on one side is skipped, not fatal.
        let renamed = parse(
            r#"{"scenarios": [{"name": "b", "p99_secs": 1.0,
                "tenant_drops": {"victim-2": 9.0}}]}"#,
        )
        .unwrap();
        let skipped = gate_p99(&baseline, &renamed, 0.20).unwrap();
        assert!(skipped.passed(), "{:?}", skipped.failures);
    }

    #[test]
    fn sim_speed_gate_is_inverted_and_generous() {
        let row = |ev: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "s", "p99_secs": 1.0, "sim_events_per_sec": {ev}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(100_000.0);
        // 35 % slower sits inside the 40 % CI-noise tolerance — no
        // matter how tight the caller's simulated-metric tolerance is.
        let noisy = gate_p99(&baseline, &row(65_000.0), 0.05).unwrap();
        assert!(noisy.passed(), "{:?}", noisy.failures);
        // Severalfold slower fails: that is a real simulator regression.
        let slow = gate_p99(&baseline, &row(30_000.0), 0.20).unwrap();
        assert!(!slow.passed());
        assert!(
            slow.failures[0].contains("sim speed"),
            "{:?}",
            slow.failures
        );
        // Faster never fails (the inversion), but a big win earns a
        // refresh note.
        let fast = gate_p99(&baseline, &row(1_000_000.0), 0.20).unwrap();
        assert!(fast.passed(), "{:?}", fast.failures);
        assert_eq!(fast.notes.len(), 1, "{:?}", fast.notes);
        // A baseline without the field (pre-v4 schema) gates p99 only.
        let legacy = gate_p99(&doc(&[("s", 1.0)]), &row(1.0), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn cache_gates_are_inverted_floors() {
        let row = |hr: f64, saved: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "c", "p99_secs": 0.01,
                    "hit_rate": {hr}, "recompute_secs_saved": {saved}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(0.95, 5000.0);
        // Small wobble within the tolerance passes; *rising* never fails
        // (the inversion).
        let ok = gate_p99(&baseline, &row(0.90, 4500.0), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let better = gate_p99(&baseline, &row(1.0, 9000.0), 0.20).unwrap();
        assert!(better.passed(), "{:?}", better.failures);
        // A collapsed hit-rate fails even though the p99 is identical —
        // the tail alone would hide a cache that stopped hitting.
        let cold = gate_p99(&baseline, &row(0.05, 5000.0), 0.20).unwrap();
        assert!(!cold.passed());
        assert!(cold.failures[0].contains("hit-rate"), "{:?}", cold.failures);
        // A held hit-rate with a collapsed saving fails on its own: the
        // cache can keep hitting while serving only cheap partial hits.
        let shallow = gate_p99(&baseline, &row(0.95, 100.0), 0.20).unwrap();
        assert!(!shallow.passed());
        assert!(
            shallow.failures[0].contains("recompute seconds saved"),
            "{:?}",
            shallow.failures
        );
        // A baseline without the members (pre-v5 schema) gates p99 only.
        let legacy = gate_p99(&doc(&[("c", 0.01)]), &row(0.0, 0.0), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn summary_table_shows_deltas_and_holes() {
        let baseline = parse(
            r#"{"scenarios": [
                {"name": "a", "p99_secs": 1.0, "reconfigs": 10, "host_upload_bytes": 50000000000,
                 "sim_events_per_sec": 450000},
                {"name": "b", "p99_secs": 10.0, "victim_p99_secs": 0.8,
                 "tenant_drops": {"victim": 0, "aggressor": 4000}},
                {"name": "c", "p99_secs": 0.01, "hit_rate": 0.98,
                 "recompute_secs_saved": 5000},
                {"name": "d", "p99_secs": 1.0, "victim_goodput_p99_secs": 1.9,
                 "wasted_secs": 2.5, "wasted_work_bytes": 0},
                {"name": "gone", "p99_secs": 0.5}]}"#,
        )
        .unwrap();
        let run = parse(
            r#"{"scenarios": [
                {"name": "a", "p99_secs": 1.1, "reconfigs": 12, "host_upload_bytes": 25000000000,
                 "sim_events_per_sec": 520000},
                {"name": "b", "p99_secs": 10.0, "victim_p99_secs": 1.6,
                 "tenant_drops": {"victim": 5, "aggressor": 4000}},
                {"name": "c", "p99_secs": 0.01, "hit_rate": 0.97,
                 "recompute_secs_saved": 5100},
                {"name": "d", "p99_secs": 1.0, "victim_goodput_p99_secs": 1.95,
                 "wasted_secs": 2.6, "wasted_work_bytes": 1000000},
                {"name": "new", "p99_secs": 0.2, "reconfigs": 3}]}"#,
        )
        .unwrap();
        let table = render_summary_table(&baseline, &run).unwrap();
        assert!(table.starts_with("### Serving perf gate"), "{table}");
        assert!(
            table.contains(
                "| `a` | 1000.0 → 1100.0 | +10.0% | 10 → 12 | 50.00 → 25.00 | -50.0% \
                 | — → — | — | — → — | — → — | — → — | — | — → — | — → — | 450 → 520 |"
            ),
            "{table}"
        );
        // The fairness metrics are readable per scenario — a victim-tail
        // or per-tenant-drop regression must be visible in the summary,
        // not only in the gate's stderr.
        assert!(
            table.contains(
                "| 800.0 → 1600.0 | +100.0% | — → — | — → — | — → — \
                 | aggressor 4000→4000, victim 0→5 | — → — | — → — | — → — |"
            ),
            "{table}"
        );
        // And so must the cache metrics (hit-rate rendered in percent).
        assert!(
            table.contains(
                "| `c` | 10.0 → 10.0 | +0.0% | — → — | — → — | — | — → — | — \
                 | — → — | — → — | — → — | — | 98.0 → 97.0 | 5000.0 → 5100.0 | — → — |"
            ),
            "{table}"
        );
        // And the deadline-lifecycle metrics (goodput tail in ms, waste
        // in seconds and megabytes).
        assert!(
            table.contains(
                "| `d` | 1000.0 → 1000.0 | +0.0% | — → — | — → — | — | — → — | — \
                 | 1900.0 → 1950.0 | 2.50 → 2.60 | 0.00 → 1.00 | — | — → — | — → — | — → — |"
            ),
            "{table}"
        );
        assert!(table.contains("**missing from run**"), "{table}");
        assert!(table.contains("**not in baseline** → 200.0"), "{table}");
        assert!(render_summary_table(&Json::Null, &run).is_err());
    }

    #[test]
    fn gate_fails_when_the_goodput_tail_regresses() {
        let row = |gp: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "d", "p99_secs": 10.0,
                    "victim_goodput_p99_secs": {gp}}}]}}"#
            ))
            .unwrap()
        };
        let baseline = row(1.6);
        let ok = gate_p99(&baseline, &row(1.8), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        // The overall (aggressor-dominated) p99 is identical, yet on-time
        // victim service drifting toward the deadline must fail alone.
        let bad = gate_p99(&baseline, &row(1.99), 0.20).unwrap();
        assert!(!bad.passed());
        assert!(
            bad.failures[0].contains("victim goodput p99"),
            "{:?}",
            bad.failures
        );
        // A baseline without the member gates the overall p99 only.
        let legacy = gate_p99(&doc(&[("d", 10.0)]), &row(9.0), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn gate_fails_when_the_waste_ledger_regresses() {
        let row = |bytes: f64, secs: f64| {
            parse(&format!(
                r#"{{"scenarios": [{{"name": "d", "p99_secs": 1.0,
                    "wasted_work_bytes": {bytes}, "wasted_secs": {secs}}}]}}"#
            ))
            .unwrap()
        };
        // A zero-byte baseline tolerates zero bytes: enforcement quietly
        // starting to move dead bytes fails even at an identical tail.
        let baseline = row(0.0, 2.5);
        let ok = gate_p99(&baseline, &row(0.0, 2.9), 0.20).unwrap();
        assert!(ok.passed(), "{:?}", ok.failures);
        let leaking = gate_p99(&baseline, &row(1e6, 2.5), 0.20).unwrap();
        assert!(!leaking.passed());
        assert!(
            leaking.failures[0].contains("wasted work"),
            "{:?}",
            leaking.failures
        );
        let burning = gate_p99(&baseline, &row(0.0, 4.0), 0.20).unwrap();
        assert!(!burning.passed());
        assert!(
            burning.failures[0].contains("wasted board time"),
            "{:?}",
            burning.failures
        );
        // A baseline without the members gates the overall p99 only.
        let legacy = gate_p99(&doc(&[("d", 1.0)]), &row(9e9, 900.0), 0.2).unwrap();
        assert!(legacy.passed(), "{:?}", legacy.failures);
    }

    #[test]
    fn gate_ignores_unknown_extra_keys_on_both_sides() {
        // A new artifact carries metrics an old baseline has never heard
        // of (and vice versa after a refresh); neither direction may
        // fail the gate or perturb its verdict.
        let old_baseline = parse(r#"{"scenarios": [{"name": "a", "p99_secs": 1.0}]}"#).unwrap();
        let new_run = parse(
            r#"{"schema": "agnn-bench-serving/v9", "future_field": {"nested": [1, 2]},
                "scenarios": [{"name": "a", "p99_secs": 1.0, "reconfigs": 3,
                               "pipeline_overlap_ratio": 0.57, "evictions": 5650,
                               "stages": [{"stage": "ingest", "p99_secs": 0.128}]}]}"#,
        )
        .unwrap();
        let outcome = gate_p99(&old_baseline, &new_run, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // And a future baseline with extra keys still gates an old run.
        let reversed = gate_p99(&new_run, &old_baseline, 0.20).unwrap();
        assert!(reversed.passed(), "{:?}", reversed.failures);
    }

    #[test]
    fn gate_rejects_documents_without_the_schema() {
        assert!(gate_p99(&Json::Null, &Json::Null, 0.2).is_err());
        let no_p99 = parse(r#"{"scenarios": [{"name": "a"}]}"#).unwrap();
        assert!(gate_p99(&no_p99, &no_p99, 0.2).is_err());
    }
}

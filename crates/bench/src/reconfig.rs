//! Reconfiguration studies: Figs. 22, 23, 24, 28, 30 and 31.

use agnn_core::config::EvalSetup;
use agnn_core::scenario::{
    consecutive_inference, evaluation_pairs, growth_study, mixed_edges_secs, pair_preprocess_secs,
};
use agnn_core::systems::{evaluate, mv_tuned_config, SystemContext, SystemKind};
use agnn_cost::{CostModel, SearchSpace, Workload};
use agnn_devices::fpga::FpgaModel;
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;
use agnn_graph::Vid;
use agnn_hw::engine::AutoGnnEngine;
use agnn_hw::floorplan::Floorplan;
use agnn_hw::{HwConfig, ScrConfig, UpeConfig};

use crate::banner;

fn gnn() -> GnnSpec {
    GnnSpec::table_iii_default()
}

/// Fig. 22: the reconfiguration ablation StatPre → DynArea → DynSCR →
/// DynUPE on AX, SO and AM (preprocessing latency normalized to StatPre).
/// Paper: DynSCR cuts 23 % / 51 % / 15 %, DynUPE another 13–39 %.
pub fn fig22() {
    banner("Fig. 22: dynamic reconfiguration ablation (normalized to StatPre)");
    let setup = EvalSetup::default();
    let fpga = FpgaModel::default();
    let plan = Floorplan::vpk180();
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9}",
        "id", "StatPre", "DynArea", "DynSCR", "DynUPE"
    );
    for d in [Dataset::Arxiv, Dataset::StackOverflow, Dataset::Amazon] {
        let spec = d.spec();
        let w = setup.workload(spec.nodes, spec.edges);
        let stat_cfg = mv_tuned_config(&plan);
        let secs = |cfg: HwConfig| fpga.stage_secs(&fpga.analytic_report(&w, cfg)).total();
        let stat = secs(stat_cfg);
        let area = secs(fpga.search(&w, &plan, SearchSpace::AreaOnly));
        let scr = secs(fpga.search(&w, &plan, SearchSpace::ScrOnly));
        let upe = secs(fpga.search(&w, &plan, SearchSpace::Full));
        println!(
            "{:<4} {:>8.0}% {:>8.0}% {:>8.0}% {:>8.0}%",
            d.abbrev(),
            100.0,
            area / stat * 100.0,
            scr / stat * 100.0,
            upe / stat * 100.0
        );
    }
    println!("paper: DynSCR -23/-51/-15% on AX/SO/AM; DynUPE a further -13/-39% on SO/AM");
}

/// Fig. 23: optimal hardware configuration — (a) SCR slot/width utilization
/// on AX, (b) UPE width sweep on AM.
pub fn fig23() {
    banner("Fig. 23a: SCR slot utilization vs width on AX");
    let setup = EvalSetup::default();
    let fpga = FpgaModel::default();
    let ax = Dataset::Arxiv.spec();
    let w_ax = setup.workload(ax.nodes, ax.edges);
    println!(
        "{:>6} {:>7} {:>15} {:>12}",
        "slots", "width", "reshaping(ms)", "slot-util"
    );
    for slots in [1usize, 2, 4, 8] {
        for width in [64usize, 256, 1024, 4096] {
            let cfg = HwConfig {
                upe: UpeConfig::new(64, 64),
                scr: ScrConfig::new(slots, width),
            };
            let report = fpga.analytic_report(&w_ax, cfg);
            let secs = fpga.stage_secs(&report).reshaping;
            // Slot utilization: useful target completions per slot-cycle.
            let useful = (w_ax.nodes + 1) as f64;
            let util = useful / (report.cycles.reshaping as f64 * slots as f64);
            println!(
                "{:>6} {:>7} {:>15.3} {:>11.1}%",
                slots,
                width,
                secs * 1e3,
                (util * 100.0).min(100.0)
            );
        }
    }
    println!("paper: for low-degree AX, adding slots beats adding width");

    banner("Fig. 23b: UPE width sweep on AM (constant aggregate throughput)");
    let am = Dataset::Amazon.spec();
    let w_am = setup.workload(am.nodes, am.edges);
    println!(
        "{:>6} {:>7} {:>13} {:>14} {:>11}",
        "count", "width", "ordering(ms)", "selecting(ms)", "total(ms)"
    );
    let library = agnn_cost::BitstreamLibrary::for_floorplan(&Floorplan::vpk180());
    for &upe in library.upe_variants() {
        let cfg = HwConfig {
            upe,
            scr: ScrConfig::new(2, 4096),
        };
        let secs = fpga.stage_secs(&fpga.analytic_report(&w_am, cfg));
        println!(
            "{:>6} {:>7} {:>13.2} {:>14.3} {:>11.2}",
            upe.count,
            upe.width,
            secs.ordering * 1e3,
            secs.selecting * 1e3,
            secs.total() * 1e3
        );
    }
    println!(
        "paper: ordering and selecting pull in opposite directions, giving an interior optimum"
    );
}

/// Fig. 24: cost-model accuracy — Table I estimates vs cycle-level
/// simulation. Paper: 98 % (SCR) and 94 % (UPE) accuracy.
pub fn fig24() {
    banner("Fig. 24: accuracy of the cost model (model vs simulator)");
    let model = CostModel;

    // (a) SCR reshaping cycles across widths on an AX-like scaled graph.
    let ax = Dataset::Arxiv;
    let graph = ax.generate_scaled(ax.scale_for_max_edges(150_000), 3);
    let sorted = agnn_algo::ordering::order_edges_radix(graph.edges());
    let dsts: Vec<Vid> = sorted.iter().map(|e| e.dst).collect();
    println!("(a) SCR (AX-scaled, slots=2): width, simulated, modeled, accuracy");
    let mut accs = Vec::new();
    for width in [64usize, 256, 1024, 4096] {
        let cfg = ScrConfig::new(2, width);
        let sim = agnn_hw::kernel::Reshaper::new(cfg)
            .build_pointers(graph.num_vertices(), &dsts)
            .cycles;
        let est =
            model.reshaping_cycles(graph.num_vertices() as u64, graph.num_edges() as u64, cfg);
        let acc = 100.0 * (1.0 - (est - sim as f64).abs() / sim as f64);
        accs.push(acc);
        println!("  {width:>5} {sim:>10} {est:>10.0} {acc:>7.1}%");
    }
    println!(
        "  mean SCR accuracy {:.1}% (paper 98%)",
        accs.iter().sum::<f64>() / accs.len() as f64
    );

    // (b) UPE ordering+selecting cycles across widths on an AM-like scaled
    // graph, simulated functionally.
    let am = Dataset::Amazon;
    let graph = am.generate_scaled(am.scale_for_max_edges(120_000), 5);
    let batch: Vec<Vid> = (0..50).map(Vid).collect();
    let params = agnn_algo::pipeline::SampleParams::new(10, 2);
    let workload = Workload::new(
        graph.num_vertices() as u64,
        graph.num_edges() as u64,
        50,
        10,
        2,
    );
    println!("(b) UPE (AM-scaled): count x width, simulated, analytic, accuracy");
    let fpga = FpgaModel::default();
    let mut accs = Vec::new();
    for (count, width) in [(32usize, 8usize), (16, 16), (8, 32), (4, 64), (2, 128)] {
        let cfg = HwConfig {
            upe: UpeConfig::new(count, width),
            scr: ScrConfig::new(2, 512),
        };
        let sim = AutoGnnEngine::new(cfg)
            .preprocess(&graph, &batch, &params, 9)
            .report;
        let sim_upe = sim.cycles.ordering + sim.cycles.selecting;
        let est = fpga.analytic_report(&workload, cfg);
        let est_upe = est.cycles.ordering + est.cycles.selecting;
        let acc = 100.0 * (1.0 - (est_upe as f64 - sim_upe as f64).abs() / sim_upe as f64);
        accs.push(acc);
        println!("  {count:>3}x{width:<4} {sim_upe:>10} {est_upe:>10} {acc:>7.1}%");
    }
    println!(
        "  mean UPE accuracy {:.1}% (paper 94%)",
        accs.iter().sum::<f64>() / accs.len() as f64
    );
}

/// Fig. 28: consecutive inference on diverse graphs — (a) the MV→SO
/// throughput time-series, (b) similar vs different dataset pairs.
pub fn fig28() {
    banner("Fig. 28a: consecutive inference MV -> SO (throughput over time)");
    let stat = consecutive_inference(
        Dataset::Movie,
        Dataset::StackOverflow,
        10.0,
        30.0,
        false,
        gnn(),
    );
    let dynp = consecutive_inference(
        Dataset::Movie,
        Dataset::StackOverflow,
        10.0,
        30.0,
        true,
        gnn(),
    );
    println!(
        "{:>8} {:>14} {:>14}",
        "t(s)", "StatPre(inf/s)", "DynPre(inf/s)"
    );
    for i in (0..stat.series.len()).step_by(30) {
        println!(
            "{:>8.1} {:>14.1} {:>14.1}",
            stat.series[i].time_secs,
            stat.series[i].inferences_per_sec,
            dynp.series[i].inferences_per_sec
        );
    }
    let saved = 1.0 - dynp.total_preprocess_secs / stat.total_preprocess_secs;
    println!(
        "total preprocessing time saved by reconfiguration: {:.1}% (paper 56%); \
         post-switch throughput gain {:.2}x (paper 2.9x)",
        saved * 100.0,
        dynp.series.last().unwrap().inferences_per_sec
            / stat.series.last().unwrap().inferences_per_sec
    );

    banner("Fig. 28b: graph pairs (preprocessing latency, FixedPre vs DynPre)");
    println!(
        "{:<6} {:>10} {:>12} {:>11} {:>9}",
        "pair", "category", "Fixed(ms)", "Dyn(ms)", "saved"
    );
    let mut sim_saved = Vec::new();
    let mut diff_saved = Vec::new();
    for (label, a, b, same) in evaluation_pairs() {
        let fixed = pair_preprocess_secs(a, b, false, gnn());
        let dynamic = pair_preprocess_secs(a, b, true, gnn());
        let saved = (1.0 - dynamic / fixed) * 100.0;
        if same {
            sim_saved.push(saved);
        } else {
            diff_saved.push(saved);
        }
        println!(
            "{:<6} {:>10} {:>12.1} {:>11.1} {:>8.1}%",
            label,
            if same { "similar" } else { "different" },
            fixed * 1e3,
            dynamic * 1e3,
            saved
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average saving: similar {:.1}% (paper 14.6%), different {:.1}% (paper 46.1%)",
        avg(&sim_saved),
        avg(&diff_saved)
    );
}

/// Fig. 30: the Taobao long-horizon growth study (edges ×112, degree ×9.2).
pub fn fig30() {
    banner("Fig. 30: dynamic graph growth (TB, 5000 hours)");
    let series = growth_study(Dataset::Taobao, 5_000, 11, gnn());
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "hour", "GPU(ms)", "StatPre(ms)", "DynPre(ms)"
    );
    for p in &series {
        let gpu = p
            .gpu_secs
            .map_or("OOM".to_string(), |s| format!("{:.1}", s * 1e3));
        println!(
            "{:>6} {:>10} {:>12.1} {:>12.1}",
            p.hour,
            gpu,
            p.statpre_secs * 1e3,
            p.dynpre_secs * 1e3
        );
    }
    let last = series.last().unwrap();
    println!(
        "end-of-horizon DynPre vs StatPre: {:.1}% lower (paper 35%); GPU OOMs before the end",
        (1.0 - last.dynpre_secs / last.statpre_secs) * 100.0
    );
}

/// Fig. 31: mixed same-category and cross-category edges, StatPre vs
/// DynPre preprocessing latency.
pub fn fig31() {
    banner("Fig. 31: mixed edges (StatPre vs DynPre preprocessing)");
    println!(
        "{:<6} {:>10} {:>12} {:>11} {:>9}",
        "mix", "category", "Stat(ms)", "Dyn(ms)", "saved"
    );
    let mut sim_saved = Vec::new();
    let mut diff_saved = Vec::new();
    for (label, a, b, same) in evaluation_pairs() {
        let (stat, dynp) = mixed_edges_secs(a, b, gnn());
        let saved = (1.0 - dynp / stat) * 100.0;
        if same {
            sim_saved.push(saved);
        } else {
            diff_saved.push(saved);
        }
        println!(
            "{:<6} {:>10} {:>12.1} {:>11.1} {:>8.1}%",
            label,
            if same { "similar" } else { "different" },
            stat * 1e3,
            dynp * 1e3,
            saved
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average saving: same-category {:.1}% / cross-category {:.1}% (paper 98.9% / 74.1%)",
        avg(&sim_saved),
        avg(&diff_saved)
    );

    // Context: the headline systems on the mixed workloads' components.
    let setup = EvalSetup::default();
    let spec = Dataset::Fraud.spec();
    let ctx = SystemContext::new(setup.workload(spec.nodes, spec.edges), gnn());
    let run = evaluate(&ctx, SystemKind::DynPre);
    println!(
        "(reference: DynPre on FR alone preprocesses in {:.1} ms)",
        run.preprocess.total() * 1e3
    );
}

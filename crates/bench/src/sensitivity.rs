//! Sensitivity studies: Figs. 25, 26, 27 and 29.

use agnn_core::config::EvalSetup;
use agnn_core::systems::{evaluate, SystemContext, SystemKind};
use agnn_devices::accel::{self, AccelTarget};
use agnn_devices::boards;
use agnn_devices::fpga::FpgaModel;
use agnn_gnn::models::{GnnModel, GnnSpec};
use agnn_graph::datasets::Dataset;
use agnn_graph::dynamic::{critical_update_ratio, hourly_update_series};

use crate::banner;

/// Fig. 25: sensitivity to the GNN model, layer count and sampling `k` on
/// AM. Paper: GAT still leaves preprocessing at 51 % with DynPre 1.67x over
/// GPU; 1→6 layers raises inference 4.1x and sampling 51.1x; larger k
/// raises DynPre's edge to 2.6x.
pub fn fig25() {
    banner("Fig. 25a: GNN model sweep on AM (GPU vs DynPre, end-to-end ms)");
    let setup = EvalSetup::default();
    let am = Dataset::Amazon.spec();
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>14}",
        "model", "GPU(ms)", "DynPre(ms)", "speedup", "pre-share(Dyn)"
    );
    for model in GnnModel::ALL {
        let gnn = GnnSpec::new(model, 2, 128, 128);
        let ctx = SystemContext::new(setup.workload(am.nodes, am.edges), gnn);
        let gpu = evaluate(&ctx, SystemKind::Gpu);
        let dynp = evaluate(&ctx, SystemKind::DynPre);
        println!(
            "{:<8} {:>10.1} {:>12.1} {:>9.2}x {:>13.1}%",
            model.name(),
            gpu.total_secs() * 1e3,
            dynp.total_secs() * 1e3,
            gpu.total_secs() / dynp.total_secs(),
            dynp.preprocess_share_pct()
        );
    }

    banner("Fig. 25b: layer-count sweep on AM (DynPre breakdown, ms)");
    println!(
        "{:>7} {:>12} {:>13} {:>12} {:>10}",
        "layers", "convert(ms)", "sampling(ms)", "infer(ms)", "total(ms)"
    );
    let mut first: Option<(f64, f64)> = None;
    for layers in [1u32, 2, 4, 6] {
        let gnn = GnnSpec::new(GnnModel::GraphSage, layers, 128, 128);
        let setup_l = EvalSetup {
            layers,
            gnn,
            ..EvalSetup::default()
        };
        let w = setup_l.workload(am.nodes, am.edges);
        let ctx = SystemContext::new(w, gnn);
        let run = evaluate(&ctx, SystemKind::DynPre);
        let convert = run.preprocess.ordering + run.preprocess.reshaping;
        let sampling = run.preprocess.selecting + run.preprocess.reindexing;
        println!(
            "{:>7} {:>12.1} {:>13.1} {:>12.1} {:>10.1}",
            layers,
            convert * 1e3,
            sampling * 1e3,
            run.inference_secs * 1e3,
            run.total_secs() * 1e3
        );
        if layers == 1 {
            first = Some((sampling, run.inference_secs));
        } else if layers == 6 {
            let (s1, i1) = first.expect("layer 1 recorded");
            println!(
                "1 -> 6 layers: sampling x{:.1} (paper 51.1x), inference x{:.1} (paper 4.1x)",
                sampling / s1,
                run.inference_secs / i1
            );
        }
    }

    banner("Fig. 25c: sampling-k sweep on AM (GPU vs DynPre, ms)");
    println!(
        "{:>5} {:>10} {:>12} {:>9}",
        "k", "GPU(ms)", "DynPre(ms)", "speedup"
    );
    for k in [5usize, 10, 20, 40] {
        let gnn = GnnSpec::table_iii_default();
        let setup_k = EvalSetup {
            k,
            ..EvalSetup::default()
        };
        let w = setup_k.workload(am.nodes, am.edges);
        let ctx = SystemContext::new(w, gnn);
        let gpu = evaluate(&ctx, SystemKind::Gpu);
        let dynp = evaluate(&ctx, SystemKind::DynPre);
        println!(
            "{:>5} {:>10.1} {:>12.1} {:>8.2}x",
            k,
            gpu.total_secs() * 1e3,
            dynp.total_secs() * 1e3,
            gpu.total_secs() / dynp.total_secs()
        );
    }
    println!("paper: DynPre's gain reaches 2.6x at k = 40");
}

/// Fig. 26: cost effectiveness — performance vs LUT count and vs board
/// price. Paper: 400 K → 4 M LUTs lifts the speedup from 1.9x to 9.6x; the
/// 400 K board is GPU price parity.
pub fn fig26() {
    banner("Fig. 26: sensitivity to LUT count and board price (vs GPU)");
    let setup = EvalSetup::default();
    let fpga = FpgaModel::default();
    let gnn = GnnSpec::table_iii_default();
    println!(
        "{:<26} {:>9} {:>9} | {:>7} {:>7} {:>7} | {:>9}",
        "board", "LUTs", "price", "AX", "SO", "AM", "perf/price"
    );
    for board in boards::catalog() {
        let plan = board.floorplan();
        let mut speeds = Vec::new();
        for d in [Dataset::Arxiv, Dataset::StackOverflow, Dataset::Amazon] {
            let spec = d.spec();
            let w = setup.workload(spec.nodes, spec.edges);
            let mut ctx = SystemContext::new(w, gnn);
            ctx.plan = plan;
            let gpu = evaluate(&ctx, SystemKind::Gpu);
            let cfg = fpga.search(&w, &plan, agnn_cost::SearchSpace::Full);
            let pre = fpga.stage_secs(&fpga.analytic_report(&w, cfg)).total();
            let dynp_total = pre
                + evaluate(&ctx, SystemKind::DynPre).transfer_secs
                + evaluate(&ctx, SystemKind::DynPre).inference_secs;
            speeds.push(gpu.total_secs() / dynp_total);
        }
        let geo = (speeds.iter().map(|s| s.ln()).sum::<f64>() / speeds.len() as f64).exp();
        println!(
            "{:<26} {:>9} {:>8.2}x | {:>6.2}x {:>6.2}x {:>6.2}x | {:>8.2}x",
            board.name,
            board.luts,
            board.normalized_price(),
            speeds[0],
            speeds[1],
            speeds[2],
            geo / board.normalized_price()
        );
    }
    println!("paper: 1.9x at 400K LUTs (GPU price parity) rising to 9.6x at 4M; low-end boards win on cost effectiveness");
}

/// Fig. 27: existing single-function accelerators under Pure / +SCR / +Auto
/// configurations vs DynPre. Paper: SCR 1.7x, Auto 3.3x, DynPre 4.5x over
/// Pure.
pub fn fig27() {
    banner("Fig. 27: existing accelerators (end-to-end, normalized to each Pure)");
    let setup = EvalSetup::default();
    let spec = Dataset::Reddit.spec();
    let gnn = GnnSpec::table_iii_default();
    let w = setup.workload(spec.nodes, spec.edges);
    let ctx = SystemContext::new(w, gnn);
    let gpu = evaluate(&ctx, SystemKind::Gpu);
    let fpga_pre = evaluate(&ctx, SystemKind::AutoPre);
    let dynp = evaluate(&ctx, SystemKind::DynPre);

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9}",
        "design", "Pure", "+SCR", "+Auto", "DynPre"
    );
    let mut ratios = (Vec::new(), Vec::new(), Vec::new());
    for design in accel::fig27_designs() {
        // Pure: the accelerator handles its one stage; everything else and
        // all transfers follow the external-sampler pattern.
        let accel_pre = design.apply(&gpu.preprocess);
        let handoff = match design.target {
            AccelTarget::Ordering | AccelTarget::Sampling => {
                evaluate(&ctx, SystemKind::FpgaSampler).transfer_secs
            }
        };
        let pure = accel_pre.total() + handoff + gpu.inference_secs;
        // +SCR: reshaping/reindexing move onto AutoGNN's SCR region.
        let mut scr_pre = accel_pre;
        scr_pre.reshaping = fpga_pre.preprocess.reshaping;
        scr_pre.reindexing = fpga_pre.preprocess.reindexing;
        let with_scr = scr_pre.total() + handoff + gpu.inference_secs;
        // +Auto: end-to-end on the FPGA (AutoPre), transfers collapse.
        let with_auto = fpga_pre.total_secs();
        let dyn_total = dynp.total_secs();
        ratios.0.push(pure / with_scr);
        ratios.1.push(pure / with_auto);
        ratios.2.push(pure / dyn_total);
        println!(
            "{:<8} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms",
            design.name,
            pure * 1e3,
            with_scr * 1e3,
            with_auto * 1e3,
            dyn_total * 1e3
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average speedup over Pure: +SCR {:.1}x (paper 1.7x), +Auto {:.1}x (paper 3.3x), DynPre {:.1}x (paper 4.5x)",
        avg(&ratios.0),
        avg(&ratios.1),
        avg(&ratios.2)
    );
}

/// Fig. 29: graph-update analysis — (a) the minimum update ratio that
/// perturbs GNN outputs vs layer count, (b) per-hour update-ratio series.
pub fn fig29() {
    banner("Fig. 29a: critical update ratio vs layers");
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9}",
        "id", "1-layer", "2-layer", "3-layer", "4-layer"
    );
    for d in [
        Dataset::StackOverflow,
        Dataset::Taobao,
        Dataset::Journal,
        Dataset::Amazon,
    ] {
        let scale = d.scale_for_max_edges(120_000);
        let graph = d.generate_scaled(scale, 13);
        print!("{:<4}", d.abbrev());
        for layers in 1..=4u32 {
            let ratio = critical_update_ratio(&graph, layers, 0.5, 17);
            print!(" {:>8.3}%", ratio * 100.0);
        }
        println!();
    }
    println!("paper: highly connected JR/AM need far smaller updates to perturb most of the graph as layers grow");

    banner("Fig. 29b: per-hour update ratio time-series");
    for (d, mean) in [(Dataset::Taobao, 0.40), (Dataset::StackOverflow, 0.34)] {
        let series = hourly_update_series(mean, 1_500, 23);
        let avg = series.iter().sum::<f64>() / series.len() as f64;
        let max = series.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}: mean {:.2}%/h, max {:.2}%/h over {} hours (paper: 0.74% per two hours on average)",
            d.abbrev(),
            avg,
            max,
            series.len()
        );
    }
    println!("practical services rebuild once the ratio reaches 0.5% — every couple of hours");
}

//! The seeded serving scenario sweep behind CI's `bench-smoke` job.
//!
//! Three scenarios replay the same drift-heavy, offset-diurnal trace
//! (~6 000 requests, well under a second of wall clock each):
//!
//! 1. `single_board_reconfig_aware` — the PR 1 baseline: one VPK180,
//!    reconfig-aware dispatch;
//! 2. `pool4_least_loaded` — four boards, utilization-greedy placement
//!    (drains fast, still thrashes the ICAP);
//! 3. `pool4_bitstream_affine` — four boards with bitstream-affine
//!    placement, the configuration the perf gate protects.
//!
//! [`render_json`] emits the deterministic `BENCH_serving.json` document;
//! [`crate::perfgate`] compares its `scenarios[].p99_secs` and
//! `scenarios[].reconfigs` against the checked-in baseline.

use agnn_graph::datasets::Dataset;
use agnn_serve::metrics::{json_f64, json_str};
use agnn_serve::pool::PlacementPolicy;
use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::TrafficReport;

/// Deployment seed of the sweep (fixed: the artifact must be reproducible).
pub const SMOKE_SEED: u64 = 4_242;
/// Offered load per scenario.
pub const SMOKE_REQUESTS: u64 = 6_000;

/// One scenario of the sweep.
#[derive(Debug)]
pub struct Scenario {
    /// Stable scenario identifier — the gate joins baseline and run on it.
    pub name: &'static str,
    /// Pool size.
    pub boards: usize,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// The simulation report.
    pub report: TrafficReport,
}

/// The drift-heavy trace: three tenants with offset diurnal peaks, so the
/// dominant tenant — and the cost-model-optimal bitstream — rotates.
fn smoke_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

/// Runs the full sweep (deterministic in [`SMOKE_SEED`]).
pub fn run_sweep() -> Vec<Scenario> {
    let base = ServeConfig {
        seed: SMOKE_SEED,
        total_requests: SMOKE_REQUESTS,
        queue_capacity: 512,
        policy: DispatchPolicy::reconfig_aware(),
        ..ServeConfig::default()
    };
    let cases = [
        (
            "single_board_reconfig_aware",
            1,
            PlacementPolicy::LeastLoaded,
        ),
        ("pool4_least_loaded", 4, PlacementPolicy::LeastLoaded),
        (
            "pool4_bitstream_affine",
            4,
            PlacementPolicy::BitstreamAffine,
        ),
    ];
    cases
        .into_iter()
        .map(|(name, boards, placement)| Scenario {
            name,
            boards,
            placement,
            report: simulate(
                smoke_tenants(),
                ServeConfig {
                    boards,
                    placement,
                    ..base
                },
            ),
        })
        .collect()
}

/// Renders the sweep as the `BENCH_serving.json` document: a scenario
/// array whose `name`/`p99_secs` members feed the perf gate, each carrying
/// the full per-tenant/per-board report for trajectory archaeology.
pub fn render_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            let overall = s.report.overall_latency();
            format!(
                concat!(
                    "{{\"name\":{name},\"boards\":{boards},",
                    "\"placement\":{placement},\"p50_secs\":{p50},",
                    "\"p99_secs\":{p99},\"reconfigs\":{reconfigs},",
                    "\"completed\":{completed},\"dropped\":{dropped},",
                    "\"report\":{report}}}"
                ),
                name = json_str(s.name),
                boards = s.boards,
                placement = json_str(s.placement.name()),
                p50 = json_f64(overall.quantile(0.50)),
                p99 = json_f64(overall.quantile(0.99)),
                reconfigs = s.report.reconfigs,
                completed = s.report.completed(),
                dropped = s.report.dropped(),
                report = s.report.to_json(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"schema\":\"agnn-bench-serving/v1\",\"seed\":{seed},",
            "\"total_requests\":{requests},\"scenarios\":[{rows}]}}"
        ),
        seed = SMOKE_SEED,
        requests = SMOKE_REQUESTS,
        rows = rows.join(",")
    )
}

/// Renders only the gate schema (`scenarios[].name` / `p99_secs` /
/// `reconfigs`) — the compact form checked in as the baseline.
pub fn render_baseline_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "\n  {{\"name\":{},\"p99_secs\":{},\"reconfigs\":{}}}",
                json_str(s.name),
                json_f64(s.report.overall_latency().quantile(0.99)),
                s.report.reconfigs,
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"agnn-bench-serving-baseline/v1\",\"seed\":{},\"scenarios\":[{}\n]}}\n",
        SMOKE_SEED,
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfgate;

    #[test]
    fn sweep_is_deterministic_and_json_parses() {
        let a = run_sweep();
        let b = run_sweep();
        assert_eq!(render_json(&a), render_json(&b), "byte-identical artifacts");
        let doc = perfgate::parse(&render_json(&a)).expect("artifact parses");
        assert_eq!(
            doc.get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map(<[perfgate::Json]>::len),
            Some(3)
        );
        let baseline = perfgate::parse(&render_baseline_json(&a)).expect("baseline parses");
        // A run always passes the gate against its own baseline.
        let outcome = perfgate::gate_p99(&baseline, &doc, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    #[test]
    fn affine_pool_dominates_the_single_board_in_the_sweep() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let single = by_name("single_board_reconfig_aware");
        let affine = by_name("pool4_bitstream_affine");
        assert!(
            affine.report.reconfigs < single.report.reconfigs,
            "the gated configuration must hold its headline: {} vs {}",
            affine.report.reconfigs,
            single.report.reconfigs
        );
        assert!(
            affine.report.overall_latency().quantile(0.99)
                < single.report.overall_latency().quantile(0.99)
        );
        // Every scenario faces the same offered load.
        for s in &sweep {
            assert_eq!(
                s.report.completed() + s.report.dropped(),
                SMOKE_REQUESTS,
                "{}",
                s.name
            );
        }
    }
}

//! The seeded serving scenario sweep behind CI's `bench-smoke` job.
//!
//! Ten named scenarios at ~6 000 requests each, plus the twelve-cell
//! `grid_sweep` family (`grid_cases`: pool size × scheduler × result
//! cache at [`GRID_REQUESTS`] per cell). All of it runs as **one
//! parallel batch** ([`run_all_jobs`], fanned out through
//! [`agnn_serve::par_runs`]) whose rendered artifacts are byte-identical
//! for every job count — results merge in case order, and `jobs = 1` is
//! the serial loop bit-for-bit (proptested below).
//!
//! The first three sweep scenarios replay the same drift-heavy,
//! offset-diurnal trace:
//!
//! 1. `single_board_reconfig_aware` — the PR 1 baseline: one VPK180,
//!    reconfig-aware dispatch;
//! 2. `pool4_least_loaded` — four boards, utilization-greedy placement
//!    (drains fast, still thrashes the ICAP);
//! 3. `pool4_bitstream_affine` — four boards with bitstream-affine
//!    placement, a configuration the perf gate protects.
//!
//! The next two guard the staged pipeline and cross-board migration:
//!
//! 4. `pipelined_drift` — four boards in `overlap` mode on a
//!    memory-pressured mix (six Taobao-scale regions whose graphs outgrow
//!    each board's DRAM, so LRU eviction forces recurring cold
//!    re-uploads). The gate protects the overlap-mode tail and reconfig
//!    count, so a regression in the DMA/fabric pipeline fails CI.
//! 5. `migration_drift` — the same memory-pressured trace with
//!    [`MigratePolicy::PeerRehydrate`]: evicted tenants rehydrate from
//!    peer boards over the PCIe switch instead of the host link. The gate
//!    protects its p99 **and its `host_upload_bytes`** — the byte saving
//!    is the scenario's whole point, so quietly re-uploading from the
//!    host again must fail CI even if the tail absorbs it.
//!
//! The last three guard the scheduler subsystem
//! (`crates/serve/src/sched/`):
//!
//! 6. `fifo_burst` — the bursty-aggressor trace
//!    ([`TenantSpec::bursty_aggressor`]) through the shared FIFO queue:
//!    the aggressor's bursts starve the two victim tenants. Gated so the
//!    *contrast* stays honest (if FIFO stopped failing the victims, the
//!    wfq headline would be hollow).
//! 7. `wfq_burst` — the same trace under
//!    [`SchedKind::weighted_fair`]: per-tenant quotas plus deficit round
//!    robin. The gate protects **`victim_p99_secs`** (the worse of the
//!    two victims' p99 — the fairness headline) and **`tenant_drops`**
//!    (victims must keep dropping zero), alongside p99/reconfigs.
//! 8. `slo_drift` — the drift-heavy trace with [`SchedKind::slo_aware`]:
//!    reconfigurations happen only when a tenant's predicted p99 clears
//!    its SLO budget. The gate protects its reconfig count (the cut is
//!    the point) and its p99 (the cut must not cost the tail).
//!
//! The ninth guards the result cache (`crates/serve/src/cache/`):
//!
//! 9. `cache_replay` — the duplicate-heavy dashboard trace
//!    ([`TenantSpec::replay_heavy`]) with the delta-invalidation cache
//!    ([`CacheKind::delta`]) on two boards. The gate protects its p99 and
//!    — inverted, like `sim_events_per_sec` but at the simulated-metric
//!    tolerance — its **`hit_rate`** and **`recompute_secs_saved`**: a
//!    cache that silently stops hitting keeps a fine tail on this light
//!    trace, so the tail alone would hide the regression.
//!
//! The last scenario guards the deadline-aware request lifecycle
//! (`ServeConfig::default_deadline_secs` / `TenantSpec::deadline_secs`):
//!
//! 10. `deadline_burst` — a gentler bursty-aggressor trace (mean 8 rps,
//!     so the two-board pool oscillates between overload and drain)
//!     with a 2 s deadline on both victim tenants and hedged dispatch
//!     armed. The gate protects **`victim_goodput_p99_secs`** (the
//!     worse victims' p99 over *on-time* completions only — the whole
//!     point of enforcement is that this number sits inside the
//!     deadline while the oblivious tail blows out to tens of seconds),
//!     **`wasted_work_bytes`** (bytes moved for requests that then
//!     expired, were aborted or lost their hedge race — pinned at zero
//!     on this DRAM-resident trace, so enforcement silently starting to
//!     move dead bytes fails CI) and **`wasted_secs`** (board time the
//!     ledger writes off, dominated by completions that crossed their
//!     deadline in service).
//!
//! [`render_json`] emits the `BENCH_serving.json` document (scenario
//! rows also carry the per-stage report, the pipeline-overlap ratio,
//! eviction/migration counts, the switch/host byte split and the
//! simulator's own `sim_wall_secs` / `sim_events_per_sec` — the only
//! non-deterministic members, being host wall clock);
//! [`crate::perfgate`] compares its `scenarios[].p99_secs`,
//! `scenarios[].reconfigs`, `scenarios[].host_upload_bytes`,
//! `scenarios[].victim_p99_secs`, `scenarios[].victim_goodput_p99_secs`,
//! `scenarios[].wasted_work_bytes`, `scenarios[].wasted_secs`,
//! `scenarios[].tenant_drops`,
//! (inverted, at the caller's tolerance) `scenarios[].hit_rate` and
//! `scenarios[].recompute_secs_saved`, and (inverted, at a generous
//! tolerance) `scenarios[].sim_events_per_sec` against the checked-in
//! baseline and ignores keys it does not know.
//! [`perfetto_trace`] replays one named case with a
//! [`ChromeTraceWriter`] attached for the `--trace-out` flag.

use agnn_graph::datasets::Dataset;
use agnn_serve::metrics::{json_f64, json_str};
use agnn_serve::pool::{MigratePolicy, PlacementPolicy};
use agnn_serve::sched::SchedKind;
use agnn_serve::sim::{HedgeKind, ServeConfig, TrafficSim};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::{CacheKind, ChromeTraceWriter, TrafficReport};

/// Deployment seed of the sweep (fixed: the artifact must be reproducible).
pub const SMOKE_SEED: u64 = 4_242;
/// Offered load per sweep scenario.
pub const SMOKE_REQUESTS: u64 = 6_000;
/// Offered load per `grid_sweep` cell — deliberately lighter than
/// [`SMOKE_REQUESTS`]: twelve cells ride the same CI job as the sweep,
/// and the family's value is breadth (every pool-size × scheduler ×
/// cache corner gated), not per-cell depth.
pub const GRID_REQUESTS: u64 = 1_500;
/// Minimum simulated event count for a baseline row to carry
/// `sim_events_per_sec`: below this the run finishes in well under a
/// millisecond of host wall clock, so its events-per-second is timer
/// noise and gating on it would flake. Sits between the largest
/// `grid_sweep` cell (~3 000 events) and the smallest sweep scenario
/// (~10 000) — the event count is seed-deterministic, so the split
/// never varies between hosts or job counts.
pub const SPEED_GATE_MIN_EVENTS: u64 = 10_000;

/// Victim tenants of the bursty-aggressor scenarios (the fairness gate
/// tracks their tail and drops by name).
pub const BURST_VICTIMS: &[&str] = &["victim-feed", "victim-fraud"];

/// Per-request latency budget of the `deadline_burst` victims.
pub const DEADLINE_SECS: f64 = 2.0;

/// One scenario of the sweep.
#[derive(Debug)]
pub struct Scenario {
    /// Stable scenario identifier — the gate joins baseline and run on it.
    pub name: &'static str,
    /// The exact simulation configuration the scenario ran (boards,
    /// placement, migration, scheduler, …) — stored whole so reported
    /// knobs can never drift from the knobs actually simulated.
    pub config: ServeConfig,
    /// Tenant names whose tail the fairness gate protects (empty for
    /// scenarios without an adversarial mix).
    pub victims: &'static [&'static str],
    /// The per-request latency budget the scenario's victims enforce
    /// (`None` for deadline-oblivious scenarios) — set on the victim
    /// [`TenantSpec`]s and echoed here so the renderers know which rows
    /// carry the deadline-lifecycle members.
    pub deadline_secs: Option<f64>,
    /// The simulation report.
    pub report: TrafficReport,
}

impl Scenario {
    /// The worse p99 across the scenario's victim tenants, if any.
    pub fn victim_p99_secs(&self) -> Option<f64> {
        self.report
            .tenants
            .iter()
            .filter(|t| self.victims.contains(&t.name.as_str()))
            .map(|t| t.latency.quantile(0.99))
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
    }

    /// The worse *goodput* p99 across the scenario's victim tenants —
    /// the tail over on-time completions only, the number deadline
    /// enforcement exists to bound. `None` without victims or deadlines.
    pub fn victim_goodput_p99_secs(&self) -> Option<f64> {
        self.deadline_secs?;
        self.report
            .tenants
            .iter()
            .filter(|t| self.victims.contains(&t.name.as_str()))
            .map(|t| t.goodput_latency.quantile(0.99))
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
    }

    /// Per-tenant drop counts as a deterministic JSON object (tenant
    /// declaration order), for scenarios with victims.
    fn tenant_drops_json(&self) -> String {
        let rows: Vec<String> = self
            .report
            .tenants
            .iter()
            .map(|t| format!("{}:{}", json_str(&t.name), t.dropped))
            .collect();
        format!("{{{}}}", rows.join(","))
    }
}

/// The drift-heavy trace: three tenants with offset diurnal peaks, so the
/// dominant tenant — and the cost-model-optimal bitstream — rotates.
fn smoke_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

/// The memory-pressured trace behind `pipelined_drift`
/// ([`TenantSpec::taobao_regions`]): six Taobao-scale e-commerce regions
/// whose combined working set outgrows a board's ~15 GB DRAM budget, so
/// LRU eviction forces recurring cold re-uploads — the ingest traffic the
/// pipelined scheduler hides behind fabric compute.
fn pressured_tenants() -> Vec<TenantSpec> {
    TenantSpec::taobao_regions(4.0, 900.0)
}

/// The bursty-aggressor trace behind the scheduler scenarios
/// ([`TenantSpec::bursty_aggressor`]): two steady interactive victims
/// plus one tenant whose diurnal bursts offer several times the pool's
/// capacity.
fn burst_tenants() -> Vec<TenantSpec> {
    TenantSpec::bursty_aggressor(2.0, 40.0, 900.0)
}

/// The trace behind `deadline_burst`: the bursty-aggressor shape at a
/// gentler mean (8 rps), so the two-board pool oscillates — bursts blow
/// victim queue waits past the deadline, troughs drain and serve on
/// time — and both sides of the 2 s boundary stay populated. The victims
/// carry the [`DEADLINE_SECS`] budget; the aggressor stays best-effort.
fn deadline_tenants() -> Vec<TenantSpec> {
    let mut tenants = TenantSpec::bursty_aggressor(2.0, 8.0, 900.0);
    for victim in &mut tenants[..2] {
        victim.deadline_secs = Some(DEADLINE_SECS);
    }
    tenants
}

/// The duplicate-heavy trace behind `cache_replay`
/// ([`TenantSpec::replay_heavy`]): three dashboard tenants re-offering
/// the identical query against static graphs, so almost every request
/// after each tenant's first is cache-servable.
fn replay_tenants() -> Vec<TenantSpec> {
    TenantSpec::replay_heavy(3.0)
}

/// One sweep case before simulation: stable name, tenant mix, full
/// configuration, the victim tenants the fairness gate tracks and the
/// victim deadline (when the case enforces one).
type SweepCase = (
    &'static str,
    Vec<TenantSpec>,
    ServeConfig,
    &'static [&'static str],
    Option<f64>,
);

/// [`sweep_cases`] plus the [`grid_cases`] family, in artifact order —
/// what `bench_smoke` simulates as one parallel batch.
fn all_cases() -> Vec<SweepCase> {
    let mut cases = sweep_cases();
    cases.extend(grid_cases());
    cases
}

/// Stable cell names of the `grid_sweep` family, boards-major then
/// scheduler then cache — the construction order in [`grid_cases`], and
/// therefore the artifact row order.
const GRID_NAMES: [&str; 12] = [
    "grid_b1_fifo_off",
    "grid_b1_fifo_delta",
    "grid_b1_wfq_off",
    "grid_b1_wfq_delta",
    "grid_b1_slo_off",
    "grid_b1_slo_delta",
    "grid_b4_fifo_off",
    "grid_b4_fifo_delta",
    "grid_b4_wfq_off",
    "grid_b4_wfq_delta",
    "grid_b4_slo_off",
    "grid_b4_slo_delta",
];

/// The `grid_sweep` family: the full pool-size × scheduler × result-cache
/// grid — `{1, 4}` boards × `{fifo, wfq, slo}` × `{off, delta}` — over
/// the drift-heavy trace at [`GRID_REQUESTS`] per cell. The sweep's named
/// scenarios each probe one subsystem in isolation; the grid gates the
/// *interactions* (an SLO gate that only regresses on a cached four-board
/// pool has no dedicated scenario, but it has a cell). Cells became
/// affordable when the runner went parallel: twelve extra simulations
/// amortize across the worker pool instead of extending the critical
/// path.
fn grid_cases() -> Vec<SweepCase> {
    let base = || {
        ServeConfig::reconfig_aware()
            .to_builder()
            .seed(SMOKE_SEED)
            .total_requests(GRID_REQUESTS)
            .queue_capacity(512)
    };
    let mut cases = Vec::with_capacity(GRID_NAMES.len());
    for (bi, boards) in [1usize, 4].into_iter().enumerate() {
        let schedulers = [
            SchedKind::Fifo,
            SchedKind::weighted_fair(),
            SchedKind::slo_aware(),
        ];
        for (si, scheduler) in schedulers.into_iter().enumerate() {
            for (ci, cache) in [CacheKind::Off, CacheKind::delta()].into_iter().enumerate() {
                let config = base()
                    .boards(boards)
                    .scheduler(scheduler)
                    .cache(cache)
                    .build()
                    .expect("grid cell config is valid");
                cases.push((
                    GRID_NAMES[bi * 6 + si * 2 + ci],
                    smoke_tenants(),
                    config,
                    &[][..],
                    None,
                ));
            }
        }
    }
    cases
}

/// The sweep's case list — the single source of truth shared by
/// [`run_sweep`] (which simulates every case) and [`perfetto_trace`]
/// (which replays one named case with a trace sink attached).
fn sweep_cases() -> Vec<SweepCase> {
    let base = || {
        ServeConfig::reconfig_aware()
            .to_builder()
            .seed(SMOKE_SEED)
            .total_requests(SMOKE_REQUESTS)
            .queue_capacity(512)
    };
    // The burst scenarios dispatch in strict scan order on two boards:
    // the fair schedule *is* the scan order (see
    // `ServeConfig::weighted_fair`), and the FIFO comparator runs the
    // identical configuration so the contrast isolates the scheduler.
    let burst = || {
        ServeConfig::weighted_fair()
            .to_builder()
            .seed(SMOKE_SEED)
            .total_requests(SMOKE_REQUESTS)
            .queue_capacity(512)
            .boards(2)
    };
    let built = |b: agnn_serve::ServeConfigBuilder| b.build().expect("sweep case config is valid");
    vec![
        (
            "single_board_reconfig_aware",
            smoke_tenants(),
            built(base().boards(1)),
            &[][..],
            None,
        ),
        (
            "pool4_least_loaded",
            smoke_tenants(),
            built(base().boards(4)),
            &[],
            None,
        ),
        (
            "pool4_bitstream_affine",
            smoke_tenants(),
            built(base().boards(4).placement(PlacementPolicy::BitstreamAffine)),
            &[],
            None,
        ),
        (
            "pipelined_drift",
            pressured_tenants(),
            built(base().boards(4).overlap(true)),
            &[],
            None,
        ),
        (
            "migration_drift",
            pressured_tenants(),
            // PeerRehydrate, deliberately: under LeastLoaded placement
            // there is no wait-for-affine-board state, so the SplitHot
            // overflow path can never fire — labeling the row split_hot
            // would advertise coverage the gate does not have. The split
            // path is pinned by `tests/serve_traffic.rs` instead.
            built(
                base()
                    .boards(4)
                    .overlap(true)
                    .migrate(MigratePolicy::PeerRehydrate),
            ),
            &[],
            None,
        ),
        (
            "fifo_burst",
            burst_tenants(),
            built(burst().scheduler(SchedKind::Fifo)),
            BURST_VICTIMS,
            None,
        ),
        (
            "wfq_burst",
            burst_tenants(),
            built(burst()),
            BURST_VICTIMS,
            None,
        ),
        (
            "slo_drift",
            smoke_tenants(),
            built(base().boards(1).scheduler(SchedKind::slo_aware())),
            &[],
            None,
        ),
        (
            "cache_replay",
            replay_tenants(),
            built(base().boards(2).cache(CacheKind::delta())),
            &[],
            None,
        ),
        (
            "deadline_burst",
            deadline_tenants(),
            // Serial two-board pool, hedged dispatch armed: the same
            // configuration `tests/serve_traffic.rs` validates against
            // its deadline-oblivious twin.
            built(base().boards(2).hedge(HedgeKind::latency())),
            BURST_VICTIMS,
            Some(DEADLINE_SECS),
        ),
    ]
}

/// Simulates `cases` across up to `jobs` worker threads
/// ([`agnn_serve::par_runs`]) and reassembles the scenarios in **case
/// order** — the fixed-order merge contract. Completion order is
/// scheduling noise, but every rendered artifact is byte-identical for
/// every job count (`jobs = 1` is the serial loop bit-for-bit;
/// proptested below). The only members that vary between job counts are
/// each report's `sim` self-metrics, which are host wall clock by
/// definition — and even those are measured per run, on that run's
/// worker, never across runs.
fn run_cases(cases: Vec<SweepCase>, jobs: usize) -> Vec<Scenario> {
    let mut meta = Vec::with_capacity(cases.len());
    let mut runs = Vec::with_capacity(cases.len());
    for (name, tenants, config, victims, deadline_secs) in cases {
        meta.push((name, config, victims, deadline_secs));
        runs.push((tenants, config));
    }
    agnn_serve::par_runs(jobs, runs)
        .into_iter()
        .zip(meta)
        .map(
            |(report, (name, config, victims, deadline_secs))| Scenario {
                name,
                config,
                victims,
                deadline_secs,
                report,
            },
        )
        .collect()
}

/// Runs the full sweep serially (deterministic in [`SMOKE_SEED`]) — the
/// `jobs = 1` degenerate case of [`run_sweep_jobs`].
pub fn run_sweep() -> Vec<Scenario> {
    run_sweep_jobs(1)
}

/// Runs the full sweep across up to `jobs` worker threads. Scenario
/// order and every deterministic artifact byte match [`run_sweep`]
/// exactly (the fixed-order merge contract — see `run_cases`).
pub fn run_sweep_jobs(jobs: usize) -> Vec<Scenario> {
    run_cases(sweep_cases(), jobs)
}

/// Runs the `grid_sweep` family (see `grid_cases`) across up to `jobs`
/// worker threads, in stable cell order.
pub fn run_grid_jobs(jobs: usize) -> Vec<Scenario> {
    run_cases(grid_cases(), jobs)
}

/// Runs the sweep **plus** the grid family as one parallel batch —
/// `bench_smoke`'s workload. One batch rather than two back-to-back
/// sweeps so the long sweep scenarios and the short grid cells share the
/// worker pool (the grid fills the tail while the slowest sweep scenario
/// finishes). Scenario order is sweep rows then grid cells, independent
/// of `jobs`.
pub fn run_all_jobs(jobs: usize) -> Vec<Scenario> {
    run_cases(all_cases(), jobs)
}

/// Replays the named sweep case with a [`ChromeTraceWriter`] attached and
/// returns the Perfetto / `chrome://tracing` JSON document, or `None` for
/// an unknown scenario name.
///
/// The replay is the *identical* simulation `run_sweep` ran — same seed,
/// same configuration — so the trace's spans line up with the gated
/// numbers in `BENCH_serving.json` (sinks are write-only; see
/// [`TrafficSim::run_traced`]).
pub fn perfetto_trace(scenario_name: &str) -> Option<String> {
    let (_, tenants, config, ..) = all_cases()
        .into_iter()
        .find(|(name, ..)| *name == scenario_name)?;
    let names = tenants.iter().map(|t| t.name.clone()).collect();
    let mut writer = ChromeTraceWriter::with_tenant_names(names);
    TrafficSim::new(tenants, config).run_traced(&mut writer);
    Some(writer.finish())
}

/// Renders the scenarios as the `BENCH_serving.json` document
/// (`agnn-bench-serving/v7`): a scenario array whose `name`/`p99_secs`
/// members feed the perf gate, each carrying its own offered load
/// (`requests` — sweep rows and grid cells differ) and the full
/// per-tenant/per-board report for trajectory archaeology.
pub fn render_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            let overall = s.report.overall_latency();
            let fairness = match s.victim_p99_secs() {
                Some(victim_p99) => format!(
                    "\"victim_p99_secs\":{},\"tenant_drops\":{},",
                    json_f64(victim_p99),
                    s.tenant_drops_json(),
                ),
                None => String::new(),
            };
            let cache = if s.config.cache.enabled() {
                format!(
                    "\"hit_rate\":{},\"recompute_secs_saved\":{},",
                    json_f64(s.report.cache.hit_rate()),
                    json_f64(s.report.cache.recompute_secs_saved),
                )
            } else {
                String::new()
            };
            let deadline = match s.victim_goodput_p99_secs() {
                Some(goodput_p99) => format!(
                    concat!(
                        "\"victim_goodput_p99_secs\":{},\"expired_in_queue\":{},",
                        "\"aborted\":{},\"hedges\":{},",
                        "\"wasted_work_bytes\":{},\"wasted_secs\":{},"
                    ),
                    json_f64(goodput_p99),
                    s.report.expired_in_queue(),
                    s.report.aborted(),
                    s.report.hedges(),
                    s.report.wasted_work_bytes,
                    json_f64(s.report.wasted_secs),
                ),
                None => String::new(),
            };
            format!(
                concat!(
                    "{{\"name\":{name},\"requests\":{requests},\"boards\":{boards},",
                    "\"placement\":{placement},\"migrate\":{migrate},",
                    "\"scheduler\":{scheduler},\"cache\":{cache_kind},",
                    "\"p50_secs\":{p50},",
                    "\"p99_secs\":{p99},\"reconfigs\":{reconfigs},",
                    "\"completed\":{completed},\"dropped\":{dropped},",
                    "{fairness}",
                    "{deadline}",
                    "{cache}",
                    "\"pipeline_overlap_ratio\":{overlap_ratio},",
                    "\"evictions\":{evictions},",
                    "\"migrations\":{migrations},",
                    "\"switch_bytes\":{switch_bytes},",
                    "\"host_upload_bytes\":{host_upload_bytes},",
                    "\"sim_wall_secs\":{sim_wall},",
                    "\"sim_events_per_sec\":{sim_rate},",
                    "\"report\":{report}}}"
                ),
                name = json_str(s.name),
                requests = s.config.total_requests,
                boards = s.config.boards,
                placement = json_str(s.config.placement.name()),
                migrate = json_str(s.config.migrate.name()),
                scheduler = json_str(s.config.scheduler.name()),
                cache_kind = json_str(s.config.cache.name()),
                p50 = json_f64(overall.quantile(0.50)),
                p99 = json_f64(overall.quantile(0.99)),
                reconfigs = s.report.reconfigs,
                completed = s.report.completed(),
                dropped = s.report.dropped(),
                fairness = fairness,
                deadline = deadline,
                cache = cache,
                overlap_ratio = json_f64(s.report.pipeline_overlap_ratio()),
                evictions = s.report.evictions(),
                migrations = s.report.migrations(),
                switch_bytes = s.report.switch_bytes(),
                host_upload_bytes = s.report.host_upload_bytes(),
                sim_wall = json_f64(s.report.sim.wall_secs),
                sim_rate = json_f64(s.report.sim.events_per_sec()),
                report = s.report.to_json(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"schema\":\"agnn-bench-serving/v7\",\"seed\":{seed},",
            "\"total_requests\":{requests},\"scenarios\":[{rows}]}}"
        ),
        seed = SMOKE_SEED,
        requests = SMOKE_REQUESTS,
        rows = rows.join(",")
    )
}

/// Renders only the gate schema (`scenarios[].name` / `p99_secs` /
/// `reconfigs` / `host_upload_bytes` / `sim_events_per_sec`, plus
/// `victim_p99_secs` and `tenant_drops` on scenarios with victims, plus
/// `victim_goodput_p99_secs`, `wasted_work_bytes` and `wasted_secs` on
/// scenarios enforcing a deadline, plus `hit_rate` and
/// `recompute_secs_saved` on scenarios with the result cache enabled) —
/// the compact form checked in as the baseline.
///
/// `sim_events_per_sec` is the one member measured in *host* wall clock:
/// the checked-in value captures the writer's machine, the gate compares
/// at the generous [`crate::perfgate::SIM_SPEED_TOLERANCE`], and the CI
/// stale-baseline guard filters the member out before diffing (it can
/// never be byte-reproduced on another host). Rows below
/// [`SPEED_GATE_MIN_EVENTS`] simulated events omit the member entirely
/// (the gate skips what the baseline doesn't record): a `grid_sweep`
/// cell finishes in well under a millisecond, so its events-per-second
/// is timer noise, not a measurement — the speed gate rides the deep
/// sweep rows only. The event count is seed-deterministic, so which
/// rows carry the member never varies between hosts or job counts.
pub fn render_baseline_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            let fairness = match s.victim_p99_secs() {
                Some(victim_p99) => format!(
                    ",\"victim_p99_secs\":{},\"tenant_drops\":{}",
                    json_f64(victim_p99),
                    s.tenant_drops_json(),
                ),
                None => String::new(),
            };
            let deadline = match s.victim_goodput_p99_secs() {
                Some(goodput_p99) => format!(
                    ",\"victim_goodput_p99_secs\":{},\"wasted_work_bytes\":{},\"wasted_secs\":{}",
                    json_f64(goodput_p99),
                    s.report.wasted_work_bytes,
                    json_f64(s.report.wasted_secs),
                ),
                None => String::new(),
            };
            let cache = if s.config.cache.enabled() {
                format!(
                    ",\"hit_rate\":{},\"recompute_secs_saved\":{}",
                    json_f64(s.report.cache.hit_rate()),
                    json_f64(s.report.cache.recompute_secs_saved),
                )
            } else {
                String::new()
            };
            let speed = if s.report.sim.events >= SPEED_GATE_MIN_EVENTS {
                format!(
                    ",\"sim_events_per_sec\":{}",
                    json_f64(s.report.sim.events_per_sec())
                )
            } else {
                String::new()
            };
            format!(
                "\n  {{\"name\":{},\"p99_secs\":{},\"reconfigs\":{},\"host_upload_bytes\":{}{}{}{}{}}}",
                json_str(s.name),
                json_f64(s.report.overall_latency().quantile(0.99)),
                s.report.reconfigs,
                s.report.host_upload_bytes(),
                fairness,
                deadline,
                cache,
                speed,
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"agnn-bench-serving-baseline/v6\",\"seed\":{},\"scenarios\":[{}\n]}}\n",
        SMOKE_SEED,
        rows.join(",")
    )
}

/// Renders the per-scenario timing table (`BENCH_timing.md`): one
/// markdown row per scenario with the simulator's self-metrics — offered
/// load, events processed, host wall clock and throughput. Wall clock is
/// measured inside each run's worker thread around only that run, so the
/// table attributes time honestly even when the batch ran wide; the CI
/// job uploads it as an artifact so "which scenario got slow" needs no
/// local rebuild.
pub fn render_timing_table(scenarios: &[Scenario]) -> String {
    let mut out = String::from(
        "| scenario | requests | sim events | sim wall (s) | events/s |\n\
         |---|---:|---:|---:|---:|\n",
    );
    for s in scenarios {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3e} |\n",
            s.name,
            s.config.total_requests,
            s.report.sim.events,
            s.report.sim.wall_secs,
            s.report.sim.events_per_sec(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfgate;
    use agnn_serve::sim::simulate;
    use proptest::prelude::*;

    #[test]
    fn sweep_is_deterministic_and_json_parses() {
        let mut a = run_sweep();
        let mut b = run_sweep();
        // Before zeroing: the live sweep must actually carry the sim
        // self-metrics the gate consumes.
        for s in &a {
            assert!(s.report.sim.events > 0, "{}", s.name);
            assert!(s.report.sim.wall_secs > 0.0, "{}", s.name);
            assert!(s.report.sim.events_per_sec() > 0.0, "{}", s.name);
        }
        // The sim self-metrics (wall clock) are the artifact's only
        // non-deterministic bytes; zero them on both sides so the rest
        // of the document byte-compares.
        for s in a.iter_mut().chain(b.iter_mut()) {
            s.report.sim = agnn_serve::SimPerf::default();
        }
        assert_eq!(render_json(&a), render_json(&b), "byte-identical artifacts");
        let doc = perfgate::parse(&render_json(&a)).expect("artifact parses");
        assert_eq!(
            doc.get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map(<[perfgate::Json]>::len),
            Some(10)
        );
        let baseline = perfgate::parse(&render_baseline_json(&a)).expect("baseline parses");
        // A run always passes the gate against its own baseline.
        let outcome = perfgate::gate_p99(&baseline, &doc, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    /// The `--trace-out` path: replaying a sweep case with the Chrome
    /// writer attached yields a dense, parseable Perfetto document whose
    /// gated numbers match the sweep's (sinks are write-only).
    #[test]
    fn perfetto_trace_replays_a_scenario_and_parses() {
        assert!(perfetto_trace("no_such_scenario").is_none());
        let trace = perfetto_trace("migration_drift").expect("known scenario");
        let doc = perfgate::parse(&trace).expect("trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(perfgate::Json::as_arr)
            .expect("traceEvents array");
        assert!(
            events.len() > 1_000,
            "a {SMOKE_REQUESTS}-request replay must emit a dense trace, got {} events",
            events.len()
        );
        let phase = |e: &perfgate::Json| {
            e.get("ph")
                .and_then(perfgate::Json::as_str)
                .map(str::to_string)
        };
        let phases: std::collections::BTreeSet<String> = events.iter().filter_map(phase).collect();
        for required in ["X", "M", "C", "s", "t", "f"] {
            assert!(
                phases.contains(required),
                "trace must carry '{required}' events (spans, metadata, \
                 counters and flow arrows), got {phases:?}"
            );
        }
    }

    #[test]
    fn pipelined_scenario_actually_pipelines() {
        let sweep = run_sweep();
        let pipelined = sweep
            .iter()
            .find(|s| s.name == "pipelined_drift")
            .expect("pipelined_drift scenario");
        assert!(
            pipelined.report.pipeline_overlap_ratio() > 0.2,
            "the gated scenario must exercise DMA/fabric overlap, got {}",
            pipelined.report.pipeline_overlap_ratio()
        );
        assert!(
            pipelined.report.evictions() > 100,
            "the memory-pressured mix must thrash DRAM, got {} evictions",
            pipelined.report.evictions()
        );
        // Serial scenarios never report pipeline activity (the burst
        // scenarios run the pipelined lifecycle, so they are excluded).
        for s in sweep.iter().filter(|s| {
            matches!(
                s.name,
                "single_board_reconfig_aware"
                    | "pool4_least_loaded"
                    | "pool4_bitstream_affine"
                    | "slo_drift"
                    | "cache_replay"
                    | "deadline_burst"
            )
        }) {
            assert_eq!(s.report.pipeline_overlap_ratio(), 0.0, "{}", s.name);
        }
    }

    #[test]
    fn migration_scenario_actually_migrates_and_saves_host_bytes() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let pipelined = by_name("pipelined_drift");
        let migrated = by_name("migration_drift");
        assert!(
            migrated.report.migrations() > 100,
            "the gated scenario must exercise peer rehydration, got {}",
            migrated.report.migrations()
        );
        assert!(
            (migrated.report.host_upload_bytes() as f64)
                < pipelined.report.host_upload_bytes() as f64 * 0.6,
            "migration must save >= 40 % of host upload bytes: {} vs {}",
            migrated.report.host_upload_bytes(),
            pipelined.report.host_upload_bytes(),
        );
        assert!(
            migrated.report.overall_latency().quantile(0.99)
                <= pipelined.report.overall_latency().quantile(0.99),
            "rehydration at switch bandwidth cannot hurt the tail"
        );
        // Every non-migration scenario stays off the switch.
        for s in sweep.iter().filter(|s| s.name != "migration_drift") {
            assert_eq!(s.report.migrations(), 0, "{}", s.name);
            assert_eq!(s.report.switch_bytes(), 0, "{}", s.name);
        }
    }

    /// The ISSUE's acceptance criterion: the gated `wfq_burst` scenario
    /// must show WFQ bounding victim p99 under the bursty-aggressor trace
    /// where `fifo_burst` does not — and the victims must drop nothing
    /// under WFQ while FIFO sheds their traffic.
    #[test]
    fn wfq_burst_bounds_the_victim_tail_where_fifo_does_not() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let fifo = by_name("fifo_burst");
        let wfq = by_name("wfq_burst");
        let (fifo_victim, wfq_victim) = (
            fifo.victim_p99_secs().expect("fifo_burst tracks victims"),
            wfq.victim_p99_secs().expect("wfq_burst tracks victims"),
        );
        assert!(
            fifo_victim > wfq_victim * 10.0,
            "FIFO must blow the victim tail up by an order of magnitude \
             where WFQ bounds it: {fifo_victim} vs {wfq_victim}"
        );
        for victim in BURST_VICTIMS {
            let drops = |s: &Scenario| {
                s.report
                    .tenants
                    .iter()
                    .find(|t| t.name == *victim)
                    .map(|t| t.dropped)
                    .expect("victim tenant present")
            };
            assert_eq!(drops(wfq), 0, "{victim}: quotas protect the backlog");
            assert!(drops(fifo) > 0, "{victim}: the shared queue sheds traffic");
        }
        // Both burst scenarios face the identical offered load; WFQ's
        // aggregate drop count sums its per-tenant counts.
        for s in [fifo, wfq] {
            let tenant_drops: u64 = s.report.tenants.iter().map(|t| t.dropped).sum();
            assert_eq!(s.report.dropped(), tenant_drops, "{}", s.name);
        }
    }

    /// The SLO-gating headline in the sweep: `slo_drift` must cut the
    /// single-board reconfiguration count by an order of magnitude at a
    /// no-worse tail.
    #[test]
    fn slo_drift_cuts_reconfigs_at_a_no_worse_tail() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let ungated = by_name("single_board_reconfig_aware");
        let gated = by_name("slo_drift");
        assert!(
            gated.report.reconfigs < ungated.report.reconfigs / 10,
            "the SLO gate must eliminate most reconfigurations: {} vs {}",
            gated.report.reconfigs,
            ungated.report.reconfigs
        );
        assert!(
            gated.report.overall_latency().quantile(0.99)
                <= ungated.report.overall_latency().quantile(0.99),
            "a no-worse tail is the gate's contract"
        );
    }

    #[test]
    fn affine_pool_dominates_the_single_board_in_the_sweep() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let single = by_name("single_board_reconfig_aware");
        let affine = by_name("pool4_bitstream_affine");
        assert!(
            affine.report.reconfigs < single.report.reconfigs,
            "the gated configuration must hold its headline: {} vs {}",
            affine.report.reconfigs,
            single.report.reconfigs
        );
        assert!(
            affine.report.overall_latency().quantile(0.99)
                < single.report.overall_latency().quantile(0.99)
        );
        // Every scenario faces the same offered load: each arrival lands
        // in exactly one terminal outcome (served, served late, expired,
        // aborted or dropped at admission — the last three only exist on
        // the deadline scenario).
        for s in &sweep {
            assert_eq!(
                s.report.outcomes().arrival_terminal(),
                SMOKE_REQUESTS,
                "{}",
                s.name
            );
        }
    }

    /// The ISSUE's acceptance criterion for the result cache: on the
    /// duplicate-heavy replay trace the gated `cache_replay` scenario
    /// must cut p99 by >= 30 % against its cache-off twin, at an honest
    /// hit-rate the gate can floor.
    #[test]
    fn cache_replay_cuts_the_tail_against_its_off_twin() {
        let sweep = run_sweep();
        let cached = sweep
            .iter()
            .find(|s| s.name == "cache_replay")
            .expect("cache_replay scenario");
        // The off twin: the identical deployment with the cache disabled
        // (every other knob byte-identical, so the contrast isolates the
        // cache).
        let off = simulate(
            replay_tenants(),
            cached
                .config
                .to_builder()
                .cache(CacheKind::Off)
                .build()
                .expect("off twin config is valid"),
        );
        let (cached_p99, off_p99) = (
            cached.report.overall_latency().quantile(0.99),
            off.overall_latency().quantile(0.99),
        );
        assert!(
            cached_p99 < off_p99 * 0.7,
            "the cache must cut replay p99 by >= 30 %: {cached_p99} vs {off_p99}"
        );
        // The gated hit-rate is honest: most requests classified at the
        // cache actually hit, and the saving the gate floors is real.
        assert!(
            cached.report.cache.hit_rate() > 0.5,
            "hit-rate {}",
            cached.report.cache.hit_rate()
        );
        assert!(cached.report.cache.recompute_secs_saved > 0.0);
        // Classification conservation: every completion is exactly one of
        // hit / partial / miss / coalesced.
        let s = cached.report.cache;
        assert_eq!(
            s.hits + s.partial_hits + s.misses + s.coalesced,
            cached.report.completed(),
        );
        // The off twin never consults the cache — the Off artifact rows
        // must not grow cache members (`render_json` keys off the config).
        assert_eq!(off.cache.lookups(), 0);
        assert_eq!(off.cache.coalesced, 0);
    }

    /// The ISSUE's acceptance criterion for the deadline lifecycle: the
    /// gated `deadline_burst` scenario must beat its deadline-oblivious
    /// twin — same seed, same configuration, same trace shape, deadlines
    /// stripped — on the victims' goodput tail, and its waste ledger
    /// must record real written-off board time without moving a single
    /// dead byte on this DRAM-resident trace.
    #[test]
    fn deadline_burst_beats_its_oblivious_twin() {
        let sweep = run_sweep();
        let enforced = sweep
            .iter()
            .find(|s| s.name == "deadline_burst")
            .expect("deadline_burst scenario");
        // The twin: deadlines live on the TenantSpecs, so the identical
        // ServeConfig replays the identical trace without enforcement.
        let twin = simulate(
            TenantSpec::bursty_aggressor(2.0, 8.0, 900.0),
            enforced.config,
        );
        assert_eq!(twin.completed() + twin.dropped(), SMOKE_REQUESTS);
        assert_eq!(twin.expired_in_queue(), 0, "no deadlines, no expiry");
        assert_eq!(twin.wasted_secs, 0.0, "no deadlines, no waste ledger");

        // Enforcement re-partitions the same arrivals: a populated
        // expiry count and a goodput tail inside the budget.
        assert!(
            enforced.report.expired_in_queue() > 100,
            "bursts must push victim waits past the deadline, expired {}",
            enforced.report.expired_in_queue()
        );
        let goodput_p99 = enforced
            .victim_goodput_p99_secs()
            .expect("deadline scenario tracks victim goodput");
        let twin_victim_p99 = twin
            .tenants
            .iter()
            .filter(|t| BURST_VICTIMS.contains(&t.name.as_str()))
            .map(|t| t.latency.quantile(0.99))
            .fold(0.0_f64, f64::max);
        assert!(
            goodput_p99 <= DEADLINE_SECS,
            "on-time completions sit inside the budget: {goodput_p99}"
        );
        assert!(
            twin_victim_p99 > DEADLINE_SECS * 2.0,
            "the oblivious twin must blow the victim tail the gate \
             quotes enforcement against: {twin_victim_p99}"
        );
        assert!(goodput_p99 < twin_victim_p99);

        // The waste ledger: board time written off (completions that
        // crossed their deadline in service) but zero dead bytes — the
        // victims' graphs are DRAM-resident, so the gated
        // `wasted_work_bytes` of this scenario is a stays-zero floor.
        assert!(
            enforced.report.wasted_secs > 0.0,
            "late serves must land in the ledger"
        );
        assert_eq!(enforced.report.wasted_work_bytes, 0);
    }

    /// The `grid_sweep` family: every cell present in stable order,
    /// deterministic, conserving its offered load, and passing the gate
    /// against its own baseline.
    #[test]
    fn grid_family_is_deterministic_and_gates_against_itself() {
        let scrub = |scenarios: &mut [Scenario]| {
            for s in scenarios {
                s.report.sim = agnn_serve::SimPerf::default();
            }
        };
        let mut grid = run_grid_jobs(1);
        let mut again = run_grid_jobs(1);
        scrub(&mut grid);
        scrub(&mut again);
        assert_eq!(render_json(&grid), render_json(&again));
        let names: Vec<&str> = grid.iter().map(|s| s.name).collect();
        assert_eq!(names, GRID_NAMES);
        for s in &grid {
            assert_eq!(s.config.total_requests, GRID_REQUESTS, "{}", s.name);
            assert_eq!(
                s.report.outcomes().arrival_terminal(),
                GRID_REQUESTS,
                "{}",
                s.name
            );
        }
        // Cells genuinely differ: the grid gates interactions, not
        // twelve copies of one configuration.
        let digests: std::collections::BTreeSet<u64> =
            grid.iter().map(|s| s.report.trace_digest).collect();
        assert!(digests.len() > 6, "cells collapsed: {digests:?}");
        let doc = perfgate::parse(&render_json(&grid)).expect("grid artifact parses");
        let baseline = perfgate::parse(&render_baseline_json(&grid)).expect("grid baseline parses");
        let outcome = perfgate::gate_p99(&baseline, &doc, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    /// The timing table carries one row per scenario in batch order.
    #[test]
    fn timing_table_has_one_row_per_scenario() {
        let grid = run_grid_jobs(1);
        let table = render_timing_table(&grid);
        assert_eq!(table.lines().count(), 2 + grid.len(), "{table}");
        for s in &grid {
            assert!(table.contains(&format!("| {} |", s.name)), "{}", s.name);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// The fixed-order merge contract at the artifact level: for a
        /// random job count and a random sub-batch of grid cells, every
        /// rendered byte — metrics artifact and baseline alike — matches
        /// the serial run once the host-wall self-metrics (the only
        /// legitimately nondeterministic members) are scrubbed.
        fn rendered_artifacts_are_jobs_invariant(
            jobs in 2usize..=8,
            mask in 1u32..(1 << 12),
        ) {
            let pick = || {
                grid_cases()
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, case)| case)
                    .collect::<Vec<_>>()
            };
            let mut serial = run_cases(pick(), 1);
            let mut parallel = run_cases(pick(), jobs);
            for s in serial.iter_mut().chain(parallel.iter_mut()) {
                s.report.sim = agnn_serve::SimPerf::default();
            }
            prop_assert_eq!(render_json(&serial), render_json(&parallel));
            prop_assert_eq!(
                render_baseline_json(&serial),
                render_baseline_json(&parallel)
            );
            prop_assert_eq!(
                render_timing_table(&serial),
                render_timing_table(&parallel)
            );
        }
    }
}

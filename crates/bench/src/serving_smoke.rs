//! The seeded serving scenario sweep behind CI's `bench-smoke` job.
//!
//! Four scenarios, ~6 000 requests each (well under a second of wall
//! clock). The first three replay the same drift-heavy, offset-diurnal
//! trace:
//!
//! 1. `single_board_reconfig_aware` — the PR 1 baseline: one VPK180,
//!    reconfig-aware dispatch;
//! 2. `pool4_least_loaded` — four boards, utilization-greedy placement
//!    (drains fast, still thrashes the ICAP);
//! 3. `pool4_bitstream_affine` — four boards with bitstream-affine
//!    placement, a configuration the perf gate protects.
//!
//! The fourth guards the staged pipeline:
//!
//! 4. `pipelined_drift` — four boards in `overlap` mode on a
//!    memory-pressured mix (six Taobao-scale regions whose graphs outgrow
//!    each board's DRAM, so LRU eviction forces recurring cold
//!    re-uploads). The gate protects the overlap-mode tail and reconfig
//!    count, so a regression in the DMA/fabric pipeline fails CI.
//!
//! [`render_json`] emits the deterministic `BENCH_serving.json` document
//! (scenario rows also carry the per-stage report, the pipeline-overlap
//! ratio and the eviction count); [`crate::perfgate`] compares its
//! `scenarios[].p99_secs` and `scenarios[].reconfigs` against the
//! checked-in baseline and ignores keys it does not know.

use agnn_graph::datasets::Dataset;
use agnn_serve::metrics::{json_f64, json_str};
use agnn_serve::pool::PlacementPolicy;
use agnn_serve::sim::{simulate, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::TrafficReport;

/// Deployment seed of the sweep (fixed: the artifact must be reproducible).
pub const SMOKE_SEED: u64 = 4_242;
/// Offered load per scenario.
pub const SMOKE_REQUESTS: u64 = 6_000;

/// One scenario of the sweep.
#[derive(Debug)]
pub struct Scenario {
    /// Stable scenario identifier — the gate joins baseline and run on it.
    pub name: &'static str,
    /// Pool size.
    pub boards: usize,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// The simulation report.
    pub report: TrafficReport,
}

/// The drift-heavy trace: three tenants with offset diurnal peaks, so the
/// dominant tenant — and the cost-model-optimal bitstream — rotates.
fn smoke_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

/// The memory-pressured trace behind `pipelined_drift`
/// ([`TenantSpec::taobao_regions`]): six Taobao-scale e-commerce regions
/// whose combined working set outgrows a board's ~15 GB DRAM budget, so
/// LRU eviction forces recurring cold re-uploads — the ingest traffic the
/// pipelined scheduler hides behind fabric compute.
fn pressured_tenants() -> Vec<TenantSpec> {
    TenantSpec::taobao_regions(4.0, 900.0)
}

/// Runs the full sweep (deterministic in [`SMOKE_SEED`]).
pub fn run_sweep() -> Vec<Scenario> {
    let base = ServeConfig {
        seed: SMOKE_SEED,
        total_requests: SMOKE_REQUESTS,
        queue_capacity: 512,
        ..ServeConfig::reconfig_aware()
    };
    let cases = [
        (
            "single_board_reconfig_aware",
            1,
            PlacementPolicy::LeastLoaded,
            false,
        ),
        ("pool4_least_loaded", 4, PlacementPolicy::LeastLoaded, false),
        (
            "pool4_bitstream_affine",
            4,
            PlacementPolicy::BitstreamAffine,
            false,
        ),
        ("pipelined_drift", 4, PlacementPolicy::LeastLoaded, true),
    ];
    cases
        .into_iter()
        .map(|(name, boards, placement, overlap)| Scenario {
            name,
            boards,
            placement,
            report: simulate(
                if overlap {
                    pressured_tenants()
                } else {
                    smoke_tenants()
                },
                ServeConfig {
                    boards,
                    placement,
                    overlap,
                    ..base
                },
            ),
        })
        .collect()
}

/// Renders the sweep as the `BENCH_serving.json` document: a scenario
/// array whose `name`/`p99_secs` members feed the perf gate, each carrying
/// the full per-tenant/per-board report for trajectory archaeology.
pub fn render_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            let overall = s.report.overall_latency();
            format!(
                concat!(
                    "{{\"name\":{name},\"boards\":{boards},",
                    "\"placement\":{placement},\"p50_secs\":{p50},",
                    "\"p99_secs\":{p99},\"reconfigs\":{reconfigs},",
                    "\"completed\":{completed},\"dropped\":{dropped},",
                    "\"pipeline_overlap_ratio\":{overlap_ratio},",
                    "\"evictions\":{evictions},",
                    "\"report\":{report}}}"
                ),
                name = json_str(s.name),
                boards = s.boards,
                placement = json_str(s.placement.name()),
                p50 = json_f64(overall.quantile(0.50)),
                p99 = json_f64(overall.quantile(0.99)),
                reconfigs = s.report.reconfigs,
                completed = s.report.completed(),
                dropped = s.report.dropped(),
                overlap_ratio = json_f64(s.report.pipeline_overlap_ratio()),
                evictions = s.report.evictions(),
                report = s.report.to_json(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"schema\":\"agnn-bench-serving/v2\",\"seed\":{seed},",
            "\"total_requests\":{requests},\"scenarios\":[{rows}]}}"
        ),
        seed = SMOKE_SEED,
        requests = SMOKE_REQUESTS,
        rows = rows.join(",")
    )
}

/// Renders only the gate schema (`scenarios[].name` / `p99_secs` /
/// `reconfigs`) — the compact form checked in as the baseline.
pub fn render_baseline_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "\n  {{\"name\":{},\"p99_secs\":{},\"reconfigs\":{}}}",
                json_str(s.name),
                json_f64(s.report.overall_latency().quantile(0.99)),
                s.report.reconfigs,
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"agnn-bench-serving-baseline/v1\",\"seed\":{},\"scenarios\":[{}\n]}}\n",
        SMOKE_SEED,
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfgate;

    #[test]
    fn sweep_is_deterministic_and_json_parses() {
        let a = run_sweep();
        let b = run_sweep();
        assert_eq!(render_json(&a), render_json(&b), "byte-identical artifacts");
        let doc = perfgate::parse(&render_json(&a)).expect("artifact parses");
        assert_eq!(
            doc.get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map(<[perfgate::Json]>::len),
            Some(4)
        );
        let baseline = perfgate::parse(&render_baseline_json(&a)).expect("baseline parses");
        // A run always passes the gate against its own baseline.
        let outcome = perfgate::gate_p99(&baseline, &doc, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    #[test]
    fn pipelined_scenario_actually_pipelines() {
        let sweep = run_sweep();
        let pipelined = sweep
            .iter()
            .find(|s| s.name == "pipelined_drift")
            .expect("pipelined_drift scenario");
        assert!(
            pipelined.report.pipeline_overlap_ratio() > 0.2,
            "the gated scenario must exercise DMA/fabric overlap, got {}",
            pipelined.report.pipeline_overlap_ratio()
        );
        assert!(
            pipelined.report.evictions() > 100,
            "the memory-pressured mix must thrash DRAM, got {} evictions",
            pipelined.report.evictions()
        );
        // Serial scenarios never report pipeline activity.
        for s in sweep.iter().filter(|s| s.name != "pipelined_drift") {
            assert_eq!(s.report.pipeline_overlap_ratio(), 0.0, "{}", s.name);
        }
    }

    #[test]
    fn affine_pool_dominates_the_single_board_in_the_sweep() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let single = by_name("single_board_reconfig_aware");
        let affine = by_name("pool4_bitstream_affine");
        assert!(
            affine.report.reconfigs < single.report.reconfigs,
            "the gated configuration must hold its headline: {} vs {}",
            affine.report.reconfigs,
            single.report.reconfigs
        );
        assert!(
            affine.report.overall_latency().quantile(0.99)
                < single.report.overall_latency().quantile(0.99)
        );
        // Every scenario faces the same offered load.
        for s in &sweep {
            assert_eq!(
                s.report.completed() + s.report.dropped(),
                SMOKE_REQUESTS,
                "{}",
                s.name
            );
        }
    }
}

//! The seeded serving scenario sweep behind CI's `bench-smoke` job.
//!
//! Five scenarios, ~6 000 requests each (well under a second of wall
//! clock). The first three replay the same drift-heavy, offset-diurnal
//! trace:
//!
//! 1. `single_board_reconfig_aware` — the PR 1 baseline: one VPK180,
//!    reconfig-aware dispatch;
//! 2. `pool4_least_loaded` — four boards, utilization-greedy placement
//!    (drains fast, still thrashes the ICAP);
//! 3. `pool4_bitstream_affine` — four boards with bitstream-affine
//!    placement, a configuration the perf gate protects.
//!
//! The remaining two guard the staged pipeline and cross-board migration:
//!
//! 4. `pipelined_drift` — four boards in `overlap` mode on a
//!    memory-pressured mix (six Taobao-scale regions whose graphs outgrow
//!    each board's DRAM, so LRU eviction forces recurring cold
//!    re-uploads). The gate protects the overlap-mode tail and reconfig
//!    count, so a regression in the DMA/fabric pipeline fails CI.
//! 5. `migration_drift` — the same memory-pressured trace with
//!    [`MigratePolicy::PeerRehydrate`]: evicted tenants rehydrate from
//!    peer boards over the PCIe switch instead of the host link. The gate
//!    protects its p99 **and its `host_upload_bytes`** — the byte saving
//!    is the scenario's whole point, so quietly re-uploading from the
//!    host again must fail CI even if the tail absorbs it.
//!
//! [`render_json`] emits the deterministic `BENCH_serving.json` document
//! (scenario rows also carry the per-stage report, the pipeline-overlap
//! ratio, eviction/migration counts and the switch/host byte split);
//! [`crate::perfgate`] compares its `scenarios[].p99_secs`,
//! `scenarios[].reconfigs` and `scenarios[].host_upload_bytes` against
//! the checked-in baseline and ignores keys it does not know.

use agnn_graph::datasets::Dataset;
use agnn_serve::metrics::{json_f64, json_str};
use agnn_serve::pool::{MigratePolicy, PlacementPolicy};
use agnn_serve::sim::{simulate, ServeConfig};
use agnn_serve::tenant::{ArrivalProcess, TenantSpec};
use agnn_serve::TrafficReport;

/// Deployment seed of the sweep (fixed: the artifact must be reproducible).
pub const SMOKE_SEED: u64 = 4_242;
/// Offered load per scenario.
pub const SMOKE_REQUESTS: u64 = 6_000;

/// One scenario of the sweep.
#[derive(Debug)]
pub struct Scenario {
    /// Stable scenario identifier — the gate joins baseline and run on it.
    pub name: &'static str,
    /// Pool size.
    pub boards: usize,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Cross-board migration policy.
    pub migrate: MigratePolicy,
    /// The simulation report.
    pub report: TrafficReport,
}

/// The drift-heavy trace: three tenants with offset diurnal peaks, so the
/// dominant tenant — and the cost-model-optimal bitstream — rotates.
fn smoke_tenants() -> Vec<TenantSpec> {
    let period = 600.0;
    let diurnal = |mean_rps: f64, phase_frac: f64| ArrivalProcess::Diurnal {
        mean_rps,
        amplitude: 0.9,
        period_secs: period,
        phase_secs: period * phase_frac,
    };
    let mut movies = TenantSpec::new("movies", Dataset::Movie, 0.0);
    movies.arrival = diurnal(12.0, 0.0);
    let mut feed = TenantSpec::new("feed", Dataset::StackOverflow, 0.0);
    feed.arrival = diurnal(12.0, 0.5);
    let mut fraud = TenantSpec::new("fraud", Dataset::Fraud, 0.0);
    fraud.arrival = diurnal(6.0, 0.25);
    vec![movies, feed, fraud]
}

/// The memory-pressured trace behind `pipelined_drift`
/// ([`TenantSpec::taobao_regions`]): six Taobao-scale e-commerce regions
/// whose combined working set outgrows a board's ~15 GB DRAM budget, so
/// LRU eviction forces recurring cold re-uploads — the ingest traffic the
/// pipelined scheduler hides behind fabric compute.
fn pressured_tenants() -> Vec<TenantSpec> {
    TenantSpec::taobao_regions(4.0, 900.0)
}

/// Runs the full sweep (deterministic in [`SMOKE_SEED`]).
pub fn run_sweep() -> Vec<Scenario> {
    let base = ServeConfig {
        seed: SMOKE_SEED,
        total_requests: SMOKE_REQUESTS,
        queue_capacity: 512,
        ..ServeConfig::reconfig_aware()
    };
    let cases = [
        (
            "single_board_reconfig_aware",
            1,
            PlacementPolicy::LeastLoaded,
            false,
            MigratePolicy::Off,
        ),
        (
            "pool4_least_loaded",
            4,
            PlacementPolicy::LeastLoaded,
            false,
            MigratePolicy::Off,
        ),
        (
            "pool4_bitstream_affine",
            4,
            PlacementPolicy::BitstreamAffine,
            false,
            MigratePolicy::Off,
        ),
        (
            "pipelined_drift",
            4,
            PlacementPolicy::LeastLoaded,
            true,
            MigratePolicy::Off,
        ),
        (
            "migration_drift",
            4,
            PlacementPolicy::LeastLoaded,
            true,
            // PeerRehydrate, deliberately: under LeastLoaded placement
            // there is no wait-for-affine-board state, so the SplitHot
            // overflow path can never fire — labeling the row split_hot
            // would advertise coverage the gate does not have. The split
            // path is pinned by `tests/serve_traffic.rs` instead.
            MigratePolicy::PeerRehydrate,
        ),
    ];
    cases
        .into_iter()
        .map(|(name, boards, placement, overlap, migrate)| Scenario {
            name,
            boards,
            placement,
            migrate,
            report: simulate(
                if overlap {
                    pressured_tenants()
                } else {
                    smoke_tenants()
                },
                ServeConfig {
                    boards,
                    placement,
                    overlap,
                    migrate,
                    ..base
                },
            ),
        })
        .collect()
}

/// Renders the sweep as the `BENCH_serving.json` document: a scenario
/// array whose `name`/`p99_secs` members feed the perf gate, each carrying
/// the full per-tenant/per-board report for trajectory archaeology.
pub fn render_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            let overall = s.report.overall_latency();
            format!(
                concat!(
                    "{{\"name\":{name},\"boards\":{boards},",
                    "\"placement\":{placement},\"migrate\":{migrate},",
                    "\"p50_secs\":{p50},",
                    "\"p99_secs\":{p99},\"reconfigs\":{reconfigs},",
                    "\"completed\":{completed},\"dropped\":{dropped},",
                    "\"pipeline_overlap_ratio\":{overlap_ratio},",
                    "\"evictions\":{evictions},",
                    "\"migrations\":{migrations},",
                    "\"switch_bytes\":{switch_bytes},",
                    "\"host_upload_bytes\":{host_upload_bytes},",
                    "\"report\":{report}}}"
                ),
                name = json_str(s.name),
                boards = s.boards,
                placement = json_str(s.placement.name()),
                migrate = json_str(s.migrate.name()),
                p50 = json_f64(overall.quantile(0.50)),
                p99 = json_f64(overall.quantile(0.99)),
                reconfigs = s.report.reconfigs,
                completed = s.report.completed(),
                dropped = s.report.dropped(),
                overlap_ratio = json_f64(s.report.pipeline_overlap_ratio()),
                evictions = s.report.evictions(),
                migrations = s.report.migrations(),
                switch_bytes = s.report.switch_bytes(),
                host_upload_bytes = s.report.host_upload_bytes(),
                report = s.report.to_json(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"schema\":\"agnn-bench-serving/v3\",\"seed\":{seed},",
            "\"total_requests\":{requests},\"scenarios\":[{rows}]}}"
        ),
        seed = SMOKE_SEED,
        requests = SMOKE_REQUESTS,
        rows = rows.join(",")
    )
}

/// Renders only the gate schema (`scenarios[].name` / `p99_secs` /
/// `reconfigs` / `host_upload_bytes`) — the compact form checked in as
/// the baseline.
pub fn render_baseline_json(scenarios: &[Scenario]) -> String {
    let rows: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "\n  {{\"name\":{},\"p99_secs\":{},\"reconfigs\":{},\"host_upload_bytes\":{}}}",
                json_str(s.name),
                json_f64(s.report.overall_latency().quantile(0.99)),
                s.report.reconfigs,
                s.report.host_upload_bytes(),
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"agnn-bench-serving-baseline/v2\",\"seed\":{},\"scenarios\":[{}\n]}}\n",
        SMOKE_SEED,
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfgate;

    #[test]
    fn sweep_is_deterministic_and_json_parses() {
        let a = run_sweep();
        let b = run_sweep();
        assert_eq!(render_json(&a), render_json(&b), "byte-identical artifacts");
        let doc = perfgate::parse(&render_json(&a)).expect("artifact parses");
        assert_eq!(
            doc.get("scenarios")
                .and_then(perfgate::Json::as_arr)
                .map(<[perfgate::Json]>::len),
            Some(5)
        );
        let baseline = perfgate::parse(&render_baseline_json(&a)).expect("baseline parses");
        // A run always passes the gate against its own baseline.
        let outcome = perfgate::gate_p99(&baseline, &doc, 0.20).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    #[test]
    fn pipelined_scenario_actually_pipelines() {
        let sweep = run_sweep();
        let pipelined = sweep
            .iter()
            .find(|s| s.name == "pipelined_drift")
            .expect("pipelined_drift scenario");
        assert!(
            pipelined.report.pipeline_overlap_ratio() > 0.2,
            "the gated scenario must exercise DMA/fabric overlap, got {}",
            pipelined.report.pipeline_overlap_ratio()
        );
        assert!(
            pipelined.report.evictions() > 100,
            "the memory-pressured mix must thrash DRAM, got {} evictions",
            pipelined.report.evictions()
        );
        // Serial scenarios never report pipeline activity.
        for s in sweep
            .iter()
            .filter(|s| !matches!(s.name, "pipelined_drift" | "migration_drift"))
        {
            assert_eq!(s.report.pipeline_overlap_ratio(), 0.0, "{}", s.name);
        }
    }

    #[test]
    fn migration_scenario_actually_migrates_and_saves_host_bytes() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let pipelined = by_name("pipelined_drift");
        let migrated = by_name("migration_drift");
        assert!(
            migrated.report.migrations() > 100,
            "the gated scenario must exercise peer rehydration, got {}",
            migrated.report.migrations()
        );
        assert!(
            (migrated.report.host_upload_bytes() as f64)
                < pipelined.report.host_upload_bytes() as f64 * 0.6,
            "migration must save >= 40 % of host upload bytes: {} vs {}",
            migrated.report.host_upload_bytes(),
            pipelined.report.host_upload_bytes(),
        );
        assert!(
            migrated.report.overall_latency().quantile(0.99)
                <= pipelined.report.overall_latency().quantile(0.99),
            "rehydration at switch bandwidth cannot hurt the tail"
        );
        // Every non-migration scenario stays off the switch.
        for s in sweep.iter().filter(|s| s.name != "migration_drift") {
            assert_eq!(s.report.migrations(), 0, "{}", s.name);
            assert_eq!(s.report.switch_bytes(), 0, "{}", s.name);
        }
    }

    #[test]
    fn affine_pool_dominates_the_single_board_in_the_sweep() {
        let sweep = run_sweep();
        let by_name = |n: &str| {
            sweep
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("scenario {n}"))
        };
        let single = by_name("single_board_reconfig_aware");
        let affine = by_name("pool4_bitstream_affine");
        assert!(
            affine.report.reconfigs < single.report.reconfigs,
            "the gated configuration must hold its headline: {} vs {}",
            affine.report.reconfigs,
            single.report.reconfigs
        );
        assert!(
            affine.report.overall_latency().quantile(0.99)
                < single.report.overall_latency().quantile(0.99)
        );
        // Every scenario faces the same offered load.
        for s in &sweep {
            assert_eq!(
                s.report.completed() + s.report.dropped(),
                SMOKE_REQUESTS,
                "{}",
                s.name
            );
        }
    }
}

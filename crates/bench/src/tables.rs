//! Tables I–IV.

use agnn_core::config::EvalSetup;
use agnn_cost::{CostModel, Workload};
use agnn_graph::datasets::Dataset;
use agnn_hw::{ScrConfig, UpeConfig};

use crate::banner;

/// Table I: the analytic cost functions, evaluated at the Table III
/// operating point so the formulas can be eyeballed.
pub fn table1() {
    banner("Table I: cost functions of GNN preprocessing tasks");
    println!("ordering : m = log2(e/w_upe) - 1 ; cycles = 2*m*e/(n_upe*w_upe)");
    println!("selecting: s = b*(k^(l+1)-1)/(k-1) ; cycles = s/n_upe");
    println!("reshaping: cycles = max(n/n_scr, e/w_scr)");
    let model = CostModel;
    let w = Workload::new(2_450_000, 123_000_000, 3_000, 10, 2); // AM
    let upe = UpeConfig::new(64, 64);
    let scr = ScrConfig::new(1, 8192);
    println!("\nevaluated on AM with (n_upe=64, w_upe=64, n_scr=1, w_scr=8192):");
    println!(
        "  ordering  {:>12.0} cycles",
        model.ordering_cycles(w.edges, upe)
    );
    println!(
        "  selecting {:>12.0} cycles  (s = {})",
        model.selecting_cycles(&w, upe),
        w.selections()
    );
    println!(
        "  reshaping {:>12.0} cycles",
        model.reshaping_cycles(w.nodes, w.edges, scr)
    );
}

/// Table II: the dataset catalog, plus verification that the synthetic
/// generators hit the paper's structural parameters.
pub fn table2() {
    banner("Table II: dataset characteristics (paper) vs generated instance");
    println!(
        "{:<4} {:<12} {:>12} {:>10} {:>8} | {:>10} {:>8}",
        "id", "category", "edges", "nodes", "deg", "gen-deg", "gen-max"
    );
    for d in Dataset::ALL {
        let spec = d.spec();
        let scale = d.scale_for_max_edges(200_000);
        let g = d.generate_scaled(scale, 7);
        let stats = g.degree_stats();
        println!(
            "{:<4} {:<12} {:>12} {:>10} {:>8.1} | {:>10.1} {:>8}",
            spec.abbrev,
            spec.category.to_string(),
            spec.edges,
            spec.nodes,
            spec.degree,
            g.average_degree(),
            stats.max
        );
    }
    println!("(generated at 1/scale size; `gen-deg` should track `deg`)");
}

/// Table III: the evaluation setup constants.
pub fn table3() {
    banner("Table III: evaluation setup");
    let setup = EvalSetup::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    println!(
        "GNN model     : 2-layer GraphSAGE (spec {:?})",
        setup.gnn.model
    );
    println!("selecting k   : {}", setup.k);
    println!("inf. nodes    : {}", setup.batch);
    println!("FPGA          : VPK180, {} LUTs", plan.total_luts());
    println!("SCR resource  : 30% ({} LUTs)", plan.scr_region_luts());
    println!(
        "UPE width     : 64 (region capacity {} instances)",
        plan.max_upe_count(64)
    );
    println!("SCR slots     : 1 (width {})", plan.max_scr_width(1));
}

/// Table IV: the baseline software algorithms and where they live.
pub fn table4() {
    banner("Table IV: baseline algorithms");
    println!("ordering   : radix sort          -> agnn_algo::ordering::order_edges_radix");
    println!("reshaping  : histogram hashing   -> agnn_algo::reshape::pointer_array_histogram");
    println!("selecting  : reservoir sampling  -> agnn_algo::select::reservoir_sample");
    println!("reindexing : histogram hashing   -> agnn_algo::reindex::reindex_hashmap");
}

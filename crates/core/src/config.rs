//! Evaluation setup constants (Table III).

use agnn_algo::pipeline::SampleParams;
use agnn_gnn::models::GnnSpec;

/// The Table III software configuration: DGL 2.3.0 semantics, 2-layer
/// GraphSAGE, `k = 10`, 3000 inference nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSetup {
    /// Neighbors sampled per node.
    pub k: usize,
    /// GNN layers.
    pub layers: u32,
    /// Inference (batch) nodes per pass.
    pub batch: usize,
    /// The GNN model under test.
    pub gnn: GnnSpec,
}

impl Default for EvalSetup {
    fn default() -> Self {
        EvalSetup {
            k: 10,
            layers: 2,
            batch: 3_000,
            gnn: GnnSpec::table_iii_default(),
        }
    }
}

impl EvalSetup {
    /// The sampling parameters this setup induces.
    pub fn sample_params(&self) -> SampleParams {
        SampleParams::new(self.k, self.layers)
    }

    /// Workload description for a graph of `nodes`/`edges`.
    pub fn workload(&self, nodes: u64, edges: u64) -> agnn_cost::Workload {
        agnn_cost::Workload::new(nodes, edges, self.batch as u64, self.k as u64, self.layers)
    }

    /// A scaled-down copy (for functional runs): divides the batch size,
    /// keeping `k` and layers.
    pub fn scaled_batch(&self, divisor: usize) -> EvalSetup {
        EvalSetup {
            batch: (self.batch / divisor.max(1)).max(1),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_gnn::models::GnnModel;

    #[test]
    fn defaults_match_table_iii() {
        let setup = EvalSetup::default();
        assert_eq!(setup.k, 10);
        assert_eq!(setup.layers, 2);
        assert_eq!(setup.batch, 3_000);
        assert_eq!(setup.gnn.model, GnnModel::GraphSage);
        assert_eq!(setup.gnn.layers, 2);
    }

    #[test]
    fn workload_carries_the_setup() {
        let w = EvalSetup::default().workload(1_000, 10_000);
        assert_eq!(w.batch, 3_000);
        assert_eq!(w.k, 10);
        assert_eq!(w.layers, 2);
    }

    #[test]
    fn scaled_batch_never_reaches_zero() {
        let s = EvalSetup::default().scaled_batch(1_000_000);
        assert_eq!(s.batch, 1);
        assert_eq!(s.k, 10, "k is preserved");
    }
}

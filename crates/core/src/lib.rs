//! The AutoGNN runtime and evaluation systems.
//!
//! This crate is the paper's contribution assembled as a library:
//!
//! - [`runtime`] — the AGNN-lib analog: a functional [`runtime::AutoGnn`]
//!   service that profiles incoming graphs, evaluates the Table I cost
//!   model over the bitstream library, partially reconfigures the simulated
//!   accelerator when the policy approves, orchestrates DMA transfers and
//!   runs end-to-end preprocessing (§V-B "Software architecture");
//! - [`systems`] — the seven compared systems of Fig. 18 (`CPU`, `GPU`,
//!   `GSamp`, `FPGA`, `AutoPre`, `StatPre`, `DynPre`) evaluated analytically
//!   at full Table II scale;
//! - [`scenario`] — the dynamic-graph studies: task-share drift (Fig. 7),
//!   consecutive diverse graphs (Fig. 28), long-horizon growth (Fig. 30)
//!   and mixed edges (Fig. 31);
//! - [`config`] — the Table III evaluation setup constants.
//!
//! # Examples
//!
//! ```
//! use agnn_core::runtime::AutoGnn;
//! use agnn_algo::pipeline::SampleParams;
//! use agnn_graph::{generate, Vid};
//!
//! let mut service = AutoGnn::new(SampleParams::new(5, 2));
//! let coo = generate::power_law(300, 3_000, 0.8, 1);
//! let record = service.serve(&coo, &[Vid(0), Vid(1)], 42);
//! assert!(record.stage_secs.total() > 0.0);
//! ```

pub mod config;
pub mod runtime;
pub mod scenario;
pub mod systems;

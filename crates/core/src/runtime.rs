//! The AGNN-lib analog: a functional AutoGNN service.
//!
//! §V-B "Software architecture": AGNN-lib manages graph I/O, decides
//! hardware reconfiguration from the cost model, and drives the accelerator
//! through preprocessing. This runtime does all three against the
//! *functional* simulator, so every served request returns a real sampled
//! subgraph plus the timing a VPK180 deployment would exhibit.

use agnn_algo::pipeline::{PreprocessOutput, SampleParams, SampledSubgraph};
use agnn_cost::{BitstreamLibrary, CostModel, ReconfigPolicy, Workload};
use agnn_devices::fpga::FpgaModel;
use agnn_devices::{ServiceStageSecs, StageSecs};
use agnn_graph::{Coo, Vid};
use agnn_hw::engine::{AutoGnnEngine, ReconfigEvent};
use agnn_hw::floorplan::Floorplan;
use agnn_hw::kernel::Fidelity;
use agnn_hw::shell::{PcieModel, PcieSwitchModel};
use agnn_hw::HwConfig;

/// The lifecycle stages of one served request (§II-B's staged flow:
/// upload, preprocessing, subgraph hand-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStage {
    /// Host→device graph-delta upload (DMA-main).
    Ingest,
    /// Fabric preprocessing: ordering, reshaping, selection, reindexing.
    Preprocess,
    /// Subgraph hand-off to the GPU (DMA-bypass) that kicks off inference.
    Compute,
}

impl ServiceStage {
    /// Stable lowercase identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceStage::Ingest => "ingest",
            ServiceStage::Preprocess => "preprocess",
            ServiceStage::Compute => "compute",
        }
    }
}

/// The board resource a lifecycle stage occupies. The PCIe DMA engines and
/// the reconfigurable fabric run independently, so a scheduler can overlap
/// one request's [`StageResource::Dma`] stage with another's
/// [`StageResource::Fabric`] stage on the same board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageResource {
    /// The PCIe DMA engine pair (one transfer in flight at a time).
    Dma,
    /// The reconfigurable fabric (UPE + SCR regions).
    Fabric,
}

impl StageResource {
    /// Stable lowercase identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StageResource::Dma => "dma",
            StageResource::Fabric => "fabric",
        }
    }
}

/// One completed lifecycle stage: what ran, on which resource, for how
/// long. The staged entry points ([`AutoGnn::ingest`],
/// [`AutoGnn::preprocess`], [`AutoGnn::compute`]) each return one; a
/// serial [`AutoGnn::serve`] is their back-to-back sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Which lifecycle stage ran.
    pub stage: ServiceStage,
    /// The board resource it occupied.
    pub resource: StageResource,
    /// Wall-clock seconds it occupied that resource.
    pub secs: f64,
}

/// Result of the [`AutoGnn::preprocess`] stage: the functional product
/// plus the fabric occupancy it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessRun {
    /// The preprocessing product — identical to the software pipeline's.
    pub output: PreprocessOutput,
    /// Per-task fabric seconds (ordering/reshaping/selecting/reindexing).
    pub stage_secs: StageSecs,
}

impl PreprocessRun {
    /// The stage summary (`Preprocess` on `Fabric` for
    /// `stage_secs.total()`), derived so it can never disagree with the
    /// per-task breakdown.
    pub fn record(&self) -> StageRecord {
        StageRecord {
            stage: ServiceStage::Preprocess,
            resource: StageResource::Fabric,
            secs: self.stage_secs.total(),
        }
    }
}

/// One served preprocessing request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// The sampled subgraph and workload counters.
    pub output: PreprocessOutput,
    /// Per-stage preprocessing seconds on the accelerator.
    pub stage_secs: StageSecs,
    /// Host→AutoGNN upload seconds (incremental: only the graph delta).
    pub upload_secs: f64,
    /// AutoGNN→GPU subgraph transfer seconds.
    pub download_secs: f64,
    /// Reconfiguration applied before this request, if any.
    pub reconfig: Option<ReconfigEvent>,
    /// Configuration that served the request.
    pub config: HwConfig,
}

impl ServiceRecord {
    /// Total service-side seconds for this request.
    pub fn total_secs(&self) -> f64 {
        self.stage_secs.total()
            + self.upload_secs
            + self.download_secs
            + self.reconfig.map_or(0.0, |r| r.seconds)
    }

    /// The request as its staged timeline, in lifecycle order. The
    /// reconfiguration stall (if any) precedes the first stage and is not
    /// a stage itself — schedulers account for it at fabric acquisition.
    pub fn stages(&self) -> [StageRecord; 3] {
        [
            StageRecord {
                stage: ServiceStage::Ingest,
                resource: StageResource::Dma,
                secs: self.upload_secs,
            },
            StageRecord {
                stage: ServiceStage::Preprocess,
                resource: StageResource::Fabric,
                secs: self.stage_secs.total(),
            },
            StageRecord {
                stage: ServiceStage::Compute,
                resource: StageResource::Dma,
                secs: self.download_secs,
            },
        ]
    }
}

/// What the cost model would do with a workload before it is served: the
/// current configuration, the library optimum, and whether the policy
/// clears the reconfiguration threshold. Serving layers (`agnn-serve`) use
/// this to schedule requests *around* reconfigurations instead of paying
/// them blindly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigPreview {
    /// Configuration currently programmed on the accelerator.
    pub current: HwConfig,
    /// Best configuration in the bitstream library for the workload.
    pub best: HwConfig,
    /// Whether [`ReconfigPolicy`] would approve switching to `best`.
    pub would_reconfigure: bool,
}

/// The AutoGNN service: engine + bitstream library + cost model + policy.
#[derive(Debug)]
pub struct AutoGnn {
    engine: AutoGnnEngine,
    library: BitstreamLibrary,
    policy: ReconfigPolicy,
    fpga: FpgaModel,
    params: SampleParams,
}

impl AutoGnn {
    /// A service on the default VPK180 with Table III sampling parameters.
    pub fn new(params: SampleParams) -> Self {
        Self::with_fidelity(params, Fidelity::Fast)
    }

    /// A service with explicit simulation fidelity.
    pub fn with_fidelity(params: SampleParams, fidelity: Fidelity) -> Self {
        let plan = Floorplan::vpk180();
        AutoGnn {
            engine: AutoGnnEngine::with_fidelity(HwConfig::vpk180_default(), fidelity),
            library: BitstreamLibrary::for_floorplan(&plan),
            policy: ReconfigPolicy::default(),
            fpga: FpgaModel::default(),
            params,
        }
    }

    /// A service with an explicit reconfiguration policy — serving layers
    /// that build board fleets set the deployment threshold in one call.
    pub fn with_policy(params: SampleParams, policy: ReconfigPolicy) -> Self {
        let mut service = Self::new(params);
        service.policy = policy;
        service
    }

    /// A pristine peer board: same sampling parameters, policy and
    /// fidelity, but factory-fresh hardware state (default bitstream, no
    /// resident graph). Board pools fork one configured runtime into N
    /// independent reconfiguration decision points.
    pub fn fork(&self) -> Self {
        let mut peer = Self::with_fidelity(self.params, self.engine.fidelity());
        peer.policy = self.policy;
        peer
    }

    /// Current hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.engine.config()
    }

    /// The sampling parameters served.
    pub fn params(&self) -> SampleParams {
        self.params
    }

    /// The reconfiguration policy in force.
    pub fn policy(&self) -> ReconfigPolicy {
        self.policy
    }

    /// Replaces the reconfiguration policy (serving layers tune the
    /// threshold per deployment).
    pub fn set_policy(&mut self, policy: ReconfigPolicy) {
        self.policy = policy;
    }

    /// The pre-compiled bitstream library the cost model searches.
    pub fn library(&self) -> &BitstreamLibrary {
        &self.library
    }

    /// Previews the reconfiguration decision for `workload` without
    /// touching the hardware: what the cost model would pick and whether
    /// the policy would approve the switch.
    pub fn preview(&self, workload: &Workload) -> ReconfigPreview {
        let current = self.engine.config();
        let best = CostModel.choose_config(workload, &self.library);
        ReconfigPreview {
            current,
            best,
            would_reconfigure: self.policy.should_reconfigure(workload, current, best),
        }
    }

    /// Reprograms the accelerator to `config` unconditionally, returning
    /// the event. Scheduling layers that batch same-bitstream requests use
    /// this to reconfigure once per batch instead of once per request.
    pub fn force_reconfigure(&mut self, config: HwConfig) -> ReconfigEvent {
        self.engine.reconfigure(config)
    }

    /// Analytic per-stage preprocessing seconds for `workload` under the
    /// *current* configuration — the price of one request without running
    /// functional preprocessing, so serving simulators can replay hundreds
    /// of thousands of requests cheaply.
    pub fn analytic_stage_secs(&self, workload: &Workload) -> StageSecs {
        let report = self.fpga.analytic_report(workload, self.engine.config());
        self.fpga.stage_secs(&report)
    }

    /// Analytic per-*lifecycle*-stage seconds for `workload` under the
    /// current configuration, with `delta_bytes` still to upload: the
    /// staged counterpart of [`AutoGnn::analytic_stage_secs`]. Serving
    /// simulators schedule each leg against its own board resource
    /// (ingest and compute on the DMA engines, preprocess on the fabric).
    pub fn analytic_service_secs(&self, workload: &Workload, delta_bytes: u64) -> ServiceStageSecs {
        self.fpga
            .service_secs(workload, self.engine.config(), &self.pcie(), delta_bytes)
    }

    /// The PCIe link model of this board's shell — upload and hand-off
    /// pricing routes through it per stage.
    pub fn pcie(&self) -> PcieModel {
        self.engine.shell().pcie
    }

    /// The board-to-board PCIe switch model of this board's shell —
    /// cross-board graph migrations price their transfers through it.
    pub fn pcie_switch(&self) -> PcieSwitchModel {
        self.engine.shell().pcie_switch
    }

    /// Device-DRAM bytes available for resident graphs (bitstream staging
    /// is already carved out, §V-B). Board pools bound per-board tenant
    /// residency against this.
    pub fn dram_graph_capacity(&self) -> u64 {
        self.engine.shell().dram.capacity
    }

    /// The cost-model workload `coo` and `batch` present under this
    /// service's sampling parameters — the lightweight profile of §V-B.
    pub fn workload_of(&self, coo: &Coo, batch: &[Vid]) -> Workload {
        Workload::new(
            coo.num_vertices() as u64,
            coo.num_edges() as u64,
            batch.len() as u64,
            self.params.k as u64,
            self.params.layers,
        )
    }

    /// Lifecycle stage 1 — **ingest**: streams the graph delta into device
    /// DRAM over DMA-main (the shell tracks residency, so a warm graph
    /// costs nothing). Occupies the [`StageResource::Dma`] engine only;
    /// the fabric is free to preprocess a previous batch while the delta
    /// lands in the second staging buffer
    /// ([`agnn_hw::shell::DELTA_BUFFERS`]).
    pub fn ingest(&mut self, coo: &Coo) -> StageRecord {
        let (upload_secs, _moved) = self.engine.shell_mut().upload_graph(coo.byte_size());
        StageRecord {
            stage: ServiceStage::Ingest,
            resource: StageResource::Dma,
            secs: upload_secs,
        }
    }

    /// Lifecycle stage 1, migration variant — **ingest from a peer
    /// board**: the first `peer_resident_bytes` of the graph stream in
    /// from a peer board's DRAM over the PCIe switch, and only growth the
    /// peer never saw re-crosses the host link. Occupies this board's
    /// [`StageResource::Dma`] engine for the whole record (the peer's DMA
    /// engine is occupied for the switch leg — schedulers price that on
    /// the source board).
    pub fn ingest_from_peer(&mut self, coo: &Coo, peer_resident_bytes: u64) -> StageRecord {
        let (secs, _switch, _host) = self
            .engine
            .shell_mut()
            .upload_graph_from_peer(coo.byte_size(), peer_resident_bytes);
        StageRecord {
            stage: ServiceStage::Ingest,
            resource: StageResource::Dma,
            secs,
        }
    }

    /// Lifecycle stage 2 — **preprocess**: runs the fully automated
    /// preprocessing workflow on the fabric and returns the functional
    /// output with its per-task timing. Occupies
    /// [`StageResource::Fabric`].
    pub fn preprocess(&mut self, coo: &Coo, batch: &[Vid], seed: u64) -> PreprocessRun {
        let run = self.engine.preprocess(coo, batch, &self.params, seed);
        PreprocessRun {
            output: run.output,
            stage_secs: self.fpga.stage_secs(&run.report),
        }
    }

    /// Lifecycle stage 3 — **compute**: ships the preprocessed subgraph to
    /// the GPU over DMA-bypass, kicking off model inference. Occupies
    /// [`StageResource::Dma`].
    pub fn compute(&mut self, subgraph: &SampledSubgraph) -> StageRecord {
        StageRecord {
            stage: ServiceStage::Compute,
            resource: StageResource::Dma,
            secs: self.engine.shell().download_subgraph(subgraph.byte_size()),
        }
    }

    /// Serves one preprocessing request end to end: profiles the graph,
    /// reconfigures if the cost model predicts a worthwhile gain, then
    /// runs the staged lifecycle ([`ingest`](AutoGnn::ingest) →
    /// [`preprocess`](AutoGnn::preprocess) → [`compute`](AutoGnn::compute))
    /// back to back. This is the serial wrapper: pipelined serving layers
    /// call the stages directly and schedule them against per-board
    /// resources.
    pub fn serve(&mut self, coo: &Coo, batch: &[Vid], seed: u64) -> ServiceRecord {
        // 1. Profile: lightweight metadata only (§V-B).
        let workload = self.workload_of(coo, batch);

        // 2. Cost evaluation + reconfiguration decision.
        let preview = self.preview(&workload);
        let reconfig = preview
            .would_reconfigure
            .then(|| self.engine.reconfigure(preview.best));

        // 3–5. The staged lifecycle, serially.
        let ingest = self.ingest(coo);
        let run = self.preprocess(coo, batch, seed);
        let compute = self.compute(&run.output.subgraph);

        ServiceRecord {
            output: run.output,
            stage_secs: run.stage_secs,
            upload_secs: ingest.secs,
            download_secs: compute.secs,
            reconfig,
            config: self.engine.config(),
        }
    }

    /// Forgets the resident graph (e.g. switching tenants).
    pub fn evict_graph(&mut self) {
        self.engine.shell_mut().evict_graph();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::generate;

    fn batch(n: u32) -> Vec<Vid> {
        (0..n).map(Vid).collect()
    }

    #[test]
    fn serve_returns_software_identical_output() {
        let coo = generate::power_law(400, 5_000, 0.9, 3);
        let mut service = AutoGnn::new(SampleParams::new(5, 2));
        let record = service.serve(&coo, &batch(8), 77);
        let expected =
            agnn_algo::pipeline::preprocess(&coo, &batch(8), &SampleParams::new(5, 2), 77);
        assert_eq!(record.output, expected);
        assert!(record.total_secs() > 0.0);
    }

    #[test]
    fn second_pass_uploads_nothing_new() {
        let coo = generate::power_law(300, 4_000, 0.8, 4);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        assert!(first.upload_secs > 0.0, "cold start uploads the graph");
        let second = service.serve(&coo, &batch(4), 2);
        assert_eq!(second.upload_secs, 0.0, "resident graph needs no upload");
    }

    #[test]
    fn growing_graph_uploads_only_the_delta() {
        let mut coo = generate::power_law(300, 4_000, 0.8, 5);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        let added = generate::incremental_edges(&coo, 400, 0.5, 9);
        coo.extend_edges(added).unwrap();
        let second = service.serve(&coo, &batch(4), 2);
        assert!(second.upload_secs > 0.0);
        assert!(
            second.upload_secs < first.upload_secs,
            "delta is smaller than the initial upload"
        );
    }

    #[test]
    fn eviction_forces_full_reupload() {
        let coo = generate::power_law(300, 4_000, 0.8, 6);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        service.evict_graph();
        let again = service.serve(&coo, &batch(4), 2);
        assert!((again.upload_secs - first.upload_secs).abs() < 1e-12);
    }

    #[test]
    fn reconfiguration_happens_at_most_once_for_a_stable_graph() {
        let coo = generate::power_law(500, 20_000, 1.0, 7);
        let mut service = AutoGnn::new(SampleParams::new(10, 2));
        let first = service.serve(&coo, &batch(16), 1);
        let second = service.serve(&coo, &batch(16), 2);
        // Whatever the first decision was, the second pass sees an already
        // optimal configuration.
        assert!(second.reconfig.is_none());
        assert_eq!(first.config, second.config);
    }

    #[test]
    fn fork_yields_a_pristine_peer_with_the_same_policy() {
        let coo = generate::power_law(400, 8_000, 0.9, 9);
        let mut original = AutoGnn::with_policy(
            SampleParams::new(5, 2),
            agnn_cost::ReconfigPolicy { min_gain: 0.42 },
        );
        original.serve(&coo, &batch(8), 1); // dirty: resident graph, maybe reconfigured
        let mut peer = original.fork();
        assert_eq!(peer.policy(), original.policy());
        assert_eq!(peer.params(), original.params());
        assert_eq!(peer.config(), HwConfig::vpk180_default(), "fresh bitstream");
        let first = peer.serve(&coo, &batch(8), 1);
        assert!(first.upload_secs > 0.0, "no resident graph inherited");
    }

    #[test]
    fn staged_lifecycle_reproduces_serve_exactly() {
        let coo = generate::power_law(400, 6_000, 0.9, 12);
        let params = SampleParams::new(5, 2);
        let mut serial = AutoGnn::new(params);
        let record = serial.serve(&coo, &batch(8), 5);

        // Drive the stages by hand on a fresh peer, mirroring serve().
        let mut staged = AutoGnn::new(params);
        let workload = staged.workload_of(&coo, &batch(8));
        let preview = staged.preview(&workload);
        let reconfig = preview
            .would_reconfigure
            .then(|| staged.force_reconfigure(preview.best));
        let ingest = staged.ingest(&coo);
        let run = staged.preprocess(&coo, &batch(8), 5);
        let compute = staged.compute(&run.output.subgraph);

        assert_eq!(run.output, record.output);
        assert_eq!(ingest.secs, record.upload_secs);
        assert_eq!(run.stage_secs, record.stage_secs);
        assert_eq!(compute.secs, record.download_secs);
        assert_eq!(reconfig, record.reconfig);
        let total: f64 =
            ingest.secs + run.record().secs + compute.secs + reconfig.map_or(0.0, |r| r.seconds);
        assert!((total - record.total_secs()).abs() < 1e-15);
    }

    #[test]
    fn stage_records_carry_their_resources() {
        let coo = generate::power_law(300, 3_000, 0.8, 13);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let record = service.serve(&coo, &batch(4), 1);
        let stages = record.stages();
        assert_eq!(stages[0].stage, ServiceStage::Ingest);
        assert_eq!(stages[0].resource, StageResource::Dma);
        assert_eq!(stages[1].stage, ServiceStage::Preprocess);
        assert_eq!(stages[1].resource, StageResource::Fabric);
        assert_eq!(stages[2].stage, ServiceStage::Compute);
        assert_eq!(stages[2].resource, StageResource::Dma);
        let staged_total: f64 = stages.iter().map(|s| s.secs).sum();
        let stall = record.reconfig.map_or(0.0, |r| r.seconds);
        assert!((staged_total + stall - record.total_secs()).abs() < 1e-15);
        assert_eq!(ServiceStage::Ingest.name(), "ingest");
        assert_eq!(StageResource::Fabric.name(), "fabric");
    }

    #[test]
    fn analytic_service_secs_splits_the_analytic_total() {
        let service = AutoGnn::new(SampleParams::new(10, 2));
        let workload = Workload::new(100_000, 2_000_000, 3_000, 10, 2);
        let staged = service.analytic_service_secs(&workload, workload.coo_bytes());
        assert_eq!(
            staged.preprocess,
            service.analytic_stage_secs(&workload),
            "fabric leg matches the flat analytic path"
        );
        assert_eq!(
            staged.ingest,
            service.pcie().transfer_secs(workload.coo_bytes())
        );
        let warm = service.analytic_service_secs(&workload, 0);
        assert_eq!(warm.ingest, 0.0);
        assert!(service.dram_graph_capacity() > workload.coo_bytes());
    }

    #[test]
    fn peer_ingest_is_cheaper_than_a_host_reupload() {
        let coo = generate::power_law(400, 8_000, 0.9, 14);
        let mut host = AutoGnn::new(SampleParams::new(4, 2));
        let cold = host.ingest(&coo);
        assert!(cold.secs > 0.0);

        // A peer that held the whole graph rehydrates over the switch.
        let mut peer = AutoGnn::new(SampleParams::new(4, 2));
        let migrated = peer.ingest_from_peer(&coo, coo.byte_size());
        assert_eq!(migrated.stage, ServiceStage::Ingest);
        assert_eq!(migrated.resource, StageResource::Dma);
        assert!(
            migrated.secs < cold.secs,
            "switch bandwidth must beat the host link: {} vs {}",
            migrated.secs,
            cold.secs
        );
        assert!(
            peer.pcie_switch().bandwidth > peer.pcie().bandwidth,
            "the peer path only exists because the switch fabric is faster"
        );
        // Rehydration leaves the graph resident: the next ingest is free.
        assert_eq!(peer.ingest(&coo).secs, 0.0);
    }

    #[test]
    fn service_is_deterministic_in_the_seed() {
        let coo = generate::power_law(300, 3_000, 0.8, 8);
        let mk = || {
            let mut s = AutoGnn::new(SampleParams::new(5, 2));
            s.serve(&coo, &batch(6), 42).output
        };
        assert_eq!(mk(), mk());
    }
}

//! The AGNN-lib analog: a functional AutoGNN service.
//!
//! §V-B "Software architecture": AGNN-lib manages graph I/O, decides
//! hardware reconfiguration from the cost model, and drives the accelerator
//! through preprocessing. This runtime does all three against the
//! *functional* simulator, so every served request returns a real sampled
//! subgraph plus the timing a VPK180 deployment would exhibit.

use agnn_algo::pipeline::{PreprocessOutput, SampleParams};
use agnn_cost::{BitstreamLibrary, CostModel, ReconfigPolicy, Workload};
use agnn_devices::fpga::FpgaModel;
use agnn_devices::StageSecs;
use agnn_graph::{Coo, Vid};
use agnn_hw::engine::{AutoGnnEngine, ReconfigEvent};
use agnn_hw::floorplan::Floorplan;
use agnn_hw::kernel::Fidelity;
use agnn_hw::HwConfig;

/// One served preprocessing request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// The sampled subgraph and workload counters.
    pub output: PreprocessOutput,
    /// Per-stage preprocessing seconds on the accelerator.
    pub stage_secs: StageSecs,
    /// Host→AutoGNN upload seconds (incremental: only the graph delta).
    pub upload_secs: f64,
    /// AutoGNN→GPU subgraph transfer seconds.
    pub download_secs: f64,
    /// Reconfiguration applied before this request, if any.
    pub reconfig: Option<ReconfigEvent>,
    /// Configuration that served the request.
    pub config: HwConfig,
}

impl ServiceRecord {
    /// Total service-side seconds for this request.
    pub fn total_secs(&self) -> f64 {
        self.stage_secs.total()
            + self.upload_secs
            + self.download_secs
            + self.reconfig.map_or(0.0, |r| r.seconds)
    }
}

/// What the cost model would do with a workload before it is served: the
/// current configuration, the library optimum, and whether the policy
/// clears the reconfiguration threshold. Serving layers (`agnn-serve`) use
/// this to schedule requests *around* reconfigurations instead of paying
/// them blindly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigPreview {
    /// Configuration currently programmed on the accelerator.
    pub current: HwConfig,
    /// Best configuration in the bitstream library for the workload.
    pub best: HwConfig,
    /// Whether [`ReconfigPolicy`] would approve switching to `best`.
    pub would_reconfigure: bool,
}

/// The AutoGNN service: engine + bitstream library + cost model + policy.
#[derive(Debug)]
pub struct AutoGnn {
    engine: AutoGnnEngine,
    library: BitstreamLibrary,
    policy: ReconfigPolicy,
    fpga: FpgaModel,
    params: SampleParams,
}

impl AutoGnn {
    /// A service on the default VPK180 with Table III sampling parameters.
    pub fn new(params: SampleParams) -> Self {
        Self::with_fidelity(params, Fidelity::Fast)
    }

    /// A service with explicit simulation fidelity.
    pub fn with_fidelity(params: SampleParams, fidelity: Fidelity) -> Self {
        let plan = Floorplan::vpk180();
        AutoGnn {
            engine: AutoGnnEngine::with_fidelity(HwConfig::vpk180_default(), fidelity),
            library: BitstreamLibrary::for_floorplan(&plan),
            policy: ReconfigPolicy::default(),
            fpga: FpgaModel::default(),
            params,
        }
    }

    /// A service with an explicit reconfiguration policy — serving layers
    /// that build board fleets set the deployment threshold in one call.
    pub fn with_policy(params: SampleParams, policy: ReconfigPolicy) -> Self {
        let mut service = Self::new(params);
        service.policy = policy;
        service
    }

    /// A pristine peer board: same sampling parameters, policy and
    /// fidelity, but factory-fresh hardware state (default bitstream, no
    /// resident graph). Board pools fork one configured runtime into N
    /// independent reconfiguration decision points.
    pub fn fork(&self) -> Self {
        let mut peer = Self::with_fidelity(self.params, self.engine.fidelity());
        peer.policy = self.policy;
        peer
    }

    /// Current hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.engine.config()
    }

    /// The sampling parameters served.
    pub fn params(&self) -> SampleParams {
        self.params
    }

    /// The reconfiguration policy in force.
    pub fn policy(&self) -> ReconfigPolicy {
        self.policy
    }

    /// Replaces the reconfiguration policy (serving layers tune the
    /// threshold per deployment).
    pub fn set_policy(&mut self, policy: ReconfigPolicy) {
        self.policy = policy;
    }

    /// The pre-compiled bitstream library the cost model searches.
    pub fn library(&self) -> &BitstreamLibrary {
        &self.library
    }

    /// Previews the reconfiguration decision for `workload` without
    /// touching the hardware: what the cost model would pick and whether
    /// the policy would approve the switch.
    pub fn preview(&self, workload: &Workload) -> ReconfigPreview {
        let current = self.engine.config();
        let best = CostModel.choose_config(workload, &self.library);
        ReconfigPreview {
            current,
            best,
            would_reconfigure: self.policy.should_reconfigure(workload, current, best),
        }
    }

    /// Reprograms the accelerator to `config` unconditionally, returning
    /// the event. Scheduling layers that batch same-bitstream requests use
    /// this to reconfigure once per batch instead of once per request.
    pub fn force_reconfigure(&mut self, config: HwConfig) -> ReconfigEvent {
        self.engine.reconfigure(config)
    }

    /// Analytic per-stage preprocessing seconds for `workload` under the
    /// *current* configuration — the price of one request without running
    /// functional preprocessing, so serving simulators can replay hundreds
    /// of thousands of requests cheaply.
    pub fn analytic_stage_secs(&self, workload: &Workload) -> StageSecs {
        let report = self.fpga.analytic_report(workload, self.engine.config());
        self.fpga.stage_secs(&report)
    }

    /// Serves one preprocessing request: profiles the graph, reconfigures
    /// if the cost model predicts a worthwhile gain, streams the graph
    /// delta in, preprocesses, and ships the subgraph out.
    pub fn serve(&mut self, coo: &Coo, batch: &[Vid], seed: u64) -> ServiceRecord {
        // 1. Profile: lightweight metadata only (§V-B).
        let workload = Workload::new(
            coo.num_vertices() as u64,
            coo.num_edges() as u64,
            batch.len() as u64,
            self.params.k as u64,
            self.params.layers,
        );

        // 2. Cost evaluation + reconfiguration decision.
        let preview = self.preview(&workload);
        let reconfig = preview
            .would_reconfigure
            .then(|| self.engine.reconfigure(preview.best));

        // 3. DMA-main upload (delta only; the engine's shell tracks
        // residency).
        let (upload_secs, _moved) = self.engine.shell_mut().upload_graph(coo.byte_size());

        // 4. Hardware preprocessing.
        let run = self.engine.preprocess(coo, batch, &self.params, seed);
        let stage_secs = self.fpga.stage_secs(&run.report);

        // 5. DMA-bypass subgraph hand-off to the GPU.
        let download_secs = self
            .engine
            .shell()
            .download_subgraph(run.output.subgraph.byte_size());

        ServiceRecord {
            output: run.output,
            stage_secs,
            upload_secs,
            download_secs,
            reconfig,
            config: self.engine.config(),
        }
    }

    /// Forgets the resident graph (e.g. switching tenants).
    pub fn evict_graph(&mut self) {
        self.engine.shell_mut().evict_graph();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::generate;

    fn batch(n: u32) -> Vec<Vid> {
        (0..n).map(Vid).collect()
    }

    #[test]
    fn serve_returns_software_identical_output() {
        let coo = generate::power_law(400, 5_000, 0.9, 3);
        let mut service = AutoGnn::new(SampleParams::new(5, 2));
        let record = service.serve(&coo, &batch(8), 77);
        let expected =
            agnn_algo::pipeline::preprocess(&coo, &batch(8), &SampleParams::new(5, 2), 77);
        assert_eq!(record.output, expected);
        assert!(record.total_secs() > 0.0);
    }

    #[test]
    fn second_pass_uploads_nothing_new() {
        let coo = generate::power_law(300, 4_000, 0.8, 4);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        assert!(first.upload_secs > 0.0, "cold start uploads the graph");
        let second = service.serve(&coo, &batch(4), 2);
        assert_eq!(second.upload_secs, 0.0, "resident graph needs no upload");
    }

    #[test]
    fn growing_graph_uploads_only_the_delta() {
        let mut coo = generate::power_law(300, 4_000, 0.8, 5);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        let added = generate::incremental_edges(&coo, 400, 0.5, 9);
        coo.extend_edges(added).unwrap();
        let second = service.serve(&coo, &batch(4), 2);
        assert!(second.upload_secs > 0.0);
        assert!(
            second.upload_secs < first.upload_secs,
            "delta is smaller than the initial upload"
        );
    }

    #[test]
    fn eviction_forces_full_reupload() {
        let coo = generate::power_law(300, 4_000, 0.8, 6);
        let mut service = AutoGnn::new(SampleParams::new(4, 2));
        let first = service.serve(&coo, &batch(4), 1);
        service.evict_graph();
        let again = service.serve(&coo, &batch(4), 2);
        assert!((again.upload_secs - first.upload_secs).abs() < 1e-12);
    }

    #[test]
    fn reconfiguration_happens_at_most_once_for_a_stable_graph() {
        let coo = generate::power_law(500, 20_000, 1.0, 7);
        let mut service = AutoGnn::new(SampleParams::new(10, 2));
        let first = service.serve(&coo, &batch(16), 1);
        let second = service.serve(&coo, &batch(16), 2);
        // Whatever the first decision was, the second pass sees an already
        // optimal configuration.
        assert!(second.reconfig.is_none());
        assert_eq!(first.config, second.config);
    }

    #[test]
    fn fork_yields_a_pristine_peer_with_the_same_policy() {
        let coo = generate::power_law(400, 8_000, 0.9, 9);
        let mut original = AutoGnn::with_policy(
            SampleParams::new(5, 2),
            agnn_cost::ReconfigPolicy { min_gain: 0.42 },
        );
        original.serve(&coo, &batch(8), 1); // dirty: resident graph, maybe reconfigured
        let mut peer = original.fork();
        assert_eq!(peer.policy(), original.policy());
        assert_eq!(peer.params(), original.params());
        assert_eq!(peer.config(), HwConfig::vpk180_default(), "fresh bitstream");
        let first = peer.serve(&coo, &batch(8), 1);
        assert!(first.upload_secs > 0.0, "no resident graph inherited");
    }

    #[test]
    fn service_is_deterministic_in_the_seed() {
        let coo = generate::power_law(300, 3_000, 0.8, 8);
        let mk = || {
            let mut s = AutoGnn::new(SampleParams::new(5, 2));
            s.serve(&coo, &batch(6), 42).output
        };
        assert_eq!(mk(), mk());
    }
}

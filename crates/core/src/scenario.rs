//! Dynamic-graph scenario engine (Figs. 7, 28, 30, 31).

use agnn_cost::SearchSpace;
use agnn_devices::fpga::FpgaModel;
use agnn_devices::StageSecs;
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;
use agnn_graph::dynamic::GrowthModel;
use agnn_hw::shell::IcapModel;
use agnn_hw::shell::ReconfigScope;

use crate::config::EvalSetup;
use crate::systems::{evaluate, SystemContext, SystemKind};

/// One point of the Fig. 7 task-share drift: day index plus the percentage
/// share of each preprocessing task and of inference in the GPU system's
/// end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayShares {
    /// Days since the start of the trace.
    pub day: u32,
    /// Shares in percent: ordering, reshaping, selecting, reindexing,
    /// inference. Sums to 100 unless the GPU OOMs (then all zero).
    pub shares: [f64; 5],
}

/// Fig. 7: the GPU system's latency shares as a dynamic graph grows at its
/// Table II daily rate.
///
/// # Panics
///
/// Panics if the dataset has no recorded growth rate.
pub fn task_share_series(dataset: Dataset, days: u32, step: u32, gnn: GnnSpec) -> Vec<DayShares> {
    let spec = dataset.spec();
    let rate = spec
        .daily_growth_pct
        .expect("dataset has no daily growth rate")
        / 100.0;
    // The trace covers the network's life around its Table II snapshot: the
    // day-0 graph is the early-life version (Table II size reached at the
    // horizon's midpoint), which is what lets Fig. 7 show Selecting
    // dominating young graphs before Reshaping takes over.
    let shrink = (1.0 + rate).powi(days as i32 / 2);
    let e0 = (spec.edges as f64 / shrink).max(1.0) as u64;
    let n0 = (spec.nodes as f64 / shrink).max(1.0) as u64;
    let growth = GrowthModel::new(e0, rate);
    let node_growth = GrowthModel::new(n0, rate);
    let setup = EvalSetup::default();
    let mut series = Vec::new();
    let mut day = 0;
    while day <= days {
        let edges = growth.edges_at(day);
        let nodes = node_growth.edges_at(day);
        let workload = setup.workload(nodes, edges);
        let ctx = SystemContext::new(workload, gnn);
        // Fig. 7 projects task *proportions* over years of growth, past the
        // point any single GPU could hold the graph, so use the ungated
        // time model.
        let p = ctx.gpu.preprocess_secs_unchecked(&workload);
        let inference = ctx.inference.analytic_inference_secs(
            &gnn,
            workload.subgraph_nodes(),
            workload.subgraph_edges(),
        ) + ctx.gpu.upload_secs(&workload);
        let total = p.total() + inference;
        let shares = [
            p.ordering / total * 100.0,
            p.reshaping / total * 100.0,
            p.selecting / total * 100.0,
            p.reindexing / total * 100.0,
            inference / total * 100.0,
        ];
        series.push(DayShares { day, shares });
        day += step;
    }
    series
}

/// One sample of the Fig. 28a throughput time-series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Seconds since the scenario start.
    pub time_secs: f64,
    /// Inference throughput, passes per second (0 during reconfiguration).
    pub inferences_per_sec: f64,
}

/// Result of the consecutive-graphs scenario (Fig. 28a).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsecutiveRun {
    /// Throughput samples over the scenario.
    pub series: Vec<ThroughputSample>,
    /// Total preprocessing seconds spent.
    pub total_preprocess_secs: f64,
}

/// Fig. 28a: serve `first` for `switch_at` seconds, then `second` until
/// `duration`; `reconfigurable` systems pay one ICAP event at the switch
/// and then run at the second graph's optimal configuration, while static
/// systems keep the first graph's configuration throughout.
pub fn consecutive_inference(
    first: Dataset,
    second: Dataset,
    switch_at: f64,
    duration: f64,
    reconfigurable: bool,
    gnn: GnnSpec,
) -> ConsecutiveRun {
    let setup = EvalSetup::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    let mk_ctx = |d: Dataset| {
        let spec = d.spec();
        SystemContext::new(setup.workload(spec.nodes, spec.edges), gnn)
    };
    let ctx_a = mk_ctx(first);
    let ctx_b = mk_ctx(second);
    let config_a = ctx_a.fpga.search(&ctx_a.workload, &plan, SearchSpace::Full);

    // Latency of one pass on each phase.
    let phase_a = evaluate(&ctx_a, SystemKind::DynPre); // optimal for A either way
    let phase_b = if reconfigurable {
        evaluate(&ctx_b, SystemKind::DynPre)
    } else {
        // Static: keep A's configuration on B's workload.
        let report = ctx_b.fpga.analytic_report(&ctx_b.workload, config_a);
        let preprocess = ctx_b.fpga.stage_secs(&report);
        let mut run = evaluate(&ctx_b, SystemKind::DynPre);
        run.preprocess = preprocess;
        run
    };
    let reconfig_stall = if reconfigurable {
        IcapModel::default().reconfig_secs(ReconfigScope::Both)
    } else {
        0.0
    };

    let mut series = Vec::new();
    let mut total_preprocess = 0.0;
    let step = duration / 300.0;
    let mut t = 0.0;
    while t <= duration {
        let (run, stalled) = if t < switch_at {
            (&phase_a, false)
        } else {
            (&phase_b, t < switch_at + reconfig_stall)
        };
        let throughput = if stalled { 0.0 } else { 1.0 / run.total_secs() };
        series.push(ThroughputSample {
            time_secs: t,
            inferences_per_sec: throughput,
        });
        if !stalled {
            // Fraction of this step spent preprocessing.
            let share = (run.preprocess.total() + run.transfer_secs) / run.total_secs();
            total_preprocess += step * share;
        }
        t += step;
    }
    ConsecutiveRun {
        series,
        total_preprocess_secs: total_preprocess,
    }
}

/// Fig. 28b / Fig. 31 graph pairs: `(label, a, b, same_category)`.
pub fn evaluation_pairs() -> Vec<(&'static str, Dataset, Dataset, bool)> {
    use Dataset::*;
    vec![
        ("AX_CL", Arxiv, Collab, true),
        ("YL_FR", Yelp, Fraud, true),
        ("RD_SO", Reddit, StackOverflow, true),
        ("SO_JR", StackOverflow, Journal, true),
        ("PH_RD", Physics, Reddit, false),
        ("AX_JR", Arxiv, Journal, false),
        ("FR_JR", Fraud, Journal, false),
        ("FR_AM", Fraud, Amazon, false),
    ]
}

/// Passes served per graph in the Fig. 28b pair scenario; the one-time
/// reconfiguration stall amortizes over this window.
pub const PAIR_PASSES: u32 = 500;

/// Preprocessing latency of serving graphs `a` then `b` for `PAIR_PASSES`
/// passes each (Fig. 28b): the fixed system keeps `a`'s optimal
/// configuration for both, the dynamic system reconfigures for `b` (paying
/// the ICAP stall once).
pub fn pair_preprocess_secs(a: Dataset, b: Dataset, dynamic: bool, gnn: GnnSpec) -> f64 {
    let setup = EvalSetup::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    let mk_ctx = |d: Dataset| {
        let spec = d.spec();
        SystemContext::new(setup.workload(spec.nodes, spec.edges), gnn)
    };
    let ctx_a = mk_ctx(a);
    let ctx_b = mk_ctx(b);
    let config_a = ctx_a.fpga.search(&ctx_a.workload, &plan, SearchSpace::Full);
    let per_pass_a = ctx_a
        .fpga
        .stage_secs(&ctx_a.fpga.analytic_report(&ctx_a.workload, config_a))
        .total();
    let per_pass_b_fixed = ctx_b
        .fpga
        .stage_secs(&ctx_b.fpga.analytic_report(&ctx_b.workload, config_a))
        .total();
    let secs_b = if dynamic {
        let config_b = ctx_b.fpga.search(&ctx_b.workload, &plan, SearchSpace::Full);
        let per_pass_b = ctx_b
            .fpga
            .stage_secs(&ctx_b.fpga.analytic_report(&ctx_b.workload, config_b))
            .total();
        let stall = IcapModel::default().reconfig_secs(ReconfigScope::Both);
        let saving = (per_pass_b_fixed - per_pass_b) * f64::from(PAIR_PASSES);
        if config_b != config_a && saving > stall {
            // Reconfigure: the predicted saving repays the ICAP stall.
            f64::from(PAIR_PASSES) * per_pass_b + stall
        } else {
            // The runtime declines the switch (§V-B threshold policy).
            f64::from(PAIR_PASSES) * per_pass_b_fixed
        }
    } else {
        f64::from(PAIR_PASSES) * per_pass_b_fixed
    };
    f64::from(PAIR_PASSES) * per_pass_a + secs_b
}

/// One point of the Fig. 30 long-horizon growth study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthPoint {
    /// Hours since the start.
    pub hour: u32,
    /// GPU end-to-end latency; `None` once the graph no longer fits.
    pub gpu_secs: Option<f64>,
    /// StatPre end-to-end latency (configuration fixed at hour 0).
    pub statpre_secs: f64,
    /// DynPre end-to-end latency (re-optimized as the graph grows).
    pub dynpre_secs: f64,
}

/// Fig. 30: an e-commerce graph whose "edge count and degree increase by
/// 112× and 9.2×" over the horizon; nodes therefore grow by 112/9.2 ≈ 12×.
pub fn growth_study(dataset: Dataset, hours: u32, samples: u32, gnn: GnnSpec) -> Vec<GrowthPoint> {
    assert!(samples > 1, "need at least two samples");
    let spec = dataset.spec();
    let setup = EvalSetup::default();
    let plan = agnn_hw::floorplan::Floorplan::vpk180();
    // Start from a down-scaled instance so the ×112 endpoint lands on the
    // full Table II size.
    let e0 = spec.edges / 112;
    let n0 = (spec.nodes as f64 / 12.2) as u64;
    let edge_rate = (112.0f64).powf(1.0 / f64::from(hours)) - 1.0;
    let node_rate = (12.2f64).powf(1.0 / f64::from(hours)) - 1.0;
    let edges = GrowthModel::new(e0, edge_rate);
    let nodes = GrowthModel::new(n0, node_rate);
    let initial = setup.workload(n0, e0);
    let stat_config = FpgaModel::default().search(&initial, &plan, SearchSpace::Full);

    let mut series = Vec::new();
    for i in 0..samples {
        let hour = hours * i / (samples - 1);
        let w = setup.workload(nodes.edges_at(hour), edges.edges_at(hour));
        let ctx = SystemContext::new(w, gnn);
        let gpu_run = evaluate(&ctx, SystemKind::Gpu);
        let stat_report = ctx.fpga.analytic_report(&w, stat_config);
        let stat_base = evaluate(&ctx, SystemKind::DynPre);
        let statpre = ctx.fpga.stage_secs(&stat_report).total()
            + stat_base.transfer_secs
            + stat_base.inference_secs;
        let dynpre = stat_base.total_secs();
        series.push(GrowthPoint {
            hour,
            gpu_secs: (!gpu_run.oom).then(|| gpu_run.total_secs()),
            statpre_secs: statpre,
            dynpre_secs: dynpre,
        });
    }
    series
}

/// Fig. 31: preprocessing latency on a union of two graphs' edges, under
/// the fixed MV-tuned configuration (`StatPre`) vs the reconfigured optimum
/// (`DynPre`). Returns `(statpre_secs, dynpre_secs)`.
pub fn mixed_edges_secs(a: Dataset, b: Dataset, gnn: GnnSpec) -> (f64, f64) {
    let setup = EvalSetup::default();
    let (sa, sb) = (a.spec(), b.spec());
    let mixed = setup.workload(sa.nodes + sb.nodes, sa.edges + sb.edges);
    let ctx = SystemContext::new(mixed, gnn);
    let stat = evaluate(&ctx, SystemKind::StatPre).preprocess.total();
    let dynp = evaluate(&ctx, SystemKind::DynPre).preprocess.total();
    (stat, dynp)
}

/// Helper for printing: per-stage seconds of the GPU system for a workload,
/// used by the Fig. 6 harness.
pub fn gpu_stage_secs(dataset: Dataset, gnn: GnnSpec) -> Option<StageSecs> {
    let spec = dataset.spec();
    let ctx = SystemContext::new(EvalSetup::default().workload(spec.nodes, spec.edges), gnn);
    let run = evaluate(&ctx, SystemKind::Gpu);
    (!run.oom).then_some(run.preprocess)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gnn() -> GnnSpec {
        GnnSpec::table_iii_default()
    }

    #[test]
    fn task_shares_shift_from_selecting_to_reshaping() {
        // Fig. 7: Selecting dominates early; Reshaping overtakes as the
        // graph grows.
        let series = task_share_series(Dataset::StackOverflow, 2_000, 500, gnn());
        let first = series.first().unwrap().shares;
        let last = series.last().unwrap().shares;
        assert!(last[1] > first[1], "reshaping share grows");
        assert!(last[2] < first[2], "selecting share shrinks");
        assert!(
            last[1] > last[2],
            "reshaping eventually dominates selecting"
        );
    }

    #[test]
    fn task_shares_sum_to_hundred() {
        for point in task_share_series(Dataset::Taobao, 100, 50, gnn()) {
            let sum: f64 = point.shares.iter().sum();
            assert!(
                sum == 0.0 || (sum - 100.0).abs() < 1e-6,
                "day {}",
                point.day
            );
        }
    }

    #[test]
    fn reconfiguration_wins_after_the_switch() {
        // Fig. 28a: MV then SO; DynPre dips during the 0.23 s stall but
        // runs faster afterwards.
        let static_run = consecutive_inference(
            Dataset::Movie,
            Dataset::StackOverflow,
            10.0,
            30.0,
            false,
            gnn(),
        );
        let dynamic_run = consecutive_inference(
            Dataset::Movie,
            Dataset::StackOverflow,
            10.0,
            30.0,
            true,
            gnn(),
        );
        // Both equal during phase A.
        assert_eq!(
            static_run.series[0].inferences_per_sec,
            dynamic_run.series[0].inferences_per_sec
        );
        // The dynamic run has a stall sample.
        assert!(dynamic_run
            .series
            .iter()
            .any(|s| s.inferences_per_sec == 0.0));
        // Steady-state phase B throughput is higher for the dynamic system.
        // The paper reports 2.9x after reconfiguration; our simulator's gap
        // is smaller because large-graph ordering is memory-bound and thus
        // configuration-insensitive (see EXPERIMENTS.md).
        let tail = |run: &ConsecutiveRun| run.series.last().unwrap().inferences_per_sec;
        assert!(tail(&dynamic_run) > tail(&static_run) * 1.05);
        // Total preprocessing time drops (the paper reports 56%).
        assert!(dynamic_run.total_preprocess_secs < static_run.total_preprocess_secs);
    }

    #[test]
    fn different_category_pairs_gain_more_from_reconfiguration() {
        let mut similar_gain = Vec::new();
        let mut different_gain = Vec::new();
        for (_, a, b, same) in evaluation_pairs() {
            let fixed = pair_preprocess_secs(a, b, false, gnn());
            let dynamic = pair_preprocess_secs(a, b, true, gnn());
            let gain = (fixed - dynamic) / fixed;
            if same {
                similar_gain.push(gain);
            } else {
                different_gain.push(gain);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&different_gain) > avg(&similar_gain),
            "Fig. 28b: different-category pairs benefit more: {:?} vs {:?}",
            different_gain,
            similar_gain
        );
    }

    #[test]
    fn growth_study_ooms_the_gpu_eventually() {
        let series = growth_study(Dataset::Taobao, 5_000, 11, gnn());
        assert!(series.first().unwrap().gpu_secs.is_some(), "fits initially");
        assert!(
            series.last().unwrap().gpu_secs.is_none(),
            "OOM at full size"
        );
        // DynPre tracks or beats StatPre throughout (the timing-aware
        // search space includes the hour-0 configuration).
        for p in &series {
            assert!(
                p.dynpre_secs <= p.statpre_secs * 1.001,
                "hour {}: dyn {} stat {}",
                p.hour,
                p.dynpre_secs,
                p.statpre_secs
            );
        }
        // Somewhere along the trajectory reconfiguration visibly pays.
        assert!(
            series.iter().any(|p| p.statpre_secs / p.dynpre_secs > 1.03),
            "DynPre should beat StatPre somewhere on the growth path"
        );
    }

    #[test]
    fn latencies_grow_with_the_graph() {
        let series = growth_study(Dataset::Taobao, 5_000, 6, gnn());
        assert!(series.last().unwrap().dynpre_secs > series.first().unwrap().dynpre_secs * 5.0);
    }

    #[test]
    fn mixed_edges_favour_dynpre() {
        let mut stat_total = 0.0;
        let mut dyn_total = 0.0;
        for (label, a, b, _) in evaluation_pairs() {
            let (stat, dynp) = mixed_edges_secs(a, b, gnn());
            assert!(dynp <= stat * 1.001, "{label}: {dynp} vs {stat}");
            stat_total += stat;
            dyn_total += dynp;
        }
        assert!(dyn_total < stat_total, "reconfiguration wins on aggregate");
    }

    #[test]
    fn gpu_stage_secs_matches_system_evaluation() {
        let secs = gpu_stage_secs(Dataset::Physics, gnn()).unwrap();
        assert!(secs.total() > 0.0);
        assert!(gpu_stage_secs(Dataset::Taobao, gnn()).is_none(), "TB OOMs");
    }
}

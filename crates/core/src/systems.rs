//! The seven compared systems (§VI "Compared systems and configurations").
//!
//! - `Cpu`/`Gpu` — DGL preprocessing on the host devices;
//! - `GSamp` — GPU preprocessing with gSampler-accelerated sampling;
//! - `FpgaSampler` — the FPGA-HBM streaming sampler (sampling only; graph
//!   conversion stays on the GPU, adding full-graph handoffs);
//! - `AutoPre` — AutoGNN with the UPE region statically split into an
//!   ordering-only and a selection-only sub-engine (half the LUTs each);
//! - `StatPre` — AutoGNN with the unified, time-multiplexed UPE region at a
//!   fixed MV-tuned configuration;
//! - `DynPre` — `StatPre` plus cost-model-driven partial reconfiguration.

use agnn_cost::{SearchSpace, Workload};
use agnn_devices::accel;
use agnn_devices::cpu::CpuModel;
use agnn_devices::fpga::FpgaModel;
use agnn_devices::gpu::GpuModel;
use agnn_devices::StageSecs;
use agnn_gnn::models::GnnSpec;
use agnn_gnn::timing::GpuInferenceModel;
use agnn_graph::datasets::Dataset;
use agnn_hw::floorplan::Floorplan;
use agnn_hw::{HwConfig, UpeConfig};

/// The systems of Fig. 18, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// DGL preprocessing on the 128-core Xeon.
    Cpu,
    /// DGL preprocessing on the RTX 3090.
    Gpu,
    /// GPU preprocessing with gSampler sampling.
    GSamp,
    /// FPGA-HBM streaming sampler (sampling only).
    FpgaSampler,
    /// AutoGNN, statically split UPE region.
    AutoPre,
    /// AutoGNN, unified UPE region, fixed MV-tuned configuration.
    StatPre,
    /// AutoGNN with dynamic partial reconfiguration.
    DynPre,
}

impl SystemKind {
    /// All systems in figure order.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Cpu,
        SystemKind::Gpu,
        SystemKind::GSamp,
        SystemKind::FpgaSampler,
        SystemKind::AutoPre,
        SystemKind::StatPre,
        SystemKind::DynPre,
    ];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Cpu => "CPU",
            SystemKind::Gpu => "GPU",
            SystemKind::GSamp => "GSamp",
            SystemKind::FpgaSampler => "FPGA",
            SystemKind::AutoPre => "AutoPre",
            SystemKind::StatPre => "StatPre",
            SystemKind::DynPre => "DynPre",
        }
    }

    /// Whether this system runs end-to-end preprocessing on AutoGNN.
    pub fn is_autognn(self) -> bool {
        matches!(
            self,
            SystemKind::AutoPre | SystemKind::StatPre | SystemKind::DynPre
        )
    }
}

/// Shared evaluation context: device models plus the workload under test.
#[derive(Debug, Clone)]
pub struct SystemContext {
    /// The workload (full-scale Table II parameters).
    pub workload: Workload,
    /// The GNN model inferred after preprocessing.
    pub gnn: GnnSpec,
    /// GPU baseline model.
    pub gpu: GpuModel,
    /// CPU baseline model.
    pub cpu: CpuModel,
    /// FPGA timing model.
    pub fpga: FpgaModel,
    /// GPU inference timing.
    pub inference: GpuInferenceModel,
    /// Accelerator floorplan.
    pub plan: Floorplan,
    /// Fraction of the graph re-uploaded per pass on AutoGNN systems
    /// (incremental updates; the GPU must re-fetch everything).
    pub update_fraction: f64,
}

impl SystemContext {
    /// Context with default device models for a workload.
    pub fn new(workload: Workload, gnn: GnnSpec) -> Self {
        SystemContext {
            workload,
            gnn,
            gpu: GpuModel::default(),
            cpu: CpuModel::default(),
            fpga: FpgaModel::default(),
            inference: GpuInferenceModel::default(),
            plan: Floorplan::vpk180(),
            update_fraction: 0.07,
        }
    }
}

/// End-to-end latency breakdown of one system on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEndBreakdown {
    /// System evaluated.
    pub system: SystemKind,
    /// Per-stage preprocessing seconds.
    pub preprocess: StageSecs,
    /// Host↔accelerator↔GPU transfer seconds.
    pub transfer_secs: f64,
    /// GNN inference seconds (always on the GPU).
    pub inference_secs: f64,
    /// Whether the system ran out of device memory (Fig. 5's TB/GPU case).
    pub oom: bool,
    /// The AutoGNN configuration used, for AutoGNN systems.
    pub fpga_config: Option<HwConfig>,
    /// Achieved DRAM bandwidth fraction, for AutoGNN systems (Fig. 18).
    pub bandwidth_utilization: Option<f64>,
}

impl EndToEndBreakdown {
    /// Total end-to-end seconds. OOM runs report infinity.
    pub fn total_secs(&self) -> f64 {
        if self.oom {
            return f64::INFINITY;
        }
        self.preprocess.total() + self.transfer_secs + self.inference_secs
    }

    /// Preprocessing (including transfers) share of the total, in percent.
    pub fn preprocess_share_pct(&self) -> f64 {
        let total = self.total_secs();
        if !total.is_finite() || total <= 0.0 {
            return 100.0;
        }
        (self.preprocess.total() + self.transfer_secs) / total * 100.0
    }
}

/// The MV-tuned fixed configuration `AutoPre` and `StatPre` use ("the
/// hardware settings of AutoPre and StatPre are fixed and tuned for the MV
/// dataset", §VI).
pub fn mv_tuned_config(plan: &Floorplan) -> HwConfig {
    let setup = crate::config::EvalSetup::default();
    let spec = Dataset::Movie.spec();
    let mv = setup.workload(spec.nodes, spec.edges);
    FpgaModel::default().search(&mv, plan, SearchSpace::Full)
}

/// Evaluates one system on the context's workload.
pub fn evaluate(ctx: &SystemContext, kind: SystemKind) -> EndToEndBreakdown {
    let w = &ctx.workload;
    let inference_secs =
        ctx.inference
            .analytic_inference_secs(&ctx.gnn, w.subgraph_nodes(), w.subgraph_edges());
    let pcie = ctx.gpu.pcie_bandwidth;
    let subgraph_upload = w.subgraph_bytes() as f64 / pcie;

    match kind {
        SystemKind::Cpu => EndToEndBreakdown {
            system: kind,
            preprocess: ctx.cpu.preprocess_secs(w),
            transfer_secs: subgraph_upload,
            inference_secs,
            oom: false,
            fpga_config: None,
            bandwidth_utilization: None,
        },
        SystemKind::Gpu | SystemKind::GSamp => {
            let base = ctx.gpu.preprocess_secs(w);
            let oom = base.is_none();
            let mut preprocess = base.unwrap_or_default();
            if kind == SystemKind::GSamp {
                preprocess = accel::gsamp().apply(&preprocess);
            }
            EndToEndBreakdown {
                system: kind,
                preprocess,
                transfer_secs: ctx.gpu.upload_secs(w),
                inference_secs,
                oom,
                fpga_config: None,
                bandwidth_utilization: None,
            }
        }
        SystemKind::FpgaSampler => {
            // Conversion on the GPU, sampling on the external FPGA; the
            // CSC-form graph crosses PCIe to the sampler on top of the
            // host→GPU upload (§VI-A: transfers are 24.7% of end-to-end).
            let base = ctx.gpu.preprocess_secs(w);
            let oom = base.is_none();
            let preprocess = accel::fpga_sampler().apply(&base.unwrap_or_default());
            let csc_bytes = (w.edges * 4 + (w.nodes + 1) * 4) as f64;
            let transfer = ctx.gpu.upload_secs(w) + csc_bytes / pcie + subgraph_upload;
            EndToEndBreakdown {
                system: kind,
                preprocess,
                transfer_secs: transfer,
                inference_secs,
                oom,
                fpga_config: None,
                bandwidth_utilization: None,
            }
        }
        SystemKind::AutoPre | SystemKind::StatPre | SystemKind::DynPre => {
            let config = match kind {
                SystemKind::DynPre => ctx.fpga.search(w, &ctx.plan, SearchSpace::Full),
                _ => mv_tuned_config(&ctx.plan),
            };
            // AutoPre forgoes UPE unification: each stage runs on a fixed
            // sub-engine holding half the UPE instances.
            let effective = if kind == SystemKind::AutoPre {
                HwConfig {
                    upe: UpeConfig::new((config.upe.count / 2).max(1), config.upe.width),
                    scr: config.scr,
                }
            } else {
                config
            };
            let report = ctx.fpga.analytic_report(w, effective);
            let preprocess = ctx.fpga.stage_secs(&report);
            let utilization = ctx.fpga.bandwidth_utilization(&report);
            // Incremental update upload + subgraph DMA-bypass to the GPU.
            let update_upload = w.coo_bytes() as f64 * ctx.update_fraction / pcie;
            EndToEndBreakdown {
                system: kind,
                preprocess,
                transfer_secs: update_upload + subgraph_upload,
                inference_secs,
                oom: false,
                fpga_config: Some(config),
                bandwidth_utilization: Some(utilization),
            }
        }
    }
}

/// Per-pass transfer volume in bytes (Fig. 20): what must cross PCIe for
/// one preprocessing + inference pass.
pub fn transfer_bytes(ctx: &SystemContext, kind: SystemKind) -> u64 {
    let w = &ctx.workload;
    let subgraph = w.subgraph_bytes();
    match kind {
        SystemKind::Cpu => subgraph,
        SystemKind::Gpu | SystemKind::GSamp => w.coo_bytes(),
        SystemKind::FpgaSampler => w.coo_bytes() + (w.edges * 4 + (w.nodes + 1) * 4) + subgraph,
        _ => (w.coo_bytes() as f64 * ctx.update_fraction) as u64 + subgraph,
    }
}

/// LUT utilization of an AutoGNN variant (Fig. 21): the time-weighted
/// fraction of device LUTs busy during preprocessing.
pub fn lut_utilization(ctx: &SystemContext, kind: SystemKind) -> f64 {
    assert!(
        kind.is_autognn(),
        "LUT utilization applies to AutoGNN systems"
    );
    let breakdown = evaluate(ctx, kind);
    let secs = breakdown.preprocess;
    let total = secs.total();
    if total <= 0.0 {
        return 0.0;
    }
    let upe_frac = ctx.plan.upe_region_luts() as f64 / ctx.plan.total_luts() as f64;
    let scr_frac = ctx.plan.scr_region_luts() as f64 / ctx.plan.total_luts() as f64;
    let scr_busy = scr_frac * (secs.reshaping + secs.reindexing);
    let upe_busy = match kind {
        // Split sub-engines: each half is busy only during its own stage.
        SystemKind::AutoPre => upe_frac / 2.0 * (secs.ordering + secs.selecting),
        // Unified region: all UPE LUTs busy during both UPE stages.
        _ => upe_frac * (secs.ordering + secs.selecting),
    };
    (upe_busy + scr_busy) / total
}

/// The Table II dataset list with full-scale workloads under the default
/// evaluation setup, in figure order.
pub fn dataset_contexts(gnn: GnnSpec) -> Vec<(Dataset, SystemContext)> {
    let setup = crate::config::EvalSetup::default();
    Dataset::ALL
        .into_iter()
        .map(|d| {
            let spec = d.spec();
            let w = setup.workload(spec.nodes, spec.edges);
            (d, SystemContext::new(w, gnn))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_for(dataset: Dataset) -> SystemContext {
        let spec = dataset.spec();
        let setup = crate::config::EvalSetup::default();
        SystemContext::new(
            setup.workload(spec.nodes, spec.edges),
            GnnSpec::table_iii_default(),
        )
    }

    #[test]
    fn dynpre_beats_gpu_on_every_non_oom_dataset() {
        for d in Dataset::ALL {
            let ctx = ctx_for(d);
            let gpu = evaluate(&ctx, SystemKind::Gpu);
            let dyn_pre = evaluate(&ctx, SystemKind::DynPre);
            assert!(!dyn_pre.oom);
            if !gpu.oom {
                assert!(
                    dyn_pre.total_secs() < gpu.total_secs(),
                    "{d}: DynPre {} vs GPU {}",
                    dyn_pre.total_secs(),
                    gpu.total_secs()
                );
            }
        }
    }

    #[test]
    fn system_ordering_matches_fig18_on_average() {
        // Geometric-mean speedups over CPU across non-OOM datasets must
        // reproduce the Fig. 18 ordering:
        // GPU < FPGA(GSamp ~ FPGA) < AutoPre < StatPre < DynPre.
        let mut logsum = [0.0f64; 7];
        let mut count = 0usize;
        for d in Dataset::ALL {
            let ctx = ctx_for(d);
            let cpu = evaluate(&ctx, SystemKind::Cpu).total_secs();
            let all: Vec<f64> = SystemKind::ALL
                .iter()
                .map(|&k| evaluate(&ctx, k).total_secs())
                .collect();
            if all.iter().any(|t| !t.is_finite()) {
                continue; // skip the TB/GPU OOM row for the average
            }
            for (i, t) in all.iter().enumerate() {
                logsum[i] += (cpu / t).ln();
            }
            count += 1;
        }
        let speedup: Vec<f64> = logsum.iter().map(|s| (s / count as f64).exp()).collect();
        // Indices follow SystemKind::ALL.
        assert!(speedup[1] > 1.5, "GPU speedup {}", speedup[1]);
        assert!(speedup[2] > speedup[1], "GSamp beats GPU");
        assert!(speedup[4] > speedup[3], "AutoPre beats FPGA sampler");
        assert!(speedup[5] > speedup[4], "StatPre beats AutoPre");
        assert!(speedup[6] >= speedup[5], "DynPre beats StatPre");
        assert!(
            speedup[6] / speedup[1] > 1.5,
            "DynPre vs GPU ~2x, got {}",
            speedup[6] / speedup[1]
        );
    }

    #[test]
    fn gpu_ooms_only_on_taobao() {
        for d in Dataset::ALL {
            let ctx = ctx_for(d);
            let gpu = evaluate(&ctx, SystemKind::Gpu);
            assert_eq!(gpu.oom, d == Dataset::Taobao, "{d}");
        }
    }

    #[test]
    fn autognn_transfers_are_an_order_smaller_than_gpu() {
        let ctx = ctx_for(Dataset::Amazon);
        let gpu = transfer_bytes(&ctx, SystemKind::Gpu);
        let auto = transfer_bytes(&ctx, SystemKind::AutoPre);
        let fpga = transfer_bytes(&ctx, SystemKind::FpgaSampler);
        assert!(
            gpu as f64 / auto as f64 > 8.0,
            "Fig. 20: ~13.6x less than GPU, got {}",
            gpu as f64 / auto as f64
        );
        assert!(fpga > gpu, "the external sampler moves the most data");
    }

    #[test]
    fn statpre_utilizes_luts_better_than_autopre() {
        let ctx = ctx_for(Dataset::Movie);
        let auto = lut_utilization(&ctx, SystemKind::AutoPre);
        let stat = lut_utilization(&ctx, SystemKind::StatPre);
        assert!(
            stat / auto > 1.4,
            "Fig. 21: ~1.7x utilization gain, got {}",
            stat / auto
        );
        assert!(stat <= 1.0 && auto > 0.0);
    }

    #[test]
    fn dynpre_gains_most_on_graphs_unlike_mv() {
        // "The gains of DynPre are most pronounced for large or low-degree
        // graphs, which differ substantially from MV" (§VI-A).
        let gain = |d: Dataset| {
            let ctx = ctx_for(d);
            let stat = evaluate(&ctx, SystemKind::StatPre).preprocess.total();
            let dynp = evaluate(&ctx, SystemKind::DynPre).preprocess.total();
            stat / dynp
        };
        let mv_gain = gain(Dataset::Movie);
        let ax_gain = gain(Dataset::Arxiv);
        assert!(
            mv_gain <= ax_gain + 1e-9,
            "MV is already tuned: {mv_gain} vs {ax_gain}"
        );
        assert!((1.0..1.05).contains(&mv_gain), "MV gain ≈ 1, got {mv_gain}");
    }

    #[test]
    fn preprocessing_dominates_end_to_end_on_gpu() {
        // Fig. 5: ~70% average share, growing with graph size.
        let small = evaluate(&ctx_for(Dataset::Physics), SystemKind::Gpu);
        let large = evaluate(&ctx_for(Dataset::Amazon), SystemKind::Gpu);
        assert!(small.preprocess_share_pct() > 30.0);
        assert!(large.preprocess_share_pct() > 85.0);
        assert!(large.preprocess_share_pct() > small.preprocess_share_pct());
    }

    #[test]
    fn bandwidth_utilization_reported_only_for_autognn() {
        let ctx = ctx_for(Dataset::Taobao);
        assert!(evaluate(&ctx, SystemKind::Gpu)
            .bandwidth_utilization
            .is_none());
        let util = evaluate(&ctx, SystemKind::DynPre)
            .bandwidth_utilization
            .expect("AutoGNN reports utilization");
        assert!(util > 0.5, "e-commerce graphs are memory-bound: {util}");
    }

    #[test]
    fn mv_tuned_config_is_deterministic_and_fits() {
        let plan = Floorplan::vpk180();
        let a = mv_tuned_config(&plan);
        assert_eq!(a, mv_tuned_config(&plan));
        assert!(a.fits(&plan));
    }
}

//! Diagnostic dump used while calibrating device constants.
//! Run with: cargo test -p agnn-core --test diag -- --ignored --nocapture

use agnn_core::config::EvalSetup;
use agnn_core::systems::{evaluate, SystemContext, SystemKind};
use agnn_gnn::models::GnnSpec;
use agnn_graph::datasets::Dataset;

#[test]
#[ignore]
fn dump_breakdowns() {
    let gnn = GnnSpec::table_iii_default();
    let setup = EvalSetup::default();
    for d in Dataset::ALL {
        let spec = d.spec();
        let ctx = SystemContext::new(setup.workload(spec.nodes, spec.edges), gnn);
        println!("=== {d} (n={} e={}) ===", spec.nodes, spec.edges);
        for kind in SystemKind::ALL {
            let r = evaluate(&ctx, kind);
            println!(
                "{:8} total={:9.4}s pre[o={:.4} r={:.4} s={:.4} x={:.4}] tx={:.4} inf={:.4} oom={} cfg={:?}",
                kind.name(),
                r.total_secs(),
                r.preprocess.ordering,
                r.preprocess.reshaping,
                r.preprocess.selecting,
                r.preprocess.reindexing,
                r.transfer_secs,
                r.inference_secs,
                r.oom,
                r.fpga_config.map(|c| (c.upe.count, c.upe.width, c.scr.slots, c.scr.width)),
            );
        }
    }
}

//! The pre-compiled bitstream library.
//!
//! §V-B: "we start from a bitstream consisting of a single large UPE (and
//! SCR), and iteratively halve the width and double the instance count …
//! On our board, this yields ten UPE variants and ten SCR variants, thus
//! twenty kernel bitstreams in total. … At boot, all twenty bitstreams
//! (50 MB each, 1 GB total) are staged in the internal DRAM."

use agnn_hw::floorplan::Floorplan;
use agnn_hw::{ScrConfig, UpeConfig};

/// Bytes of one partial bitstream (§V-B).
pub const BITSTREAM_BYTES: u64 = 50 << 20;

/// Number of ladder steps per kernel on the VPK180.
pub const VARIANTS_PER_KERNEL: usize = 10;

/// The pre-compiled UPE and SCR bitstream ladders for a floorplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitstreamLibrary {
    upe_variants: Vec<UpeConfig>,
    scr_variants: Vec<ScrConfig>,
}

impl BitstreamLibrary {
    /// Builds the halve-width/double-count ladders that fit `plan`, up to
    /// ten (`VARIANTS_PER_KERNEL`) variants per kernel.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan cannot fit even the smallest kernels.
    pub fn for_floorplan(plan: &Floorplan) -> Self {
        // Largest single-instance UPE width that fits the UPE region.
        let mut width = 2usize;
        while agnn_hw::floorplan::upe_luts(width * 2) <= plan.upe_region_luts() {
            width *= 2;
        }
        assert!(
            agnn_hw::floorplan::upe_luts(width) <= plan.upe_region_luts(),
            "floorplan too small for any UPE"
        );
        // Strict halve-width/double-count ladder (§V-B). Keeping
        // `count × width` constant is what gives the Table I cost model its
        // interior optimum: ordering favours wide UPEs (fewer merge rounds,
        // faster cascade root), selection favours many UPEs (draws per
        // cycle). The region capacity at width 64 is 240 instances (§V-A);
        // the ladder's power-of-two rung uses 64 of them.
        let mut upe_variants = Vec::with_capacity(VARIANTS_PER_KERNEL);
        let mut count = 1usize;
        while upe_variants.len() < VARIANTS_PER_KERNEL && width >= 2 {
            let candidate = UpeConfig::new(count, width);
            if candidate.luts() <= plan.upe_region_luts() {
                upe_variants.push(candidate);
            }
            width /= 2;
            count *= 2;
        }

        let mut scr_width = plan.max_scr_width(1);
        let mut scr_variants = Vec::with_capacity(VARIANTS_PER_KERNEL);
        let mut slots = 1usize;
        while scr_variants.len() < VARIANTS_PER_KERNEL && scr_width >= 2 {
            let candidate = ScrConfig::new(slots, scr_width);
            if candidate.luts() <= plan.scr_region_luts() {
                scr_variants.push(candidate);
            }
            scr_width /= 2;
            slots *= 2;
        }

        assert!(
            !upe_variants.is_empty() && !scr_variants.is_empty(),
            "floorplan produced an empty bitstream library"
        );
        BitstreamLibrary {
            upe_variants,
            scr_variants,
        }
    }

    /// The UPE ladder, largest width first.
    pub fn upe_variants(&self) -> &[UpeConfig] {
        &self.upe_variants
    }

    /// The SCR ladder, largest width first.
    pub fn scr_variants(&self) -> &[ScrConfig] {
        &self.scr_variants
    }

    /// Total bytes staged in device DRAM at boot.
    pub fn staged_bytes(&self) -> u64 {
        (self.upe_variants.len() + self.scr_variants.len()) as u64 * BITSTREAM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpk180_yields_ten_plus_ten_variants() {
        let lib = BitstreamLibrary::for_floorplan(&Floorplan::vpk180());
        assert_eq!(lib.upe_variants().len(), 10, "§V-B: ten UPE variants");
        assert_eq!(lib.scr_variants().len(), 10, "§V-B: ten SCR variants");
        // 20 bitstreams x 50 MB = 1 GB staged (§V-B).
        assert_eq!(lib.staged_bytes(), 20 * (50 << 20));
    }

    #[test]
    fn ladder_halves_width_and_doubles_count() {
        let lib = BitstreamLibrary::for_floorplan(&Floorplan::vpk180());
        for pair in lib.upe_variants().windows(2) {
            assert_eq!(pair[1].width * 2, pair[0].width);
            assert_eq!(pair[1].count, pair[0].count * 2);
        }
        assert_eq!(lib.upe_variants()[0].count, 1, "single large UPE first");
        assert_eq!(lib.upe_variants()[0].width, 4096);
        // Constant aggregate throughput across the ladder.
        for upe in lib.upe_variants() {
            assert_eq!(upe.count * upe.width, 4096);
        }
        for pair in lib.scr_variants().windows(2) {
            assert_eq!(pair[1].width * 2, pair[0].width);
            assert_eq!(pair[1].slots, pair[0].slots * 2);
        }
        assert_eq!(lib.scr_variants()[0].slots, 1);
        assert_eq!(lib.scr_variants()[0].width, 8192);
    }

    #[test]
    fn every_variant_fits_its_region() {
        let plan = Floorplan::vpk180();
        let lib = BitstreamLibrary::for_floorplan(&plan);
        for upe in lib.upe_variants() {
            assert!(upe.luts() <= plan.upe_region_luts(), "{upe:?}");
        }
        for scr in lib.scr_variants() {
            assert!(scr.luts() <= plan.scr_region_luts(), "{scr:?}");
        }
    }

    #[test]
    fn small_boards_get_smaller_ladders() {
        let small = Floorplan::vpk180().with_total_luts(400_000);
        let lib = BitstreamLibrary::for_floorplan(&small);
        assert!(!lib.upe_variants().is_empty());
        assert!(
            lib.upe_variants()[0].width < 4096,
            "largest UPE shrinks with the board"
        );
    }
}

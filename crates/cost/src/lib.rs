//! Cost model, bitstream library and configuration optimizer.
//!
//! Implements §V-B of the paper: the analytic cost functions of Table I,
//! the pre-compiled bitstream ladder ("start from a bitstream consisting of
//! a single large UPE (and SCR), and iteratively halve the width and double
//! the instance count"), and the runtime configuration search the `DynPre`
//! system uses (with the restricted `DynArea`/`DynSCR`/`DynUPE` search
//! spaces of Fig. 22).
//!
//! # Examples
//!
//! ```
//! use agnn_cost::{BitstreamLibrary, CostModel, Workload};
//! use agnn_hw::floorplan::Floorplan;
//!
//! let library = BitstreamLibrary::for_floorplan(&Floorplan::vpk180());
//! let workload = Workload::new(230_000, 400_000_000, 3_000, 10, 2);
//! let best = CostModel.choose_config(&workload, &library);
//! assert!(best.upe.count >= 1);
//! ```

mod bitstream;
mod model;

pub mod optimizer;

pub use bitstream::BitstreamLibrary;
pub use model::{CostEstimate, CostModel, Workload};
pub use optimizer::{ReconfigPolicy, SearchSpace};

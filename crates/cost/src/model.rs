//! The Table I analytic cost functions.

use agnn_hw::{HwConfig, ScrConfig, UpeConfig};

/// Workload parameters the host collects at runtime: "light-weight graph
/// metadata (e.g., the number of nodes n and edges e) and GNN
/// hyperparameters (e.g., the number of layers l, the max sample count k,
/// and the batch size b)" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Number of graph nodes `n`.
    pub nodes: u64,
    /// Number of graph edges `e`.
    pub edges: u64,
    /// Batch size `b` (inference nodes per pass).
    pub batch: u64,
    /// Neighbors sampled per node `k`.
    pub k: u64,
    /// GNN layers `l`.
    pub layers: u32,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(nodes: u64, edges: u64, batch: u64, k: u64, layers: u32) -> Self {
        Workload {
            nodes,
            edges,
            batch,
            k,
            layers,
        }
    }

    /// Average degree `e / n`.
    pub fn degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        }
    }

    /// The neighborhood-expansion model: per hop, only the *newly
    /// discovered* vertices expand (each draws `k` neighbors), and the
    /// number of new discoveries among `d` draws into a pool of `r`
    /// uncovered vertices follows the balls-into-bins expectation
    /// `r · (1 − exp(−d/r))`. This is what keeps deep sampling from
    /// exploding combinatorially: once the multi-hop ball saturates the
    /// graph, draws stop growing ("node explosion" capped by coverage).
    ///
    /// Returns `(total_draws, expanded_parents, covered_vertices)`.
    fn expansion(&self) -> (u64, u64, u64) {
        let n = self.nodes.max(1) as f64;
        let mut covered = (self.batch as f64).min(n);
        let mut new = covered;
        let mut draws_total = 0.0f64;
        let mut expanded = 0.0f64;
        for _ in 0..self.layers {
            if new < 0.5 {
                break;
            }
            let draws = new * self.k as f64;
            draws_total += draws;
            expanded += new;
            let remaining = (n - covered).max(0.0);
            let discovered = if remaining <= 0.5 {
                0.0
            } else {
                remaining * (1.0 - (-draws / remaining).exp())
            };
            new = discovered;
            covered += discovered;
        }
        (
            draws_total.round() as u64,
            expanded.round() as u64,
            covered.round() as u64,
        )
    }

    /// Total selected nodes `s ≈ b·(k^(l+1) − 1)/(k − 1)` (Table I; see
    /// `DESIGN.md` on the geometric-sum reading — the batch nodes count as
    /// the `1` term), saturated by neighborhood coverage on deep or small
    /// graphs (see the `expansion` model above).
    pub fn selections(&self) -> u64 {
        self.batch + self.expansion().0
    }

    /// VIDs pushed through the reindexer: the batch plus every draw, which
    /// is exactly [`Workload::selections`] (the batch is its `1` term).
    pub fn reindex_inputs(&self) -> u64 {
        self.selections()
    }

    /// Parents expanded across all hops (one neighbor pool each).
    pub fn expanded_parents(&self) -> u64 {
        self.expansion().1
    }

    /// Neighbor-pool elements scanned during selection: every expanded
    /// parent contributes one average-degree pool.
    pub fn pool_elements(&self) -> u64 {
        (self.expanded_parents() as f64 * self.degree()) as u64
    }

    /// Edges of the sampled subgraph (≤ selections).
    pub fn subgraph_edges(&self) -> u64 {
        self.selections()
    }

    /// Unique nodes of the sampled subgraph: the covered vertex set of the
    /// expansion (bounded by draws and by `n`).
    pub fn subgraph_nodes(&self) -> u64 {
        self.expansion()
            .2
            .clamp(self.batch.min(self.nodes), self.nodes)
    }

    /// COO bytes of the full graph (two 32-bit VIDs per edge).
    pub fn coo_bytes(&self) -> u64 {
        self.edges * 8
    }

    /// Bytes of the preprocessed subgraph shipped to the GPU (CSC pointers +
    /// indices + gather list). "This subgraph is much smaller than the
    /// original graph (1230× on average)" (§VI-B).
    pub fn subgraph_bytes(&self) -> u64 {
        (self.subgraph_nodes() + 1) * 4 + self.subgraph_edges() * 4 + self.subgraph_nodes() * 4
    }
}

/// Per-stage cycle estimates produced by the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Edge ordering cycles (Table I row 1).
    pub ordering: f64,
    /// Unique random selection cycles (Table I row 2).
    pub selecting: f64,
    /// Data reshaping cycles (Table I row 3).
    pub reshaping: f64,
}

impl CostEstimate {
    /// Total estimated preprocessing cycles.
    pub fn total(&self) -> f64 {
        self.ordering + self.selecting + self.reshaping
    }
}

/// The Table I cost model. Stateless; "evaluating the cost function …
/// took less than 0.1 ms" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostModel;

impl CostModel {
    /// Edge-ordering estimate:
    /// `m = log2(e / w_upe) − 1`, `cycles = 2·m·e / (n_upe · w_upe)`.
    pub fn ordering_cycles(&self, edges: u64, upe: UpeConfig) -> f64 {
        if edges == 0 {
            return 0.0;
        }
        let e = edges as f64;
        let w = upe.width as f64;
        let merge_rounds = ((e / w).log2() - 1.0).max(0.0);
        2.0 * merge_rounds * e / (upe.count as f64 * w)
    }

    /// Uni-random selection estimate: `cycles = s / n_upe`.
    pub fn selecting_cycles(&self, workload: &Workload, upe: UpeConfig) -> f64 {
        workload.selections() as f64 / upe.count as f64
    }

    /// Data reshaping estimate: `cycles = max(n / n_scr, e / w_scr)`.
    pub fn reshaping_cycles(&self, nodes: u64, edges: u64, scr: ScrConfig) -> f64 {
        let by_targets = nodes as f64 / scr.slots as f64;
        let by_window = edges as f64 / scr.width as f64;
        by_targets.max(by_window)
    }

    /// Full estimate for a workload under a configuration, covering both the
    /// full-graph conversion and the subgraph's second conversion.
    pub fn estimate(&self, workload: &Workload, config: HwConfig) -> CostEstimate {
        let sub_e = workload.subgraph_edges();
        let sub_n = workload.subgraph_nodes();
        CostEstimate {
            ordering: self.ordering_cycles(workload.edges, config.upe)
                + self.ordering_cycles(sub_e, config.upe),
            selecting: self.selecting_cycles(workload, config.upe),
            reshaping: self.reshaping_cycles(workload.nodes, workload.edges, config.scr)
                + self.reshaping_cycles(sub_n, sub_e, config.scr),
        }
    }

    /// Picks the configuration with the lowest estimated total cycles out of
    /// the library's full cross-product (the `DynPre` policy).
    pub fn choose_config(
        &self,
        workload: &Workload,
        library: &crate::BitstreamLibrary,
    ) -> HwConfig {
        let mut best: Option<(f64, HwConfig)> = None;
        for &upe in library.upe_variants() {
            for &scr in library.scr_variants() {
                let config = HwConfig { upe, scr };
                let total = self.estimate(workload, config).total();
                if best.is_none_or(|(cost, _)| total < cost) {
                    best = Some((total, config));
                }
            }
        }
        best.expect("bitstream library is never empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_iii_workload(nodes: u64, edges: u64) -> Workload {
        Workload::new(nodes, edges, 3_000, 10, 2)
    }

    #[test]
    fn selections_track_the_geometric_sum_on_large_graphs() {
        // On a graph much larger than the sampled ball, coverage effects
        // are negligible and s ≈ b·(1 + k + k²).
        let w = Workload::new(1_000_000_000, 10_000_000_000, 3_000, 10, 2);
        let geometric = 3_000 * 111;
        let s = w.selections();
        let rel = (s as f64 - geometric as f64).abs() / geometric as f64;
        assert!(rel < 0.02, "s = {s} vs geometric {geometric}");
        assert_eq!(w.reindex_inputs(), s);
    }

    #[test]
    fn deep_layers_saturate_at_coverage() {
        // A 4-node graph cannot expand geometrically: draws per layer are
        // bounded by the covered set expanding ~4 parents × k.
        let w = Workload::new(4, 12, 2, 10, 4);
        assert!(w.selections() <= 2 + 4 * 4 * 10);
        assert_eq!(w.subgraph_nodes(), 4, "the whole graph is covered");
        let uncapped = Workload::new(1_000_000_000, 12, 2, 10, 4);
        assert!(uncapped.selections() > w.selections());
    }

    #[test]
    fn layer_sweep_saturates_like_the_paper() {
        // Fig. 25b: 1 -> 6 layers grows sampling work by tens of times, not
        // by the raw geometric 10^5.
        let one = Workload::new(2_450_000, 123_000_000, 3_000, 10, 1).selections();
        let six = Workload::new(2_450_000, 123_000_000, 3_000, 10, 6).selections();
        let factor = six as f64 / one as f64;
        assert!(
            (10.0..2_000.0).contains(&factor),
            "sampling growth factor {factor}"
        );
    }

    #[test]
    fn ordering_cycles_follow_table_i() {
        let model = CostModel;
        let upe = UpeConfig::new(240, 64);
        // e = 2^20, w = 64 -> m = log2(2^14) - 1 = 13.
        let cycles = model.ordering_cycles(1 << 20, upe);
        let expected = 2.0 * 13.0 * (1u64 << 20) as f64 / (240.0 * 64.0);
        assert!((cycles - expected).abs() < 1e-9);
        assert_eq!(model.ordering_cycles(0, upe), 0.0);
    }

    #[test]
    fn reshaping_cycles_take_the_binding_term() {
        let model = CostModel;
        // Node-bound: many vertices, few edges.
        let node_bound = model.reshaping_cycles(1_000_000, 10_000, ScrConfig::new(2, 1024));
        assert_eq!(node_bound, 500_000.0);
        // Edge-bound: few vertices, many edges (the MV/TB shape).
        let edge_bound = model.reshaping_cycles(1_000, 10_000_000, ScrConfig::new(2, 1024));
        assert!((edge_bound - 10_000_000.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_total_sums_stages() {
        let w = table_iii_workload(100_000, 1_000_000);
        let config = agnn_hw::HwConfig::vpk180_default();
        let est = CostModel.estimate(&w, config);
        assert!((est.total() - (est.ordering + est.selecting + est.reshaping)).abs() < 1e-9);
        assert!(est.ordering > 0.0 && est.selecting > 0.0 && est.reshaping > 0.0);
    }

    #[test]
    fn more_upes_cut_ordering_and_selecting() {
        let w = table_iii_workload(100_000, 10_000_000);
        let model = CostModel;
        let few = UpeConfig::new(10, 64);
        let many = UpeConfig::new(100, 64);
        assert!(model.ordering_cycles(w.edges, many) < model.ordering_cycles(w.edges, few));
        assert!(model.selecting_cycles(&w, many) < model.selecting_cycles(&w, few));
    }

    #[test]
    fn degree_and_bytes() {
        let w = table_iii_workload(1_000, 50_000);
        assert!((w.degree() - 50.0).abs() < 1e-12);
        assert_eq!(w.coo_bytes(), 400_000);
        // At evaluation scale the subgraph is orders of magnitude smaller
        // than the input graph ("1230x on average", §VI-B).
        let am = table_iii_workload(2_450_000, 123_000_000);
        assert!(am.subgraph_bytes() * 100 < am.coo_bytes());
    }

    #[test]
    fn k_equal_one_does_not_divide_by_zero() {
        let w = Workload::new(10_000, 100_000, 100, 1, 3);
        // ~100 draws per layer minus slight coverage overlap.
        assert!((390..=400).contains(&w.selections()), "{}", w.selections());
        assert!(w.pool_elements() > 0);
    }
}

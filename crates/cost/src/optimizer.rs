//! Configuration search and the reconfiguration policy.
//!
//! `DynPre` searches the full bitstream cross-product; the Fig. 22 ablations
//! restrict the search: `DynArea` only rebalances the UPE/SCR area split,
//! `DynSCR` additionally tunes the SCR ladder, `DynUPE` (= full `DynPre`)
//! tunes everything. AGNN-lib then reconfigures "only when the model
//! determines it is necessary" (§I) — when the predicted gain clears a
//! threshold (§V-B "if the latency exceeds the threshold").

use agnn_hw::floorplan::Floorplan;
use agnn_hw::HwConfig;

use crate::{BitstreamLibrary, CostModel, Workload};

/// Which configuration dimensions the optimizer may change (Fig. 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchSpace {
    /// Rebalance the UPE:SCR area split only, keeping each kernel at its
    /// region-filling default shape (`DynArea`).
    AreaOnly,
    /// Fixed 70:30 split; tune the SCR ladder only (`DynSCR`).
    ScrOnly,
    /// Fixed 70:30 split; tune both ladders (`DynUPE`, the full `DynPre`).
    Full,
}

/// Searches `space` for the best configuration under the Table I model.
pub fn search(workload: &Workload, plan: &Floorplan, space: SearchSpace) -> HwConfig {
    let model = CostModel;
    match space {
        SearchSpace::AreaOnly => {
            // Candidate splits around the fixed 70:30 (§VI-B shows the
            // balance brings "negligible performance benefits").
            let mut best: Option<(f64, HwConfig)> = None;
            for upe_fraction in [0.5, 0.6, 0.7, 0.8, 0.9] {
                let candidate_plan = plan.with_upe_fraction(upe_fraction);
                let config = region_filling_default(&candidate_plan);
                let total = model.estimate(workload, config).total();
                if best.is_none_or(|(cost, _)| total < cost) {
                    best = Some((total, config));
                }
            }
            best.expect("non-empty split candidates").1
        }
        SearchSpace::ScrOnly => {
            let library = BitstreamLibrary::for_floorplan(plan);
            let upe = region_filling_default(plan).upe;
            let mut best: Option<(f64, HwConfig)> = None;
            for &scr in library.scr_variants() {
                let config = HwConfig { upe, scr };
                let total = model.estimate(workload, config).total();
                if best.is_none_or(|(cost, _)| total < cost) {
                    best = Some((total, config));
                }
            }
            best.expect("non-empty SCR ladder").1
        }
        SearchSpace::Full => {
            let library = BitstreamLibrary::for_floorplan(plan);
            model.choose_config(workload, &library)
        }
    }
}

/// The default bitstream shape used when a kernel is not being tuned: the
/// width-64 rung of the UPE ladder (Table III's default width) and one
/// region-filling SCR slot.
fn region_filling_default(plan: &Floorplan) -> HwConfig {
    let library = BitstreamLibrary::for_floorplan(plan);
    let upe = library
        .upe_variants()
        .iter()
        .copied()
        .find(|u| u.width == 64)
        .unwrap_or_else(|| {
            let mid = library.upe_variants().len() / 2;
            library.upe_variants()[mid]
        });
    HwConfig {
        upe,
        scr: agnn_hw::ScrConfig::new(1, plan.max_scr_width(1)),
    }
}

/// Decides whether a reconfiguration is worth its ~230 ms cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigPolicy {
    /// Minimum predicted relative latency improvement (e.g. `0.1` = 10 %).
    pub min_gain: f64,
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        ReconfigPolicy { min_gain: 0.10 }
    }
}

impl ReconfigPolicy {
    /// Returns whether to switch from `current` to `candidate` for
    /// `workload`: the predicted cycle saving must exceed `min_gain` of the
    /// current cost.
    pub fn should_reconfigure(
        &self,
        workload: &Workload,
        current: HwConfig,
        candidate: HwConfig,
    ) -> bool {
        if current == candidate {
            return false;
        }
        let model = CostModel;
        let now = model.estimate(workload, current).total();
        let then = model.estimate(workload, candidate).total();
        now > 0.0 && (now - then) / now >= self.min_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Floorplan {
        Floorplan::vpk180()
    }

    /// AX-like: many nodes, modest degree — reshaping is target-bound, so
    /// the optimizer should buy SCR slots (Fig. 23a: "for AX, which has a
    /// small degree, it is more beneficial to increase the number of slots").
    fn ax_like() -> Workload {
        Workload::new(169_000, 1_160_000, 3_000, 10, 2)
    }

    /// TB-like: few nodes, enormous degree — reshaping is window-bound, so
    /// wide SCRs win.
    fn tb_like() -> Workload {
        Workload::new(230_000, 400_000_000, 3_000, 10, 2)
    }

    #[test]
    fn full_search_prefers_slots_for_low_degree_and_width_for_high_degree() {
        let ax = search(&ax_like(), &plan(), SearchSpace::Full);
        let tb = search(&tb_like(), &plan(), SearchSpace::Full);
        assert!(
            ax.scr.slots > tb.scr.slots,
            "AX {ax:?} should use more slots than TB {tb:?}"
        );
        assert!(tb.scr.width > ax.scr.width);
    }

    #[test]
    fn scr_only_keeps_the_default_upe() {
        let cfg = search(&ax_like(), &plan(), SearchSpace::ScrOnly);
        assert_eq!(cfg.upe.width, 64, "Table III default width");
        assert_eq!(cfg.upe.count, 64, "the width-64 ladder rung");
    }

    #[test]
    fn area_only_returns_region_filling_shapes() {
        let cfg = search(&tb_like(), &plan(), SearchSpace::AreaOnly);
        assert_eq!(cfg.upe.width, 64);
        assert_eq!(cfg.scr.slots, 1);
    }

    #[test]
    fn wider_search_never_loses() {
        // Full search explores a superset of the SCR-only ladder (same
        // 70:30 split), so it can only improve. Area-only explores a
        // different axis (the split itself) and is compared in Fig. 22's
        // harness rather than dominated analytically.
        let model = CostModel;
        for w in [ax_like(), tb_like()] {
            let scr = model
                .estimate(&w, search(&w, &plan(), SearchSpace::ScrOnly))
                .total();
            let full = model
                .estimate(&w, search(&w, &plan(), SearchSpace::Full))
                .total();
            assert!(full <= scr + 1e-9, "full search beats SCR-only");
        }
    }

    #[test]
    fn policy_ignores_identical_configs_and_small_gains() {
        let policy = ReconfigPolicy::default();
        let w = ax_like();
        let best = search(&w, &plan(), SearchSpace::Full);
        assert!(!policy.should_reconfigure(&w, best, best));

        // A config that is already near-optimal should not trigger a switch.
        let near = HwConfig {
            upe: best.upe,
            scr: agnn_hw::ScrConfig::new(best.scr.slots, best.scr.width),
        };
        assert!(!policy.should_reconfigure(&w, near, best));
    }

    #[test]
    fn policy_triggers_on_large_gains() {
        let policy = ReconfigPolicy::default();
        let w = tb_like();
        let best = search(&w, &plan(), SearchSpace::Full);
        // A deliberately bad configuration for TB: tiny SCR window.
        let bad = HwConfig {
            upe: best.upe,
            scr: agnn_hw::ScrConfig::new(512, 16),
        };
        assert!(policy.should_reconfigure(&w, bad, best));
    }
}

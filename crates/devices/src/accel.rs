//! External accelerator baselines (Figs. 18, 27).
//!
//! Each design accelerates a *single* preprocessing stage by a fixed factor
//! over the GPU baseline while the remaining stages stay on the GPU — the
//! paper's point being that "they devote most resources to a single
//! function, thus unsuitable for end-to-end GNN preprocessing" (§VII).

use crate::stage::StageSecs;

/// Which preprocessing function an external accelerator speeds up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelTarget {
    /// Edge ordering (sorting accelerators).
    Ordering,
    /// Graph sampling: selection and reindexing together.
    Sampling,
}

/// A single-function accelerator baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageAccelerator {
    /// Short name used in the figures.
    pub name: &'static str,
    /// Accelerated function.
    pub target: AccelTarget,
    /// Speedup over the GPU baseline on that function.
    pub speedup_vs_gpu: f64,
}

impl StageAccelerator {
    /// Applies the accelerator to a GPU per-stage breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the speedup is not positive.
    pub fn apply(&self, gpu_secs: &StageSecs) -> StageSecs {
        assert!(self.speedup_vs_gpu > 0.0, "speedup must be positive");
        let mut out = *gpu_secs;
        match self.target {
            AccelTarget::Ordering => out.ordering /= self.speedup_vs_gpu,
            AccelTarget::Sampling => {
                out.selecting /= self.speedup_vs_gpu;
                out.reindexing /= self.speedup_vs_gpu;
            }
        }
        out
    }
}

/// gSampler \[28\]: matrix-centric GPU sampling APIs with fusion and
/// super-batching — "GSamp … accelerate\[s\] sampling by 7.5×" (§VI-A).
pub fn gsamp() -> StageAccelerator {
    StageAccelerator {
        name: "GSamp",
        target: AccelTarget::Sampling,
        speedup_vs_gpu: 7.5,
    }
}

/// The FPGA-HBM streaming sampler \[29\], \[30\]: "FPGA … accelerate\[s\]
/// sampling by … 12×" but implements sampling only.
pub fn fpga_sampler() -> StageAccelerator {
    StageAccelerator {
        name: "FPGA",
        target: AccelTarget::Sampling,
        speedup_vs_gpu: 12.0,
    }
}

/// Parallel hardware merge sorter \[72\] (Fig. 27 "Merge").
pub fn merge_sorter() -> StageAccelerator {
    StageAccelerator {
        name: "Merge",
        target: AccelTarget::Ordering,
        speedup_vs_gpu: 15.0,
    }
}

/// The Xilinx insertion/database sorting appliance \[6\] (Fig. 27 "Xilinx").
pub fn insertion_sorter() -> StageAccelerator {
    StageAccelerator {
        name: "Xilinx",
        target: AccelTarget::Ordering,
        speedup_vs_gpu: 6.0,
    }
}

/// FLAG \[33\]: low-latency GNN inference service using precomputation and
/// vector quantization (Fig. 27 "FLAG"), modeled as a selection accelerator.
pub fn flag() -> StageAccelerator {
    StageAccelerator {
        name: "FLAG",
        target: AccelTarget::Sampling,
        speedup_vs_gpu: 10.0,
    }
}

/// The four Fig. 27 designs, in figure order.
pub fn fig27_designs() -> [StageAccelerator; 4] {
    [merge_sorter(), insertion_sorter(), fpga_sampler(), flag()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_secs() -> StageSecs {
        StageSecs {
            ordering: 0.10,
            reshaping: 0.50,
            selecting: 0.20,
            reindexing: 0.10,
        }
    }

    #[test]
    fn sampling_accelerators_leave_conversion_alone() {
        let out = gsamp().apply(&gpu_secs());
        assert_eq!(out.ordering, 0.10);
        assert_eq!(out.reshaping, 0.50);
        assert!((out.selecting - 0.20 / 7.5).abs() < 1e-12);
        assert!((out.reindexing - 0.10 / 7.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_accelerators_leave_sampling_alone() {
        let out = merge_sorter().apply(&gpu_secs());
        assert!((out.ordering - 0.10 / 15.0).abs() < 1e-12);
        assert_eq!(out.selecting, 0.20);
    }

    #[test]
    fn single_function_designs_hit_amdahl_walls() {
        // Even infinite-speedup-class designs stay bounded by the stages
        // they do not touch (§VII).
        let base = gpu_secs();
        for accel in fig27_designs() {
            let out = accel.apply(&base);
            assert!(
                out.total() > base.reshaping,
                "{} cannot beat the untouched reshaping time",
                accel.name
            );
        }
    }

    #[test]
    fn fpga_sampler_is_faster_at_sampling_than_gsamp() {
        let fpga = fpga_sampler().apply(&gpu_secs());
        let gs = gsamp().apply(&gpu_secs());
        assert!(fpga.selecting < gs.selecting);
    }
}

//! FPGA board catalog for the LUT and price sweeps (Fig. 26).
//!
//! The paper anchors prices to "the 3090 GPU has similar costs to a Xilinx
//! FPGA with 400K LUTs" (§VI-B) and sweeps boards across a wide price
//! range; the catalog below spans the same range with representative
//! device classes (prices are list-price approximations — see `DESIGN.md`).

use agnn_hw::floorplan::Floorplan;

/// Reference GPU (RTX 3090) street price in USD.
pub const GPU_PRICE_USD: f64 = 1_500.0;

/// One FPGA evaluation board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Board {
    /// Marketing name.
    pub name: &'static str,
    /// Usable LUT count.
    pub luts: u64,
    /// Approximate board price, USD.
    pub price_usd: f64,
}

impl Board {
    /// The board's floorplan at the fixed 70:30 UPE:SCR split.
    pub fn floorplan(&self) -> Floorplan {
        Floorplan::new(self.luts, 0.70)
    }

    /// Price normalized to the reference GPU (the Fig. 26b x-axis).
    pub fn normalized_price(&self) -> f64 {
        self.price_usd / GPU_PRICE_USD
    }
}

/// The evaluation catalog, ascending LUT count. The 400 K-LUT entry is the
/// GPU-price-parity anchor; the VPK180 is the paper's prototype board.
pub fn catalog() -> [Board; 6] {
    [
        Board {
            name: "Artix-7 100T",
            luts: 100_000,
            price_usd: 180.0,
        },
        Board {
            name: "Kintex-7 325T",
            luts: 325_000,
            price_usd: 900.0,
        },
        Board {
            name: "Kintex UltraScale KU060",
            luts: 400_000,
            price_usd: 1_500.0,
        },
        Board {
            name: "Virtex UltraScale+ VU9P",
            luts: 1_200_000,
            price_usd: 6_500.0,
        },
        Board {
            name: "Versal VPK120",
            luts: 2_400_000,
            price_usd: 14_000.0,
        },
        Board {
            name: "Versal VPK180",
            luts: 4_100_000,
            price_usd: 28_000.0,
        },
    ]
}

/// Looks up the prototype board (VPK180).
pub fn vpk180() -> Board {
    catalog()[5]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_spans_the_price_range() {
        let boards = catalog();
        for pair in boards.windows(2) {
            assert!(pair[0].luts < pair[1].luts);
            assert!(pair[0].price_usd < pair[1].price_usd);
        }
        // Fig. 26b spans normalized prices ~0.1 to ~10+.
        assert!(boards[0].normalized_price() < 0.2);
        assert!(boards[5].normalized_price() > 10.0);
    }

    #[test]
    fn anchor_board_is_gpu_price_parity() {
        let anchor = catalog()[2];
        assert_eq!(anchor.luts, 400_000);
        assert!((anchor.normalized_price() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vpk180_matches_table_iii() {
        let board = vpk180();
        assert_eq!(board.luts, 4_100_000);
        assert_eq!(board.floorplan().max_upe_count(64), 240);
    }
}

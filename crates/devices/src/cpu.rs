//! The CPU preprocessing baseline (128-core Xeon + DGL).
//!
//! Calibrated so that the GPU baseline's end-to-end advantage averages the
//! paper's 3.4× across the Table II mix (Fig. 18): the CPU path has no
//! per-pass transfer cost but much lower sorting/scanning throughput and
//! the same lock-bound sampling tasks.

use agnn_cost::Workload;

use crate::stage::StageSecs;

/// Xeon host constants and calibrated per-element costs (DGL CPU path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Edge-ordering cost per edge, seconds (framework comparison sort,
    /// partially parallel).
    pub ordering_per_edge: f64,
    /// Reshaping cost per edge, seconds (sequential pointer scan).
    pub reshaping_per_edge: f64,
    /// Selection cost per draw, seconds (dictionary checks).
    pub selecting_per_draw: f64,
    /// Selection cost per neighbor-pool element, seconds.
    pub selecting_per_pool_elem: f64,
    /// Reindexing cost per input, seconds (hash map with rehashing).
    pub reindexing_per_input: f64,
    /// Fixed per-pass framework overhead, seconds.
    pub pass_overhead: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            ordering_per_edge: 12.0e-9,
            reshaping_per_edge: 10.0e-9,
            selecting_per_draw: 40.0e-9,
            selecting_per_pool_elem: 8.0e-9,
            reindexing_per_input: 35.0e-9,
            pass_overhead: 2.0e-3,
        }
    }
}

impl CpuModel {
    /// Per-stage preprocessing seconds for a workload. The CPU never OOMs
    /// on the Table II graphs (512 GB host DRAM).
    pub fn preprocess_secs(&self, workload: &Workload) -> StageSecs {
        let e = workload.edges as f64;
        let s = workload.selections() as f64;
        let pool = workload.pool_elements() as f64;
        let r = workload.reindex_inputs() as f64;
        let overhead = self.pass_overhead / 4.0;
        StageSecs {
            ordering: e * self.ordering_per_edge + overhead,
            reshaping: e * self.reshaping_per_edge + overhead,
            selecting: s * self.selecting_per_draw + pool * self.selecting_per_pool_elem + overhead,
            reindexing: r * self.reindexing_per_input + overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    fn workload(nodes: u64, edges: u64) -> Workload {
        Workload::new(nodes, edges, 3_000, 10, 2)
    }

    #[test]
    fn cpu_is_slower_than_gpu_preprocessing() {
        let cpu = CpuModel::default();
        let gpu = GpuModel::default();
        for (n, e) in [(34_500u64, 495_000u64), (2_450_000, 123_000_000)] {
            let w = workload(n, e);
            let cpu_total = cpu.preprocess_secs(&w).total();
            let gpu_total = gpu.preprocess_secs(&w).unwrap().total() + gpu.upload_secs(&w);
            let ratio = cpu_total / gpu_total;
            assert!(
                (1.5..12.0).contains(&ratio),
                "CPU/GPU preprocessing ratio {ratio} out of the Fig. 18 regime at e={e}"
            );
        }
    }

    #[test]
    fn cpu_handles_taobao_without_oom() {
        let cpu = CpuModel::default();
        let tb = workload(230_000, 400_000_000);
        let secs = cpu.preprocess_secs(&tb);
        assert!(secs.total() > 1.0, "TB takes seconds on the CPU path");
    }

    #[test]
    fn large_graphs_are_conversion_bound_on_cpu_too() {
        let cpu = CpuModel::default();
        let secs = cpu.preprocess_secs(&workload(2_450_000, 123_000_000));
        assert!(secs.ordering + secs.reshaping > 0.9 * secs.total());
    }
}

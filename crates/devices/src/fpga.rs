//! FPGA wall-clock timing: simulator reports → seconds, plus the full-scale
//! analytic report used where functional simulation is infeasible.

use agnn_cost::Workload;
use agnn_hw::engine::{ordering_dram_bytes, reshaping_dram_bytes};
use agnn_hw::kernel::RADIX_STAGES_PER_CYCLE;
use agnn_hw::shell::PcieModel;
use agnn_hw::{HwConfig, HwReport, StageCycles};

use crate::stage::{ServiceStageSecs, StageSecs};

/// VPK180 timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaModel {
    /// Kernel clock, Hz.
    pub clock_hz: f64,
    /// Peak device-DRAM bandwidth, bytes/second.
    pub dram_bandwidth: f64,
}

impl Default for FpgaModel {
    fn default() -> Self {
        FpgaModel {
            clock_hz: 300.0e6,
            dram_bandwidth: 102.4e9,
        }
    }
}

impl FpgaModel {
    /// Converts a report into per-stage seconds: each stage takes the larger
    /// of its compute time and its DRAM-streaming time ("allowing the SCR to
    /// fully saturate the memory interface", §VI-A).
    pub fn stage_secs(&self, report: &HwReport) -> StageSecs {
        let stage = |cycles: u64, bytes: u64| -> f64 {
            (cycles as f64 / self.clock_hz).max(bytes as f64 / self.dram_bandwidth)
        };
        StageSecs {
            ordering: stage(report.cycles.ordering, report.dram_bytes.ordering),
            reshaping: stage(report.cycles.reshaping, report.dram_bytes.reshaping),
            selecting: stage(report.cycles.selecting, report.dram_bytes.selecting),
            reindexing: stage(report.cycles.reindexing, report.dram_bytes.reindexing),
        }
    }

    /// Achieved DRAM bandwidth fraction over the whole preprocessing pass —
    /// the Fig. 18 right-axis metric (59.8 % average, 91.6 % on e-commerce
    /// graphs).
    pub fn bandwidth_utilization(&self, report: &HwReport) -> f64 {
        let total = self.stage_secs(report).total();
        if total <= 0.0 {
            return 0.0;
        }
        (report.total_dram_bytes() as f64 / total / self.dram_bandwidth).min(1.0)
    }

    /// Full-scale analytic report mirroring the engine's cycle and byte
    /// accounting, for Table II-scale workloads the functional simulator
    /// cannot materialize. Matches the simulator within the Fig. 24
    /// accuracy envelope on feasible sizes (verified by integration tests).
    pub fn analytic_report(&self, workload: &Workload, config: HwConfig) -> HwReport {
        let e = workload.edges;
        let n = workload.nodes;
        let sub_e = workload.subgraph_edges();
        let sub_n = workload.subgraph_nodes();
        let key_bits = 32 + bits_for(n);

        let ordering = analytic_ordering_cycles(e, key_bits, config)
            + analytic_ordering_cycles(sub_e, 2 * bits_for(sub_n), config);
        let reshaping = analytic_reshaping_cycles(n, e, config)
            + analytic_reshaping_cycles(sub_n, sub_e, config);

        // Selection: one cycle per draw plus the final per-pool extraction,
        // spread over the UPEs.
        let s = workload.selections();
        let pools = workload.expanded_parents();
        let extract = (workload.degree() / config.upe.width as f64)
            .ceil()
            .max(1.0);
        let selecting =
            ((s as f64 + pools as f64 * extract) / config.upe.count as f64).ceil() as u64;

        // Reindexing: banked single-cycle lookups plus one insert per
        // unique vertex (mirrors `Reindexer::reindex`).
        let r = workload.reindex_inputs();
        let uniques = workload.subgraph_nodes();
        let reindexing = r + uniques;

        let dram = StageCycles {
            ordering: ordering_dram_bytes(e as usize, config.upe.width, config.upe.count)
                + ordering_dram_bytes(sub_e as usize, config.upe.width, config.upe.count),
            reshaping: reshaping_dram_bytes(e as usize, n as usize)
                + reshaping_dram_bytes(sub_e as usize, sub_n as usize),
            selecting: 4 * workload.pool_elements() + 4 * s,
            reindexing: 4 * r + 8 * uniques,
        };
        HwReport {
            cycles: StageCycles {
                ordering,
                reshaping,
                selecting,
                reindexing,
            },
            dram_bytes: dram,
            upe_passes: 0,
            scr_passes: 0,
        }
    }

    /// Analytic per-lifecycle-stage seconds of one served request: ingest
    /// (`delta_bytes` over DMA-main), fabric preprocessing under `config`,
    /// and the subgraph hand-off over DMA-bypass. This is the staged
    /// counterpart of [`FpgaModel::stage_secs`]: serving simulators price
    /// each stage against its own board resource instead of folding the
    /// PCIe legs into one engine total.
    pub fn service_secs(
        &self,
        workload: &Workload,
        config: HwConfig,
        pcie: &PcieModel,
        delta_bytes: u64,
    ) -> ServiceStageSecs {
        ServiceStageSecs {
            ingest: pcie.transfer_secs(delta_bytes),
            preprocess: self.stage_secs(&self.analytic_report(workload, config)),
            compute: pcie.transfer_secs(workload.subgraph_bytes()),
        }
    }

    /// Timing-aware configuration search: picks the bitstream pair from the
    /// `space`-restricted search space with the lowest *wall-clock*
    /// preprocessing estimate (Table I cycles plus the DRAM terms the pure
    /// cycle model cannot see). This is what the `DynPre` evaluation and the
    /// scenario engine use; the Table I-only search lives in
    /// [`agnn_cost::optimizer`] and is compared against the simulator in
    /// the Fig. 24 harness.
    pub fn search(
        &self,
        workload: &Workload,
        plan: &agnn_hw::floorplan::Floorplan,
        space: agnn_cost::SearchSpace,
    ) -> HwConfig {
        use agnn_cost::SearchSpace;
        let score = |config: HwConfig| -> f64 {
            self.stage_secs(&self.analytic_report(workload, config))
                .total()
        };
        match space {
            SearchSpace::AreaOnly => {
                let mut best: Option<(f64, HwConfig)> = None;
                for upe_fraction in [0.5, 0.6, 0.7, 0.8, 0.9] {
                    let candidate_plan = plan.with_upe_fraction(upe_fraction);
                    let config = agnn_cost::optimizer::search(
                        workload,
                        &candidate_plan,
                        SearchSpace::AreaOnly,
                    );
                    let total = score(config);
                    if best.is_none_or(|(cost, _)| total < cost) {
                        best = Some((total, config));
                    }
                }
                best.expect("non-empty split candidates").1
            }
            SearchSpace::ScrOnly => {
                let library = agnn_cost::BitstreamLibrary::for_floorplan(plan);
                let default_upe =
                    agnn_cost::optimizer::search(workload, plan, SearchSpace::ScrOnly).upe;
                let mut best: Option<(f64, HwConfig)> = None;
                for &scr in library.scr_variants() {
                    let config = HwConfig {
                        upe: default_upe,
                        scr,
                    };
                    let total = score(config);
                    if best.is_none_or(|(cost, _)| total < cost) {
                        best = Some((total, config));
                    }
                }
                best.expect("non-empty SCR ladder").1
            }
            SearchSpace::Full => {
                let library = agnn_cost::BitstreamLibrary::for_floorplan(plan);
                let mut best: Option<(f64, HwConfig)> = None;
                for &upe in library.upe_variants() {
                    for &scr in library.scr_variants() {
                        let config = HwConfig { upe, scr };
                        let total = score(config);
                        if best.is_none_or(|(cost, _)| total < cost) {
                            best = Some((total, config));
                        }
                    }
                }
                best.expect("non-empty bitstream library").1
            }
        }
    }
}

fn bits_for(n: u64) -> u32 {
    64 - n.max(1).leading_zeros()
}

fn analytic_ordering_cycles(edges: u64, key_bits: u32, config: HwConfig) -> u64 {
    if edges == 0 {
        return 0;
    }
    let w = config.upe.width as u64;
    let count = config.upe.count as u64;
    let chunks = edges.div_ceil(w);
    let chunk_cycles = u64::from(key_bits.div_ceil(RADIX_STAGES_PER_CYCLE));
    let mut cycles = chunks.div_ceil(count) * chunk_cycles;
    // Parallel merge rounds (jobs >= UPE count) stream all edges at w/2 per
    // cycle per UPE; the remaining merge tree runs as a pipelined cascade
    // bounded by the root merger (mirrors `UpeKernel::sort_edges`).
    let half = (w / 2).max(1);
    let mut jobs = chunks / 2;
    while jobs >= count && jobs >= 1 {
        cycles += edges.div_ceil(half * count);
        if jobs == 1 {
            break;
        }
        jobs = jobs.div_ceil(2);
    }
    if jobs >= 1 && jobs < count {
        cycles += edges.div_ceil(half);
    }
    cycles
}

fn analytic_reshaping_cycles(nodes: u64, edges: u64, config: HwConfig) -> u64 {
    (nodes.div_ceil(config.scr.slots as u64)).max(edges.div_ceil(config.scr.width as u64)) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_algo::pipeline::SampleParams;
    use agnn_graph::{generate, Vid};
    use agnn_hw::engine::AutoGnnEngine;

    fn config() -> HwConfig {
        HwConfig::vpk180_default()
    }

    // (tests below share this default configuration)

    #[test]
    fn stage_secs_take_the_binding_resource() {
        let model = FpgaModel::default();
        let report = HwReport {
            cycles: StageCycles {
                ordering: 300_000_000, // 1 s of compute
                ..StageCycles::default()
            },
            dram_bytes: StageCycles {
                ordering: 5_120_000,        // ~50 µs of DRAM
                reshaping: 102_400_000_000, // 1 s of DRAM
                ..StageCycles::default()
            },
            upe_passes: 0,
            scr_passes: 0,
        };
        let secs = model.stage_secs(&report);
        assert!((secs.ordering - 1.0).abs() < 1e-6, "compute-bound stage");
        assert!((secs.reshaping - 1.0).abs() < 1e-6, "memory-bound stage");
    }

    #[test]
    fn analytic_report_tracks_functional_simulator() {
        // Run the real engine on a scaled graph and compare the analytic
        // model at the same parameters.
        let coo = generate::power_law(2_000, 40_000, 0.8, 21);
        let batch: Vec<Vid> = (0..50).map(Vid).collect();
        let params = SampleParams::new(10, 2);
        let mut engine = AutoGnnEngine::new(config());
        let run = engine.preprocess(&coo, &batch, &params, 9);

        let workload = Workload::new(2_000, 40_000, 50, 10, 2);
        let analytic = FpgaModel::default().analytic_report(&workload, config());
        let sim = run.report.total_cycles() as f64;
        let est = analytic.total_cycles() as f64;
        let ratio = est / sim;
        assert!(
            (0.3..3.0).contains(&ratio),
            "analytic {est} vs simulated {sim} cycles (ratio {ratio})"
        );
    }

    #[test]
    fn edge_heavy_workloads_saturate_memory() {
        // TB-like: 400M edges, 230K nodes — the 91.6% utilization regime.
        let model = FpgaModel::default();
        let tb = Workload::new(230_000, 400_000_000, 3_000, 10, 2);
        let report = model.analytic_report(&tb, config());
        let util = model.bandwidth_utilization(&report);
        assert!(util > 0.6, "e-commerce graphs are memory-bound, got {util}");
    }

    #[test]
    fn small_workloads_leave_bandwidth_idle() {
        let model = FpgaModel::default();
        let ph = Workload::new(34_500, 495_000, 3_000, 10, 2);
        let report = model.analytic_report(&ph, config());
        let util = model.bandwidth_utilization(&report);
        assert!(util < 0.6, "small graphs are latency-bound, got {util}");
    }

    #[test]
    fn analytic_cycles_scale_with_edges() {
        let model = FpgaModel::default();
        let small =
            model.analytic_report(&Workload::new(100_000, 1_000_000, 3_000, 10, 2), config());
        let large =
            model.analytic_report(&Workload::new(100_000, 64_000_000, 3_000, 10, 2), config());
        assert!(large.cycles.ordering > 10 * small.cycles.ordering);
        assert!(large.cycles.reshaping >= small.cycles.reshaping);
    }

    #[test]
    fn zero_edges_cost_nothing_to_order() {
        assert_eq!(analytic_ordering_cycles(0, 48, config()), 0);
    }

    #[test]
    fn service_secs_price_each_stage_against_its_resource() {
        let model = FpgaModel::default();
        let pcie = PcieModel::default();
        let w = Workload::new(100_000, 1_000_000, 3_000, 10, 2);
        let cold = model.service_secs(&w, config(), &pcie, w.coo_bytes());
        assert_eq!(cold.ingest, pcie.transfer_secs(w.coo_bytes()));
        assert_eq!(cold.compute, pcie.transfer_secs(w.subgraph_bytes()));
        assert_eq!(
            cold.preprocess,
            model.stage_secs(&model.analytic_report(&w, config()))
        );
        let resident = model.service_secs(&w, config(), &pcie, 0);
        assert_eq!(resident.ingest, 0.0, "resident graph uploads nothing");
        assert_eq!(resident.fabric_secs(), cold.fabric_secs());
    }
}

//! The GPU preprocessing baseline (RTX 3090 + DGL).
//!
//! An analytic model calibrated to the paper's own measurements of this
//! exact system (§III, §VI): massively parallel, bandwidth-efficient edge
//! ordering; atomics-bound reshaping ("heavy atomic operations which limit
//! GPU performance"); dictionary-synchronized selection; mutex-guarded
//! reindexing; a fixed per-pass framework overhead; full-graph re-uploads
//! every pass ("due to the lack of GPU's internal memory, the entire graph
//! must be fetched from the host again before each preprocessing pass",
//! §VI-B); and a 24 GB memory gate that OOMs Taobao (Figs. 5/6).

use agnn_cost::Workload;

use crate::stage::StageSecs;

/// RTX 3090 device constants and calibrated per-element costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Device memory in bytes (24 GB on the RTX 3090).
    pub memory_bytes: u64,
    /// Peak HBM bandwidth, bytes/second (936 GB/s).
    pub peak_bandwidth: f64,
    /// Effective PCIe bandwidth for host↔device transfers, bytes/second.
    pub pcie_bandwidth: f64,
    /// Edge-ordering cost per edge, seconds (radix sort, bandwidth-bound).
    pub ordering_per_edge: f64,
    /// Reshaping cost per edge, seconds (histogram hashing atomics).
    pub reshaping_per_edge: f64,
    /// Reshaping cost per node, seconds (pointer-array pass).
    pub reshaping_per_node: f64,
    /// Selection cost per draw, seconds (synchronized dictionary).
    pub selecting_per_draw: f64,
    /// Selection cost per neighbor-pool element, seconds (gather).
    pub selecting_per_pool_elem: f64,
    /// Reindexing cost per input, seconds (mutex-guarded hash map).
    pub reindexing_per_input: f64,
    /// Fixed per-preprocessing-pass overhead, seconds (kernel launches,
    /// synchronization, framework dispatch).
    pub pass_overhead: f64,
    /// Working-set expansion over the raw COO during DGL conversion
    /// (multiple tensor copies); drives the OOM gate.
    pub working_set_factor: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            memory_bytes: 24_000_000_000,
            peak_bandwidth: 936.0e9,
            pcie_bandwidth: 25.0e9,
            ordering_per_edge: 0.1e-9,
            reshaping_per_edge: 4.5e-9,
            reshaping_per_node: 1.0e-9,
            selecting_per_draw: 5.0e-9,
            selecting_per_pool_elem: 2.0e-9,
            reindexing_per_input: 6.0e-9,
            pass_overhead: 5.0e-3,
            working_set_factor: 8.0,
        }
    }
}

/// Per-stage serialized fractions of the GPU implementation — the portion
/// of each task that runs under locks/atomics and cannot parallelize
/// (Fig. 10: 64.1 % of overall execution is serialized on average).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerializedFractions {
    /// Edge ordering (radix sort; essentially lock-free).
    pub ordering: f64,
    /// Data reshaping (atomic histogram updates).
    pub reshaping: f64,
    /// Unique random selection (synchronized dictionary).
    pub selecting: f64,
    /// Subgraph reindexing (mutex-guarded map).
    pub reindexing: f64,
}

impl Default for SerializedFractions {
    fn default() -> Self {
        SerializedFractions {
            ordering: 0.05,
            reshaping: 0.65,
            selecting: 0.75,
            reindexing: 0.85,
        }
    }
}

impl GpuModel {
    /// Whether preprocessing this workload exceeds device memory
    /// (the Fig. 5/6 `OOM` marker on TB).
    pub fn would_oom(&self, workload: &Workload) -> bool {
        let working_set = workload.coo_bytes() as f64 * self.working_set_factor;
        working_set > self.memory_bytes as f64
    }

    /// Per-stage preprocessing seconds for a workload.
    ///
    /// Returns `None` on OOM.
    pub fn preprocess_secs(&self, workload: &Workload) -> Option<StageSecs> {
        if self.would_oom(workload) {
            return None;
        }
        Some(self.preprocess_secs_unchecked(workload))
    }

    /// Per-stage preprocessing seconds *ignoring* the memory gate — the
    /// would-be times used by share-over-time projections (Fig. 7), where
    /// the paper plots task proportions past any single device's capacity.
    pub fn preprocess_secs_unchecked(&self, workload: &Workload) -> StageSecs {
        let e = workload.edges as f64;
        let n = workload.nodes as f64;
        let s = workload.selections() as f64;
        let pool = workload.pool_elements() as f64;
        let r = workload.reindex_inputs() as f64;
        // The per-pass overhead is spread over the four stages evenly.
        let overhead = self.pass_overhead / 4.0;
        StageSecs {
            ordering: e * self.ordering_per_edge + overhead,
            reshaping: e * self.reshaping_per_edge + n * self.reshaping_per_node + overhead,
            selecting: s * self.selecting_per_draw + pool * self.selecting_per_pool_elem + overhead,
            reindexing: r * self.reindexing_per_input + overhead,
        }
    }

    /// Host→device transfer seconds for one preprocessing pass: the whole
    /// COO crosses PCIe every pass.
    pub fn upload_secs(&self, workload: &Workload) -> f64 {
        workload.coo_bytes() as f64 / self.pcie_bandwidth
    }

    /// Fraction of total preprocessing time that is serialized
    /// (Fig. 10a) — the stage-time-weighted mean of the per-stage fractions.
    pub fn serialized_fraction(
        &self,
        workload: &Workload,
        fractions: &SerializedFractions,
    ) -> Option<f64> {
        let secs = self.preprocess_secs(workload)?;
        let total = secs.total();
        if total <= 0.0 {
            return Some(0.0);
        }
        Some(
            (secs.ordering * fractions.ordering
                + secs.reshaping * fractions.reshaping
                + secs.selecting * fractions.selecting
                + secs.reindexing * fractions.reindexing)
                / total,
        )
    }

    /// Share of serialized time per sampling-side task (Fig. 10b): returns
    /// `(selecting, reshaping, reindexing)` percentages of the
    /// non-parallelizable time.
    pub fn serial_task_shares(
        &self,
        workload: &Workload,
        fractions: &SerializedFractions,
    ) -> Option<(f64, f64, f64)> {
        let secs = self.preprocess_secs(workload)?;
        let sel = secs.selecting * fractions.selecting;
        let resh = secs.reshaping * fractions.reshaping;
        let reidx = secs.reindexing * fractions.reindexing;
        let total = sel + resh + reidx;
        if total <= 0.0 {
            return Some((0.0, 0.0, 0.0));
        }
        Some((
            sel / total * 100.0,
            resh / total * 100.0,
            reidx / total * 100.0,
        ))
    }

    /// Achieved memory-bandwidth fraction during preprocessing. The paper
    /// measures 30.3 % on average (§III-A): serialized phases leave the
    /// memory system idle, so utilization ≈ parallel fraction × streaming
    /// efficiency.
    pub fn bandwidth_utilization(
        &self,
        workload: &Workload,
        fractions: &SerializedFractions,
    ) -> Option<f64> {
        let serialized = self.serialized_fraction(workload, fractions)?;
        // Streaming efficiency of the parallel portions on this workload mix.
        const STREAMING_EFFICIENCY: f64 = 0.85;
        Some((1.0 - serialized) * STREAMING_EFFICIENCY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(nodes: u64, edges: u64) -> Workload {
        Workload::new(nodes, edges, 3_000, 10, 2)
    }

    /// Table II full-scale shapes.
    fn ph() -> Workload {
        workload(34_500, 495_000)
    }
    fn am() -> Workload {
        workload(2_450_000, 123_000_000)
    }
    fn tb() -> Workload {
        workload(230_000, 400_000_000)
    }

    #[test]
    fn taobao_ooms_amazon_does_not() {
        let gpu = GpuModel::default();
        assert!(gpu.would_oom(&tb()), "Fig. 5: TB OOMs on the 24 GB GPU");
        assert!(!gpu.would_oom(&am()));
        assert!(gpu.preprocess_secs(&tb()).is_none());
    }

    #[test]
    fn small_graphs_are_sampling_bound_large_graphs_reshaping_bound() {
        let gpu = GpuModel::default();
        let small = gpu.preprocess_secs(&ph()).unwrap();
        assert!(
            small.selecting + small.reindexing > small.ordering + small.reshaping,
            "§III-A: sampling dominates below ~500K edges"
        );
        let large = gpu.preprocess_secs(&am()).unwrap();
        let shares = large.shares_pct();
        assert!(shares[1] > 80.0, "reshaping ~86% at AM, got {}", shares[1]);
        assert!(shares[0] < 5.0, "ordering ~1.8% at AM, got {}", shares[0]);
    }

    #[test]
    fn serialized_fraction_is_near_paper_average() {
        let gpu = GpuModel::default();
        let fr = SerializedFractions::default();
        // Mid-size social graph: the Fig. 10 average regime.
        let mid = workload(233_000, 23_200_000);
        let serialized = gpu.serialized_fraction(&mid, &fr).unwrap();
        assert!(
            (0.5..0.8).contains(&serialized),
            "~64.1% serialized, got {serialized}"
        );
    }

    #[test]
    fn serial_task_shares_sum_to_hundred() {
        let gpu = GpuModel::default();
        let fr = SerializedFractions::default();
        let (sel, resh, reidx) = gpu.serial_task_shares(&ph(), &fr).unwrap();
        assert!((sel + resh + reidx - 100.0).abs() < 1e-9);
        assert!(sel > 0.0 && resh > 0.0 && reidx > 0.0);
    }

    #[test]
    fn bandwidth_utilization_is_low() {
        let gpu = GpuModel::default();
        let fr = SerializedFractions::default();
        let mid = workload(233_000, 23_200_000);
        let util = gpu.bandwidth_utilization(&mid, &fr).unwrap();
        assert!((0.2..0.45).contains(&util), "~30.3%, got {util}");
    }

    #[test]
    fn upload_time_scales_with_graph() {
        let gpu = GpuModel::default();
        assert!(gpu.upload_secs(&am()) > 100.0 * gpu.upload_secs(&ph()));
    }
}

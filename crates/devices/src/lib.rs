//! Device models for the AutoGNN evaluation.
//!
//! The paper's testbed — a 128-core Xeon, an RTX 3090 running DGL, and the
//! VPK180 accelerator — is not available offline, so this crate provides
//! calibrated analytic models of each device (see `DESIGN.md`'s substitution
//! table). All models consume the same [`agnn_cost::Workload`] description
//! or a simulated [`agnn_hw::HwReport`]:
//!
//! - [`gpu`] — the DGL/RTX 3090 preprocessing baseline with its measured
//!   serialized fractions, atomics penalties and 24 GB OOM gate (§III,
//!   Figs. 5–7, 10);
//! - [`cpu`] — the DGL CPU preprocessing baseline;
//! - [`fpga`] — converts simulator reports to wall-clock time
//!   (`max(compute, DRAM)` per stage) and provides the full-scale analytic
//!   report used where functional simulation is infeasible;
//! - [`stage`] — the shared per-stage seconds type;
//! - [`power`] — power/energy accounting (Fig. 19);
//! - [`boards`] — the FPGA board catalog for the LUT/price sweeps (Fig. 26);
//! - [`accel`] — external accelerator baselines: GSamp, the FPGA-HBM
//!   sampler, merge/insertion sorters and FLAG (Figs. 18, 27).

pub mod accel;
pub mod boards;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod power;
pub mod stage;

pub use stage::{ServiceStageSecs, StageSecs};

//! Power and energy accounting (Fig. 19).

/// Measured device power draws (§VI-A: "DynPre draws only 9.3 W on the FPGA,
/// whereas GPU dissipates 183 W for the same workload").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// AutoGNN preprocessing power, watts.
    pub fpga_preprocess_w: f64,
    /// GPU preprocessing power, watts.
    pub gpu_preprocess_w: f64,
    /// GPU model-inference power, watts (both systems infer on the GPU).
    pub gpu_inference_w: f64,
    /// Host CPU preprocessing power, watts.
    pub cpu_preprocess_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            fpga_preprocess_w: 9.3,
            gpu_preprocess_w: 183.0,
            gpu_inference_w: 280.0,
            cpu_preprocess_w: 150.0,
        }
    }
}

impl PowerModel {
    /// Preprocessing power ratio GPU / FPGA (the paper reports 19.7×).
    pub fn preprocess_power_ratio(&self) -> f64 {
        self.gpu_preprocess_w / self.fpga_preprocess_w
    }

    /// End-to-end energy in joules for a system that preprocesses at
    /// `preprocess_w` for `preprocess_secs` and then infers on the GPU.
    pub fn end_to_end_energy(
        &self,
        preprocess_w: f64,
        preprocess_secs: f64,
        inference_secs: f64,
    ) -> f64 {
        preprocess_w * preprocess_secs + self.gpu_inference_w * inference_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_ratio_matches_paper() {
        let p = PowerModel::default();
        assert!((p.preprocess_power_ratio() - 19.7).abs() < 0.1);
    }

    #[test]
    fn faster_preprocessing_saves_energy() {
        let p = PowerModel::default();
        // GPU: 1 s preprocessing; AutoGNN: 0.4 s at 9.3 W. Same inference.
        let gpu = p.end_to_end_energy(p.gpu_preprocess_w, 1.0, 0.2);
        let fpga = p.end_to_end_energy(p.fpga_preprocess_w, 0.4, 0.2);
        let ratio = gpu / fpga;
        assert!(ratio > 3.0, "Fig. 19 energy gap ~3.3x, got {ratio}");
    }

    #[test]
    fn energy_is_linear_in_time() {
        let p = PowerModel::default();
        let one = p.end_to_end_energy(10.0, 1.0, 0.0);
        let two = p.end_to_end_energy(10.0, 2.0, 0.0);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }
}

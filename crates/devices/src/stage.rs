//! Per-stage wall-clock seconds, shared by every device model.

/// Seconds spent in each of the four preprocessing tasks (the unit of every
/// latency-breakdown figure).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSecs {
    /// Edge ordering.
    pub ordering: f64,
    /// Data reshaping.
    pub reshaping: f64,
    /// Unique random selection.
    pub selecting: f64,
    /// Subgraph reindexing.
    pub reindexing: f64,
}

impl StageSecs {
    /// Total preprocessing seconds.
    pub fn total(&self) -> f64 {
        self.ordering + self.reshaping + self.selecting + self.reindexing
    }

    /// Element-wise addition.
    pub fn add(&self, other: &StageSecs) -> StageSecs {
        StageSecs {
            ordering: self.ordering + other.ordering,
            reshaping: self.reshaping + other.reshaping,
            selecting: self.selecting + other.selecting,
            reindexing: self.reindexing + other.reindexing,
        }
    }

    /// Element-wise scaling.
    pub fn scale(&self, factor: f64) -> StageSecs {
        StageSecs {
            ordering: self.ordering * factor,
            reshaping: self.reshaping * factor,
            selecting: self.selecting * factor,
            reindexing: self.reindexing * factor,
        }
    }

    /// The stages as `(name, seconds)` pairs in pipeline order.
    pub fn as_pairs(&self) -> [(&'static str, f64); 4] {
        [
            ("ordering", self.ordering),
            ("reshaping", self.reshaping),
            ("selecting", self.selecting),
            ("reindexing", self.reindexing),
        ]
    }

    /// Percentage share of each stage in the total, in pipeline order.
    /// Returns zeros for an all-zero breakdown.
    pub fn shares_pct(&self) -> [f64; 4] {
        let total = self.total();
        if total <= 0.0 {
            return [0.0; 4];
        }
        [
            self.ordering / total * 100.0,
            self.reshaping / total * 100.0,
            self.selecting / total * 100.0,
            self.reindexing / total * 100.0,
        ]
    }
}

/// Per-lifecycle-stage seconds of one served request: the §II-B staged
/// pipeline (PCIe ingest → fabric preprocessing → subgraph hand-off) as a
/// timing breakdown. `ingest` and `compute` ride the PCIe DMA engines;
/// `preprocess` occupies the reconfigurable fabric — which is why serving
/// layers can overlap one request's ingest with another's preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceStageSecs {
    /// Host→device graph-delta upload over DMA-main.
    pub ingest: f64,
    /// Fabric preprocessing, with its four-task breakdown.
    pub preprocess: StageSecs,
    /// Device→GPU subgraph hand-off over DMA-bypass.
    pub compute: f64,
}

impl ServiceStageSecs {
    /// Serial (un-pipelined) seconds: every stage back to back.
    pub fn total(&self) -> f64 {
        self.ingest + self.preprocess.total() + self.compute
    }

    /// Seconds on the PCIe DMA engines (ingest + hand-off).
    pub fn dma_secs(&self) -> f64 {
        self.ingest + self.compute
    }

    /// Seconds on the reconfigurable fabric.
    pub fn fabric_secs(&self) -> f64 {
        self.preprocess.total()
    }

    /// The stages as `(name, seconds)` pairs in lifecycle order.
    pub fn as_pairs(&self) -> [(&'static str, f64); 3] {
        [
            ("ingest", self.ingest),
            ("preprocess", self.preprocess.total()),
            ("compute", self.compute),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageSecs {
        StageSecs {
            ordering: 1.0,
            reshaping: 2.0,
            selecting: 3.0,
            reindexing: 4.0,
        }
    }

    #[test]
    fn total_and_add_and_scale() {
        let s = sample();
        assert_eq!(s.total(), 10.0);
        assert_eq!(s.add(&s).total(), 20.0);
        assert_eq!(s.scale(0.5).total(), 5.0);
    }

    #[test]
    fn shares_sum_to_hundred() {
        let shares = sample().shares_pct();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(shares[3], 40.0);
    }

    #[test]
    fn zero_breakdown_has_zero_shares() {
        assert_eq!(StageSecs::default().shares_pct(), [0.0; 4]);
    }

    #[test]
    fn pairs_are_in_pipeline_order() {
        let names: Vec<&str> = sample().as_pairs().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["ordering", "reshaping", "selecting", "reindexing"]);
    }

    #[test]
    fn service_stage_secs_split_by_resource() {
        let service = ServiceStageSecs {
            ingest: 0.5,
            preprocess: sample(),
            compute: 0.25,
        };
        assert_eq!(service.total(), 10.75);
        assert_eq!(service.dma_secs(), 0.75);
        assert_eq!(service.fabric_secs(), 10.0);
        let names: Vec<&str> = service.as_pairs().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["ingest", "preprocess", "compute"]);
        assert_eq!(ServiceStageSecs::default().total(), 0.0);
    }
}

//! Node-embedding tables and the subgraph gather step.
//!
//! The original embedding table is "ordered by VIDs"; after sampling, "a new
//! embedding table [is generated] by extracting the embeddings of the
//! sampled vertices" through the reindexer's mapping (§II-B, Fig. 4b).

use agnn_graph::Vid;

use crate::tensor::Matrix;

/// A full-graph node-embedding table (one row per vertex).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureTable {
    features: Matrix,
}

impl FeatureTable {
    /// A deterministic random table for `num_vertices` nodes of `dim`
    /// features.
    pub fn random(num_vertices: usize, dim: usize, seed: u64) -> Self {
        FeatureTable {
            features: Matrix::random(num_vertices, dim, seed),
        }
    }

    /// Wraps an existing matrix as a feature table.
    pub fn from_matrix(features: Matrix) -> Self {
        FeatureTable { features }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.features.rows()
    }

    /// The backing matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.features
    }

    /// Builds the sampled-subgraph embedding table: row `new` holds the
    /// features of original vertex `new_to_old[new]`.
    ///
    /// # Panics
    ///
    /// Panics if a mapped vertex is out of range.
    pub fn gather(&self, new_to_old: &[Vid]) -> Matrix {
        let indices: Vec<usize> = new_to_old.iter().map(|v| v.index()).collect();
        self.features.gather_rows(&indices)
    }

    /// Bytes of the gathered subgraph table (4-byte floats) — the quantity
    /// the GPU must load per inference.
    pub fn gather_bytes(&self, num_sampled: usize) -> u64 {
        num_sampled as u64 * self.dim() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_reorders_rows() {
        let table = FeatureTable::random(10, 4, 3);
        let gathered = table.gather(&[Vid(7), Vid(0), Vid(7)]);
        assert_eq!(gathered.rows(), 3);
        assert_eq!(gathered.row(0), table.matrix().row(7));
        assert_eq!(gathered.row(1), table.matrix().row(0));
        assert_eq!(gathered.row(0), gathered.row(2));
    }

    #[test]
    fn gather_bytes_counts_floats() {
        let table = FeatureTable::random(10, 16, 1);
        assert_eq!(table.gather_bytes(100), 100 * 16 * 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_bad_vids() {
        FeatureTable::random(4, 2, 0).gather(&[Vid(9)]);
    }

    #[test]
    fn dimensions_are_exposed() {
        let table = FeatureTable::random(5, 8, 2);
        assert_eq!(table.dim(), 8);
        assert_eq!(table.num_vertices(), 5);
    }
}

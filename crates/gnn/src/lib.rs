//! GNN models over sampled subgraphs.
//!
//! AutoGNN's product is a sampled CSC subgraph handed to "GPUs or other GNN
//! accelerators" for inference (§I). This crate closes the loop: it executes
//! real forward passes of the four evaluated models — GIN, GraphSAGE, GCN,
//! GAT (§VI "Sensitivity on model parameters") — over
//! [`agnn_algo::pipeline::SampledSubgraph`]s, counts their FLOPs, and maps
//! those FLOPs to GPU inference latency.
//!
//! - [`tensor`] — a minimal dense `f32` matrix with the operations GNN
//!   layers need;
//! - [`features`] — seeded node-embedding tables and the gather step driven
//!   by the subgraph's `new_to_old` list (Fig. 4b);
//! - [`models`] — the aggregation/transformation passes (§II-A, Fig. 2);
//! - [`timing`] — the GPU inference-latency model used by the end-to-end
//!   figures.
//!
//! # Examples
//!
//! ```
//! use agnn_algo::pipeline::{preprocess, SampleParams};
//! use agnn_gnn::features::FeatureTable;
//! use agnn_gnn::models::{forward, GnnModel, GnnSpec};
//! use agnn_graph::{generate, Vid};
//!
//! let coo = generate::power_law(200, 2_000, 0.8, 1);
//! let out = preprocess(&coo, &[Vid(0), Vid(1)], &SampleParams::new(5, 2), 3);
//! let table = FeatureTable::random(200, 16, 7);
//! let spec = GnnSpec::new(GnnModel::GraphSage, 2, 16, 16);
//! let result = forward(&spec, &out.subgraph, &table, 11);
//! assert_eq!(result.embeddings.rows(), 2);
//! ```

pub mod features;
pub mod models;
pub mod tensor;
pub mod timing;

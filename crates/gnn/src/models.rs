//! The four evaluated GNN models: GIN, GraphSAGE, GCN, GAT.
//!
//! Each model is the aggregation-transformation cycle of §II-A (Fig. 2):
//! per layer, every node aggregates its in-neighbors' embeddings from the
//! sampled CSC subgraph and transforms the result; after the last layer the
//! batch nodes' rows are the inference output.

use agnn_algo::pipeline::SampledSubgraph;
use agnn_graph::Vid;

use crate::features::FeatureTable;
use crate::tensor::{leaky_relu, Matrix};

/// The evaluated model families, in the paper's computational-intensity
/// order (§VI "we analyzed four distinctive models – GIN, GraphSAGE, GCN,
/// GAT – ordered by computational intensity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnModel {
    /// Graph isomorphism network: sum aggregation + MLP.
    Gin,
    /// GraphSAGE: mean aggregation + concatenated linear transform.
    GraphSage,
    /// Graph convolutional network: symmetric-normalized aggregation.
    Gcn,
    /// Graph attention network: attention-weighted aggregation.
    Gat,
}

impl GnnModel {
    /// All models in figure order.
    pub const ALL: [GnnModel; 4] = [
        GnnModel::Gin,
        GnnModel::GraphSage,
        GnnModel::Gcn,
        GnnModel::Gat,
    ];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            GnnModel::Gin => "GIN",
            GnnModel::GraphSage => "GSage",
            GnnModel::Gcn => "GCN",
            GnnModel::Gat => "GAT",
        }
    }

    /// Relative GPU cost per FLOP-equivalent — the knob that reproduces the
    /// paper's intensity ordering in the timing model (sparse attention and
    /// normalization are much less efficient on GPUs than dense MLPs).
    pub fn intensity(self) -> f64 {
        match self {
            GnnModel::Gin => 1.0,
            GnnModel::GraphSage => 1.5,
            GnnModel::Gcn => 2.5,
            GnnModel::Gat => 6.0,
        }
    }
}

/// A model instantiation: family, depth and dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnSpec {
    /// Model family.
    pub model: GnnModel,
    /// Number of layers (hops).
    pub layers: u32,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden/output dimension of every layer.
    pub hidden_dim: usize,
}

impl GnnSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(model: GnnModel, layers: u32, in_dim: usize, hidden_dim: usize) -> Self {
        assert!(in_dim > 0 && hidden_dim > 0, "dimensions must be positive");
        GnnSpec {
            model,
            layers,
            in_dim,
            hidden_dim,
        }
    }

    /// The Table III default: 2-layer GraphSAGE.
    pub fn table_iii_default() -> Self {
        GnnSpec::new(GnnModel::GraphSage, 2, 128, 128)
    }
}

/// Inference output: batch-node embeddings plus the FLOPs spent.
#[derive(Debug, Clone, PartialEq)]
pub struct Forward {
    /// One row per batch node.
    pub embeddings: Matrix,
    /// Dense + per-edge floating-point operations performed.
    pub flops: u64,
}

/// Runs inference over a sampled subgraph: gathers the subgraph feature
/// table and applies `spec.layers` aggregation-transformation cycles, then
/// returns the batch nodes' embeddings.
///
/// Weights are deterministic in `weight_seed`.
///
/// # Panics
///
/// Panics if the feature table does not cover the subgraph's original
/// vertices.
pub fn forward(
    spec: &GnnSpec,
    subgraph: &SampledSubgraph,
    table: &FeatureTable,
    weight_seed: u64,
) -> Forward {
    assert_eq!(
        table.dim(),
        spec.in_dim,
        "feature table dimension must match the model input"
    );
    let mut h = table.gather(&subgraph.new_to_old);
    let mut flops = 0u64;
    for layer in 0..spec.layers {
        let in_dim = if layer == 0 {
            spec.in_dim
        } else {
            spec.hidden_dim
        };
        let seed = weight_seed ^ (u64::from(layer) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h = apply_layer(
            spec.model,
            &h,
            subgraph,
            in_dim,
            spec.hidden_dim,
            seed,
            &mut flops,
        );
    }
    let batch_rows: Vec<usize> = subgraph.batch_new.iter().map(|v| v.index()).collect();
    Forward {
        embeddings: h.gather_rows(&batch_rows),
        flops,
    }
}

fn apply_layer(
    model: GnnModel,
    h: &Matrix,
    subgraph: &SampledSubgraph,
    in_dim: usize,
    out_dim: usize,
    seed: u64,
    flops: &mut u64,
) -> Matrix {
    let csc = &subgraph.csc;
    let n = csc.num_vertices();
    match model {
        GnnModel::Gin => {
            // (1 + eps)·h_v + sum of neighbors, then a 2-layer MLP.
            const EPS: f32 = 0.1;
            let mut agg = Matrix::zeros(n, in_dim);
            for v in 0..n {
                let row: Vec<f32> = h.row(v).iter().map(|x| (1.0 + EPS) * x).collect();
                agg.row_mut(v).copy_from_slice(&row);
                for &u in csc.neighbors(Vid::from_index(v)) {
                    for (a, b) in agg.row_mut(v).iter_mut().zip(h.row(u.index())) {
                        *a += b;
                    }
                }
                *flops += 2 * (csc.degree(Vid::from_index(v)) as u64 + 1) * in_dim as u64;
            }
            let w1 = Matrix::random(in_dim, out_dim, seed);
            let w2 = Matrix::random(out_dim, out_dim, seed ^ 1);
            *flops += agg.matmul_flops(&w1);
            let mut hidden = agg.matmul(&w1);
            hidden.relu();
            *flops += hidden.matmul_flops(&w2);
            let mut out = hidden.matmul(&w2);
            out.relu();
            out
        }
        GnnModel::GraphSage => {
            // concat(h_v, mean of neighbors) · W.
            let mut agg = Matrix::zeros(n, in_dim);
            for v in 0..n {
                let neighbors = csc.neighbors(Vid::from_index(v));
                if neighbors.is_empty() {
                    continue;
                }
                for &u in neighbors {
                    for (a, b) in agg.row_mut(v).iter_mut().zip(h.row(u.index())) {
                        *a += b;
                    }
                }
                let inv = 1.0 / neighbors.len() as f32;
                for a in agg.row_mut(v) {
                    *a *= inv;
                }
                *flops += 2 * neighbors.len() as u64 * in_dim as u64;
            }
            let cat = h.concat_cols(&agg);
            let w = Matrix::random(2 * in_dim, out_dim, seed);
            *flops += cat.matmul_flops(&w);
            let mut out = cat.matmul(&w);
            out.relu();
            out
        }
        GnnModel::Gcn => {
            // Symmetric-normalized aggregation with self loops: each
            // contribution is scaled by 1/sqrt((deg_v+1)(deg_u+1)).
            let deg: Vec<f32> = (0..n)
                .map(|v| csc.degree(Vid::from_index(v)) as f32 + 1.0)
                .collect();
            let mut agg = Matrix::zeros(n, in_dim);
            for v in 0..n {
                let self_scale = 1.0 / deg[v];
                for (a, b) in agg.row_mut(v).iter_mut().zip(h.row(v)) {
                    *a += self_scale * b;
                }
                for &u in csc.neighbors(Vid::from_index(v)) {
                    let scale = 1.0 / (deg[v] * deg[u.index()]).sqrt();
                    for (a, b) in agg.row_mut(v).iter_mut().zip(h.row(u.index())) {
                        *a += scale * b;
                    }
                }
                *flops += 3 * (csc.degree(Vid::from_index(v)) as u64 + 1) * in_dim as u64;
            }
            let w = Matrix::random(in_dim, out_dim, seed);
            *flops += agg.matmul_flops(&w);
            let mut out = agg.matmul(&w);
            out.relu();
            out
        }
        GnnModel::Gat => {
            // Single-head attention: score(u, v) = LeakyReLU(a_l·Wh_u +
            // a_r·Wh_v), softmax over N(v) ∪ {v}, weighted sum of Wh_u.
            let w = Matrix::random(in_dim, out_dim, seed);
            *flops += h.matmul_flops(&w);
            let wh = h.matmul(&w);
            let a_l = Matrix::random(out_dim, 1, seed ^ 2);
            let a_r = Matrix::random(out_dim, 1, seed ^ 3);
            let score_part = |row: &[f32], a: &Matrix| -> f32 {
                row.iter()
                    .zip(0..out_dim)
                    .map(|(x, j)| x * a.get(j, 0))
                    .sum()
            };
            let left: Vec<f32> = (0..n).map(|v| score_part(wh.row(v), &a_l)).collect();
            let right: Vec<f32> = (0..n).map(|v| score_part(wh.row(v), &a_r)).collect();
            *flops += 4 * n as u64 * out_dim as u64;
            let mut out = Matrix::zeros(n, out_dim);
            #[allow(clippy::needless_range_loop)] // v indexes three arrays
            for v in 0..n {
                let mut contributors: Vec<usize> = vec![v];
                contributors.extend(csc.neighbors(Vid::from_index(v)).iter().map(|u| u.index()));
                let scores: Vec<f32> = contributors
                    .iter()
                    .map(|&u| leaky_relu(left[u] + right[v]))
                    .collect();
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
                let denom: f32 = exps.iter().sum();
                for (&u, &weight) in contributors.iter().zip(&exps) {
                    let alpha = weight / denom;
                    for (o, x) in out.row_mut(v).iter_mut().zip(wh.row(u)) {
                        *o += alpha * x;
                    }
                }
                *flops += contributors.len() as u64 * (2 * out_dim as u64 + 6);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_algo::pipeline::{preprocess, SampleParams};
    use agnn_graph::generate;

    fn subgraph() -> SampledSubgraph {
        let coo = generate::power_law(100, 1_500, 0.8, 5);
        preprocess(&coo, &[Vid(0), Vid(1), Vid(2)], &SampleParams::new(4, 2), 9).subgraph
    }

    fn table() -> FeatureTable {
        FeatureTable::random(100, 8, 7)
    }

    #[test]
    fn all_models_produce_batch_embeddings() {
        let sub = subgraph();
        let t = table();
        for model in GnnModel::ALL {
            let spec = GnnSpec::new(model, 2, 8, 8);
            let fwd = forward(&spec, &sub, &t, 11);
            assert_eq!(fwd.embeddings.rows(), 3, "{}", model.name());
            assert_eq!(fwd.embeddings.cols(), 8);
            assert!(fwd.flops > 0);
            assert!(
                fwd.embeddings.frobenius_norm().is_finite(),
                "{} produced non-finite output",
                model.name()
            );
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let sub = subgraph();
        let t = table();
        let spec = GnnSpec::table_iii_default();
        let spec = GnnSpec::new(spec.model, spec.layers, 8, 8);
        assert_eq!(forward(&spec, &sub, &t, 4), forward(&spec, &sub, &t, 4));
    }

    #[test]
    fn different_weights_change_output() {
        let sub = subgraph();
        let t = table();
        let spec = GnnSpec::new(GnnModel::Gcn, 2, 8, 8);
        assert_ne!(
            forward(&spec, &sub, &t, 1).embeddings,
            forward(&spec, &sub, &t, 2).embeddings
        );
    }

    #[test]
    fn deeper_models_cost_more_flops() {
        let sub = subgraph();
        let t = table();
        let shallow = forward(&GnnSpec::new(GnnModel::GraphSage, 1, 8, 8), &sub, &t, 3);
        let deep = forward(&GnnSpec::new(GnnModel::GraphSage, 4, 8, 8), &sub, &t, 3);
        assert!(deep.flops > 2 * shallow.flops);
    }

    #[test]
    fn gat_attention_weights_are_normalized() {
        // Indirect check: with identical inputs everywhere, GAT output for a
        // node equals Wh regardless of neighbor count.
        let coo = agnn_graph::Coo::from_pairs(3, [(1, 0), (2, 0)]).unwrap();
        let out = preprocess(&coo, &[Vid(0)], &SampleParams::new(2, 1), 1);
        let row: &[f32] = &[1.0, 1.0];
        let uniform = FeatureTable::from_matrix(Matrix::from_rows(&[row, row, row]));
        let spec = GnnSpec::new(GnnModel::Gat, 1, 2, 4);
        let fwd = forward(&spec, &out.subgraph, &uniform, 5);
        // All contributors share one embedding, so the softmax must not
        // change the aggregate.
        let w = Matrix::random(2, 4, 5 ^ (1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let expected = Matrix::from_rows(&[&[1.0, 1.0]]).matmul(&w);
        for j in 0..4 {
            assert!((fwd.embeddings.get(0, j) - expected.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn isolated_batch_node_keeps_finite_embedding() {
        let coo = agnn_graph::Coo::from_pairs(2, [(0, 1)]).unwrap();
        let out = preprocess(&coo, &[Vid(0)], &SampleParams::new(2, 2), 1);
        let t = FeatureTable::random(2, 4, 2);
        for model in GnnModel::ALL {
            let fwd = forward(&GnnSpec::new(model, 2, 4, 4), &out.subgraph, &t, 6);
            assert!(fwd.embeddings.frobenius_norm().is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dimension_mismatch_panics() {
        let sub = subgraph();
        let bad = FeatureTable::random(100, 5, 1);
        forward(&GnnSpec::new(GnnModel::Gin, 1, 8, 8), &sub, &bad, 0);
    }

    #[test]
    fn intensity_ordering_matches_paper() {
        let intensities: Vec<f64> = GnnModel::ALL.iter().map(|m| m.intensity()).collect();
        for pair in intensities.windows(2) {
            assert!(pair[0] < pair[1], "GIN < GSage < GCN < GAT");
        }
    }
}

//! A minimal dense `f32` matrix for GNN layers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major dense matrix.
///
/// # Examples
///
/// ```
/// use agnn_gnn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Xavier-style random initialization in `[-limit, limit]` with
    /// `limit = sqrt(6 / (rows + cols))`, deterministic in the seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols).max(1) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable row access.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// FLOPs of `self.matmul(other)` (two per multiply-accumulate).
    pub fn matmul_flops(&self, other: &Matrix) -> u64 {
        2 * self.rows as u64 * self.cols as u64 * other.cols as u64
    }

    /// In-place ReLU.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Extracts the given rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Frobenius norm (for tests and sanity checks).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Leaky ReLU with the conventional 0.2 slope used by GAT.
#[inline]
pub fn leaky_relu(x: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        0.2 * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert_eq!(a.matmul_flops(&b), 2 * 2 * 2 * 2);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(3, 3, 1);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        m.relu();
        assert_eq!(m.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_keeps_slope() {
        assert_eq!(leaky_relu(5.0), 5.0);
        assert_eq!(leaky_relu(-5.0), -1.0);
    }

    #[test]
    fn concat_and_gather() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.row(0), &[1.0, 3.0]);
        let picked = cat.gather_rows(&[1, 0, 1]);
        assert_eq!(picked.rows(), 3);
        assert_eq!(picked.row(0), &[2.0, 4.0]);
        assert_eq!(picked.row(2), &[2.0, 4.0]);
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 9);
        assert_eq!(a, Matrix::random(4, 4, 9));
        assert_ne!(a, Matrix::random(4, 4, 10));
        let limit = (6.0f32 / 8.0).sqrt();
        for i in 0..4 {
            for v in a.row(i) {
                assert!(v.abs() <= limit);
            }
        }
    }

    #[test]
    fn empty_matrix_operations() {
        let e = Matrix::zeros(0, 0);
        assert_eq!(e.matmul(&e).rows(), 0);
        assert_eq!(e.frobenius_norm(), 0.0);
    }
}

//! GPU inference-latency model.
//!
//! Both AutoGNN and every baseline execute the GNN model itself on the GPU
//! (§VI "After preprocessing, all systems perform GNN inference on the
//! GPU"), so one shared model maps work to seconds. Sparse aggregation makes
//! GNN inference far less efficient than dense ML: the effective throughput
//! is a small fraction of peak, scaled further by the model-family
//! intensity factor.

use crate::models::{GnnModel, GnnSpec};

/// GPU inference timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuInferenceModel {
    /// Effective FLOP/s on sparse GNN kernels (a few percent of the 3090's
    /// dense peak).
    pub effective_flops: f64,
    /// Fixed per-batch overhead, seconds (kernel launches, gathers).
    pub per_batch_overhead: f64,
}

impl Default for GpuInferenceModel {
    fn default() -> Self {
        GpuInferenceModel {
            effective_flops: 1.5e12,
            per_batch_overhead: 3.0e-3,
        }
    }
}

impl GpuInferenceModel {
    /// Seconds for an inference pass of `flops` model work.
    pub fn inference_secs(&self, model: GnnModel, flops: u64) -> f64 {
        self.per_batch_overhead + flops as f64 * model.intensity() / self.effective_flops
    }

    /// Analytic FLOP estimate for full-scale workloads (where the subgraph
    /// is not materialized): per layer, every subgraph node pays a dense
    /// transform and every subgraph edge an aggregation.
    pub fn analytic_flops(&self, spec: &GnnSpec, sub_nodes: u64, sub_edges: u64) -> u64 {
        let d_in = spec.in_dim as u64;
        let d_h = spec.hidden_dim as u64;
        let mut flops = 0u64;
        for layer in 0..spec.layers {
            let d = if layer == 0 { d_in } else { d_h };
            // Dense transform + edge aggregation.
            flops += 2 * sub_nodes * d * d_h + 2 * sub_edges * d;
        }
        flops
    }

    /// Convenience: analytic inference seconds from subgraph sizes.
    pub fn analytic_inference_secs(&self, spec: &GnnSpec, sub_nodes: u64, sub_edges: u64) -> f64 {
        self.inference_secs(spec.model, self.analytic_flops(spec, sub_nodes, sub_edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_ordering_carries_into_latency() {
        let model = GpuInferenceModel::default();
        let flops = 1_000_000_000;
        let times: Vec<f64> = GnnModel::ALL
            .iter()
            .map(|&m| model.inference_secs(m, flops))
            .collect();
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1], "GIN fastest … GAT slowest");
        }
    }

    #[test]
    fn analytic_flops_scale_linearly_with_depth() {
        let model = GpuInferenceModel::default();
        let spec1 = GnnSpec::new(GnnModel::GraphSage, 1, 128, 128);
        let spec6 = GnnSpec::new(GnnModel::GraphSage, 6, 128, 128);
        let f1 = model.analytic_flops(&spec1, 300_000, 330_000);
        let f6 = model.analytic_flops(&spec6, 300_000, 330_000);
        assert_eq!(f6, 6 * f1);
    }

    #[test]
    fn overhead_floors_small_batches() {
        let model = GpuInferenceModel::default();
        let t = model.inference_secs(GnnModel::Gin, 0);
        assert_eq!(t, model.per_batch_overhead);
    }

    #[test]
    fn table_iii_inference_is_milliseconds_scale() {
        // 2-layer SAGE over a ~333K-node subgraph: tens of milliseconds —
        // the stable "Inference" bar of Fig. 5.
        let model = GpuInferenceModel::default();
        let spec = GnnSpec::table_iii_default();
        let secs = model.analytic_inference_secs(&spec, 333_000, 333_000);
        assert!(
            (0.005..0.5).contains(&secs),
            "inference {secs}s out of the expected regime"
        );
    }
}

//! Coordinate (COO) edge-array format.

use crate::{Edge, GraphError};

/// A graph in coordinate format: an unsorted edge array plus a vertex count.
///
/// COO is how "raw or application-specific graphs are often stored … for
/// storage efficiency and graph update flexibility" (§II-A); it is the input
/// to the preprocessing pipeline and the intermediate form of sampled
/// subgraphs before their final conversion (§II-B).
///
/// # Examples
///
/// ```
/// use agnn_graph::{Coo, Edge, Vid};
///
/// let coo = Coo::from_pairs(4, [(0, 1), (2, 1), (3, 0)])?;
/// assert_eq!(coo.num_edges(), 3);
/// assert_eq!(coo.edges()[1], Edge::new(Vid(2), Vid(1)));
/// # Ok::<(), agnn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Coo {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl Coo {
    /// Creates a COO graph, validating that every endpoint is in range.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any edge references a
    /// vertex `>= num_vertices`.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            for vid in [e.src, e.dst] {
                if vid.index() >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vid: vid.0,
                        num_vertices,
                    });
                }
            }
        }
        Ok(Coo {
            num_vertices,
            edges,
        })
    }

    /// Creates a COO graph from `(src, dst)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] on an out-of-range endpoint.
    pub fn from_pairs<I>(num_vertices: usize, pairs: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        Self::new(num_vertices, pairs.into_iter().map(Edge::from).collect())
    }

    /// Number of vertices (the contiguous VID range `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge array.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the graph and returns the edge array.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Appends edges in place (dynamic-graph updates, §VI-B "Graph update").
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] on an out-of-range endpoint;
    /// no edges are appended in that case.
    pub fn extend_edges<I>(&mut self, new_edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let staged: Vec<Edge> = new_edges.into_iter().collect();
        for e in &staged {
            for vid in [e.src, e.dst] {
                if vid.index() >= self.num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vid: vid.0,
                        num_vertices: self.num_vertices,
                    });
                }
            }
        }
        self.edges.extend(staged);
        Ok(())
    }

    /// Grows the vertex range (new vertices start with no edges).
    pub fn grow_vertices(&mut self, new_num_vertices: usize) {
        assert!(
            new_num_vertices >= self.num_vertices,
            "vertex range can only grow"
        );
        self.num_vertices = new_num_vertices;
    }

    /// Returns whether the edge array is sorted by `(dst, src)`.
    pub fn is_sorted_by_dst_src(&self) -> bool {
        self.edges
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key())
    }

    /// In-memory size of the edge array in bytes (two 32-bit VIDs per edge),
    /// the quantity that drives every transfer model.
    #[inline]
    pub fn byte_size(&self) -> u64 {
        self.edges.len() as u64 * 8
    }

    /// Per-destination in-degrees (index = destination VID).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.dst.index()] += 1;
        }
        deg
    }

    /// Degree statistics over destination vertices.
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::from_degrees(&self.in_degrees())
    }

    /// Average degree `e / n` as Table II reports it.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// Iterates over edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }
}

impl<'a> IntoIterator for &'a Coo {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

/// Summary statistics of a degree distribution.
///
/// # Examples
///
/// ```
/// use agnn_graph::DegreeStats;
///
/// let stats = DegreeStats::from_degrees(&[1, 3, 0, 4]);
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.mean, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: u32,
    /// Number of zero-degree vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes statistics from a degree array.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        if degrees.is_empty() {
            return DegreeStats::default();
        }
        let total: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        DegreeStats {
            mean: total as f64 / degrees.len() as f64,
            max: degrees.iter().copied().max().unwrap_or(0),
            isolated: degrees.iter().filter(|&&d| d == 0).count(),
        }
    }
}

/// Remaps every edge of `coo` through `f`, keeping the vertex count.
///
/// Used by the scenario engine to mix edges from two graphs into one VID
/// space (Fig. 31).
pub fn map_edges(coo: &Coo, num_vertices: usize, mut f: impl FnMut(Edge) -> Edge) -> Coo {
    let edges = coo.edges().iter().map(|&e| f(e)).collect();
    Coo::new(num_vertices, edges).expect("edge mapping produced out-of-range vertex")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vid;

    fn small() -> Coo {
        Coo::from_pairs(4, [(0, 1), (2, 1), (3, 0), (1, 3)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.byte_size(), 32);
        assert_eq!(g.iter().count(), 4);
        assert_eq!((&g).into_iter().count(), 4);
    }

    #[test]
    fn rejects_out_of_range_src_and_dst() {
        assert!(matches!(
            Coo::from_pairs(2, [(0, 2)]),
            Err(GraphError::VertexOutOfRange { vid: 2, .. })
        ));
        assert!(matches!(
            Coo::from_pairs(2, [(5, 0)]),
            Err(GraphError::VertexOutOfRange { vid: 5, .. })
        ));
    }

    #[test]
    fn extend_edges_validates_atomically() {
        let mut g = small();
        let err = g.extend_edges([Edge::new(Vid(0), Vid(1)), Edge::new(Vid(9), Vid(0))]);
        assert!(err.is_err());
        assert_eq!(g.num_edges(), 4, "failed extend must not mutate");
        g.extend_edges([Edge::new(Vid(0), Vid(0))]).unwrap();
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn grow_vertices_allows_new_endpoints() {
        let mut g = small();
        g.grow_vertices(6);
        g.extend_edges([Edge::new(Vid(5), Vid(4))]).unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn shrink_vertices_panics() {
        small().grow_vertices(1);
    }

    #[test]
    fn in_degrees_and_stats() {
        let g = small();
        assert_eq!(g.in_degrees(), vec![1, 2, 0, 1]);
        let stats = g.degree_stats();
        assert_eq!(stats.max, 2);
        assert_eq!(stats.isolated, 1);
        assert!((stats.mean - 1.0).abs() < 1e-12);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sortedness_check() {
        let unsorted = small();
        assert!(!unsorted.is_sorted_by_dst_src());
        let sorted = Coo::from_pairs(3, [(0, 0), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert!(sorted.is_sorted_by_dst_src());
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Coo::from_pairs(0, []).unwrap();
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.degree_stats(), DegreeStats::default());
    }

    #[test]
    fn map_edges_reverses() {
        let g = small();
        let reversed = map_edges(&g, 4, |e| Edge::new(e.dst, e.src));
        assert_eq!(reversed.edges()[0], Edge::new(Vid(1), Vid(0)));
        assert_eq!(reversed.num_edges(), g.num_edges());
    }
}

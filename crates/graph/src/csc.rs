//! Compressed sparse column (CSC) format.

use crate::{Coo, Edge, GraphError, Vid};

/// A graph in compressed sparse column format.
///
/// CSC is the vertex-centric structure GNN traversal prefers (§II-A): a
/// *pointer array* indexed by destination VID whose value is the start offset
/// into an *index array* of source VIDs. Retrieving every source connected to
/// destination `d` is the slice `indices[pointers[d] .. pointers[d + 1]]`.
///
/// # Examples
///
/// ```
/// use agnn_graph::{Coo, Csc, Vid};
///
/// let coo = Coo::from_pairs(3, [(0, 1), (2, 1), (1, 0)])?;
/// let csc = Csc::from_coo(&coo);
/// assert_eq!(csc.neighbors(Vid(1)), &[Vid(0), Vid(2)]);
/// assert_eq!(csc.neighbors(Vid(2)), &[]);
/// # Ok::<(), agnn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Csc {
    /// `pointers.len() == num_vertices + 1`; `pointers[d]` is the first index
    /// of destination `d`'s sources in `indices`.
    pointers: Vec<u32>,
    /// Source VIDs grouped by destination, sorted within each group.
    indices: Vec<Vid>,
}

impl Csc {
    /// Builds a CSC from raw pointer and index arrays, validating the
    /// invariants the hardware relies on.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedPointers`] if the pointer array is
    /// empty, non-monotonic, or its last entry differs from `indices.len()`,
    /// and [`GraphError::VertexOutOfRange`] if an index references a vertex
    /// outside the pointer range.
    pub fn new(pointers: Vec<u32>, indices: Vec<Vid>) -> Result<Self, GraphError> {
        if pointers.is_empty() {
            return Err(GraphError::MalformedPointers {
                detail: "pointer array is empty".into(),
            });
        }
        if pointers[0] != 0 {
            return Err(GraphError::MalformedPointers {
                detail: format!("first pointer is {}, expected 0", pointers[0]),
            });
        }
        if pointers.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::MalformedPointers {
                detail: "pointer array is not monotonically non-decreasing".into(),
            });
        }
        let last = *pointers.last().expect("non-empty") as usize;
        if last != indices.len() {
            return Err(GraphError::MalformedPointers {
                detail: format!("last pointer {last} != {} index entries", indices.len()),
            });
        }
        let num_vertices = pointers.len() - 1;
        for &vid in &indices {
            if vid.index() >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vid: vid.0,
                    num_vertices,
                });
            }
        }
        Ok(Csc { pointers, indices })
    }

    /// Converts a COO graph to CSC using a straightforward counting sort.
    ///
    /// This is the *functional specification* of graph conversion — the
    /// accelerated pipelines (software radix sort in `agnn-algo`, hardware
    /// UPE/SCR in `agnn-hw`) are tested for equality against it.
    pub fn from_coo(coo: &Coo) -> Self {
        let n = coo.num_vertices();
        let mut pointers = vec![0u32; n + 1];
        for e in coo.edges() {
            pointers[e.dst.index() + 1] += 1;
        }
        for d in 0..n {
            pointers[d + 1] += pointers[d];
        }
        let mut cursor = pointers.clone();
        let mut indices = vec![Vid(0); coo.num_edges()];
        for e in coo.edges() {
            let slot = cursor[e.dst.index()];
            indices[slot as usize] = e.src;
            cursor[e.dst.index()] += 1;
        }
        // Secondary sort by source VID within each destination group, giving
        // the canonical (dst, src) order edge ordering produces.
        for d in 0..n {
            let (lo, hi) = (pointers[d] as usize, pointers[d + 1] as usize);
            indices[lo..hi].sort_unstable();
        }
        Csc { pointers, indices }
    }

    /// Builds a CSC directly from an edge array already sorted by
    /// `(dst, src)` — the hand-off point between edge ordering and data
    /// reshaping (§II-B).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnsortedEdges`] if the input violates the sort
    /// order and [`GraphError::VertexOutOfRange`] on bad endpoints.
    pub fn from_sorted_edges(num_vertices: usize, edges: &[Edge]) -> Result<Self, GraphError> {
        if let Some(pos) = edges
            .windows(2)
            .position(|w| w[0].sort_key() > w[1].sort_key())
        {
            return Err(GraphError::UnsortedEdges { position: pos + 1 });
        }
        let mut pointers = vec![0u32; num_vertices + 1];
        let mut indices = Vec::with_capacity(edges.len());
        for e in edges {
            if e.dst.index() >= num_vertices || e.src.index() >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vid: e.dst.0.max(e.src.0),
                    num_vertices,
                });
            }
            pointers[e.dst.index() + 1] += 1;
            indices.push(e.src);
        }
        for d in 0..num_vertices {
            pointers[d + 1] += pointers[d];
        }
        Ok(Csc { pointers, indices })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.pointers.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// The pointer array (`num_vertices + 1` entries).
    #[inline]
    pub fn pointers(&self) -> &[u32] {
        &self.pointers
    }

    /// The index array of source VIDs.
    #[inline]
    pub fn indices(&self) -> &[Vid] {
        &self.indices
    }

    /// All source VIDs with an edge into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    #[inline]
    pub fn neighbors(&self, dst: Vid) -> &[Vid] {
        let lo = self.pointers[dst.index()] as usize;
        let hi = self.pointers[dst.index() + 1] as usize;
        &self.indices[lo..hi]
    }

    /// In-degree of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    #[inline]
    pub fn degree(&self, dst: Vid) -> usize {
        self.neighbors(dst).len()
    }

    /// Reconstructs the (sorted) COO edge array.
    pub fn to_coo(&self) -> Coo {
        let mut edges = Vec::with_capacity(self.num_edges());
        for d in 0..self.num_vertices() {
            for &s in self.neighbors(Vid::from_index(d)) {
                edges.push(Edge::new(s, Vid::from_index(d)));
            }
        }
        Coo::new(self.num_vertices(), edges).expect("CSC invariants guarantee valid COO")
    }

    /// In-memory size in bytes: 4-byte pointers plus 4-byte indices.
    #[inline]
    pub fn byte_size(&self) -> u64 {
        (self.pointers.len() as u64 + self.indices.len() as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // Fig. 1-style small graph.
        Coo::from_pairs(4, [(1, 0), (3, 0), (0, 2), (2, 2), (3, 2), (0, 3)]).unwrap()
    }

    #[test]
    fn from_coo_builds_expected_arrays() {
        let csc = Csc::from_coo(&sample());
        assert_eq!(csc.pointers(), &[0, 2, 2, 5, 6]);
        assert_eq!(
            csc.indices(),
            &[Vid(1), Vid(3), Vid(0), Vid(2), Vid(3), Vid(0)]
        );
        assert_eq!(csc.degree(Vid(2)), 3);
        assert_eq!(csc.neighbors(Vid(1)), &[]);
    }

    #[test]
    fn round_trip_coo_csc_coo() {
        let csc = Csc::from_coo(&sample());
        let back = csc.to_coo();
        assert!(back.is_sorted_by_dst_src());
        assert_eq!(Csc::from_coo(&back), csc);
    }

    #[test]
    fn from_sorted_edges_matches_from_coo() {
        let coo = sample();
        let mut edges = coo.edges().to_vec();
        edges.sort_unstable_by_key(|e| e.sort_key());
        let a = Csc::from_sorted_edges(coo.num_vertices(), &edges).unwrap();
        let b = Csc::from_coo(&coo);
        assert_eq!(a, b);
    }

    #[test]
    fn from_sorted_edges_rejects_unsorted() {
        let edges = [Edge::new(Vid(0), Vid(2)), Edge::new(Vid(0), Vid(1))];
        assert_eq!(
            Csc::from_sorted_edges(3, &edges),
            Err(GraphError::UnsortedEdges { position: 1 })
        );
    }

    #[test]
    fn new_validates_pointers() {
        assert!(Csc::new(vec![], vec![]).is_err());
        assert!(Csc::new(vec![1, 2], vec![Vid(0)]).is_err(), "first != 0");
        assert!(Csc::new(vec![0, 2, 1], vec![Vid(0), Vid(0)]).is_err());
        assert!(Csc::new(vec![0, 1], vec![]).is_err(), "last != len");
        assert!(Csc::new(vec![0, 1], vec![Vid(7)]).is_err(), "vid range");
        assert!(Csc::new(vec![0, 1], vec![Vid(0)]).is_ok());
    }

    #[test]
    fn empty_graph() {
        let coo = Coo::from_pairs(0, []).unwrap();
        let csc = Csc::from_coo(&coo);
        assert_eq!(csc.num_vertices(), 0);
        assert_eq!(csc.num_edges(), 0);
        assert_eq!(csc.byte_size(), 4);
    }

    #[test]
    fn byte_size_counts_both_arrays() {
        let csc = Csc::from_coo(&sample());
        assert_eq!(csc.byte_size(), (5 + 6) * 4);
    }
}

//! The eleven-workload catalog of Table II.
//!
//! Each [`Dataset`] records the paper's full-scale parameters (#edges,
//! #nodes, average degree, network category and — for the dynamic graphs —
//! daily edge growth) and can instantiate a deterministic synthetic stand-in
//! at any down-scaling factor via [`Dataset::generate_scaled`].

use crate::generate;
use crate::Coo;

/// Network domain categories from Table II / §VI "Tested model and workloads".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Papers and citations: small sizes and degrees.
    Citation,
    /// Movies/restaurants and reviews: high connectivity.
    Interaction,
    /// Individuals/organisations: large, medium connectivity.
    Social,
    /// Customers/products and purchases: large.
    Ecommerce,
}

impl Category {
    /// Power-law exponent used by the generator for this category, chosen so
    /// scaled instances reproduce the degree skew Table II implies (citation
    /// graphs are near-uniform; interaction/e-commerce graphs are
    /// hub-dominated).
    pub fn alpha(self) -> f64 {
        match self {
            Category::Citation => 0.6,
            Category::Interaction => 1.1,
            Category::Social => 0.8,
            Category::Ecommerce => 1.0,
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Category::Citation => "citation",
            Category::Interaction => "interaction",
            Category::Social => "social",
            Category::Ecommerce => "e-commerce",
        };
        f.write_str(name)
    }
}

/// One of the eleven evaluation datasets (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Physics (PH): 495 K edges, 34.5 K nodes, deg 14.4 — citation.
    Physics,
    /// ogbn-arxiv (AX): 1.16 M edges, 169 K nodes, deg 6.84 — citation.
    Arxiv,
    /// ogbl-collab (CL): 2.36 M edges, 236 K nodes, deg 10.0 — citation.
    Collab,
    /// Yelp (YL): 6.81 M edges, 46.0 K nodes, deg 148 — interaction.
    Yelp,
    /// Fraud (FR): 7.13 M edges, 11.9 K nodes, deg 597 — interaction.
    Fraud,
    /// Movie (MV): 11.3 M edges, 3.71 K nodes, deg 3052 — interaction.
    Movie,
    /// Reddit2 (RD): 23.2 M edges, 233 K nodes, deg 99.6 — social.
    Reddit,
    /// StackOverflow (SO): 63.5 M edges, 6.02 M nodes, deg 10.5 — social.
    StackOverflow,
    /// LiveJournal (JR): 69.0 M edges, 4.85 M nodes, deg 14.2 — social.
    Journal,
    /// Amazon (AM): 123 M edges, 2.45 M nodes, deg 50.5 — e-commerce.
    Amazon,
    /// Taobao (TB): 400 M edges, 230 K nodes, deg 1744 — e-commerce.
    Taobao,
}

/// Full-scale parameters of a dataset as Table II reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Two-letter abbreviation used throughout the paper's figures.
    pub abbrev: &'static str,
    /// Full-scale edge count.
    pub edges: u64,
    /// Full-scale node count.
    pub nodes: u64,
    /// Average degree (`edges / nodes`, as printed in Table II).
    pub degree: f64,
    /// Network category.
    pub category: Category,
    /// Daily edge growth in percent, where the paper reports one
    /// (§III-A: SO 0.52 %/day, TB 0.95 %/day).
    pub daily_growth_pct: Option<f64>,
}

impl Dataset {
    /// Every dataset, in the left-to-right order of the paper's figures
    /// (grouped by domain, ascending edge count).
    pub const ALL: [Dataset; 11] = [
        Dataset::Physics,
        Dataset::Arxiv,
        Dataset::Collab,
        Dataset::Yelp,
        Dataset::Fraud,
        Dataset::Movie,
        Dataset::Reddit,
        Dataset::StackOverflow,
        Dataset::Journal,
        Dataset::Amazon,
        Dataset::Taobao,
    ];

    /// The Table II parameters for this dataset.
    pub fn spec(self) -> DatasetSpec {
        use Category::*;
        use Dataset::*;
        let (abbrev, edges, nodes, degree, category, growth) = match self {
            Physics => ("PH", 495_000, 34_500, 14.4, Citation, None),
            Arxiv => ("AX", 1_160_000, 169_000, 6.84, Citation, None),
            Collab => ("CL", 2_360_000, 236_000, 10.0, Citation, None),
            Yelp => ("YL", 6_810_000, 46_000, 148.0, Interaction, None),
            Fraud => ("FR", 7_130_000, 11_900, 597.0, Interaction, None),
            Movie => ("MV", 11_300_000, 3_710, 3052.0, Interaction, None),
            Reddit => ("RD", 23_200_000, 233_000, 99.6, Social, None),
            StackOverflow => ("SO", 63_500_000, 6_020_000, 10.5, Social, Some(0.52)),
            Journal => ("JR", 69_000_000, 4_850_000, 14.2, Social, None),
            Amazon => ("AM", 123_000_000, 2_450_000, 50.5, Ecommerce, None),
            Taobao => ("TB", 400_000_000, 230_000, 1744.0, Ecommerce, Some(0.95)),
        };
        DatasetSpec {
            abbrev,
            edges,
            nodes,
            degree,
            category,
            daily_growth_pct: growth,
        }
    }

    /// Two-letter figure abbreviation ("PH", "AX", …).
    pub fn abbrev(self) -> &'static str {
        self.spec().abbrev
    }

    /// Looks a dataset up by its abbreviation.
    ///
    /// # Examples
    ///
    /// ```
    /// use agnn_graph::datasets::Dataset;
    ///
    /// assert_eq!(Dataset::from_abbrev("TB"), Some(Dataset::Taobao));
    /// assert_eq!(Dataset::from_abbrev("??"), None);
    /// ```
    pub fn from_abbrev(abbrev: &str) -> Option<Dataset> {
        Dataset::ALL.into_iter().find(|d| d.abbrev() == abbrev)
    }

    /// Generates a deterministic synthetic instance scaled down by `scale`
    /// (`scale = 1` is full Table II size; `scale = 64` divides nodes and
    /// edges by 64, preserving the average degree and category skew).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn generate_scaled(self, scale: u64, seed: u64) -> Coo {
        assert!(scale > 0, "scale must be positive");
        let spec = self.spec();
        let nodes = (spec.nodes / scale).max(16) as usize;
        let edges = (spec.edges / scale).max(64) as usize;
        generate::power_law(nodes, edges, spec.category.alpha(), seed ^ self.seed_salt())
    }

    /// Scale factor that keeps the functional instance at or below
    /// `max_edges` edges, for running the real simulator on every dataset.
    pub fn scale_for_max_edges(self, max_edges: u64) -> u64 {
        let e = self.spec().edges;
        e.div_ceil(max_edges).max(1)
    }

    fn seed_salt(self) -> u64 {
        // Distinct generator streams per dataset.
        Dataset::ALL.iter().position(|&d| d == self).unwrap() as u64 * 0x9e37_79b9
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_ii_key_entries() {
        let tb = Dataset::Taobao.spec();
        assert_eq!(tb.edges, 400_000_000);
        assert_eq!(tb.nodes, 230_000);
        assert_eq!(tb.category, Category::Ecommerce);
        assert_eq!(tb.daily_growth_pct, Some(0.95));

        let ph = Dataset::Physics.spec();
        assert_eq!(ph.edges, 495_000);
        assert_eq!(ph.category, Category::Citation);
        assert_eq!(ph.daily_growth_pct, None);
    }

    #[test]
    fn degree_column_is_consistent_with_counts() {
        for d in Dataset::ALL {
            let s = d.spec();
            let computed = s.edges as f64 / s.nodes as f64;
            let rel = (computed - s.degree).abs() / s.degree;
            assert!(
                rel < 0.05,
                "{}: Table II degree {} vs e/n {computed}",
                s.abbrev,
                s.degree
            );
        }
    }

    #[test]
    fn figure_order_is_ascending_edges_within_category() {
        for pair in Dataset::ALL.windows(2) {
            let (a, b) = (pair[0].spec(), pair[1].spec());
            if a.category == b.category {
                assert!(a.edges <= b.edges, "{} before {}", a.abbrev, b.abbrev);
            }
        }
    }

    #[test]
    fn abbrev_round_trip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_abbrev(d.abbrev()), Some(d));
            assert_eq!(d.to_string(), d.abbrev());
        }
    }

    #[test]
    fn scaled_generation_preserves_average_degree() {
        for d in [Dataset::Physics, Dataset::Movie, Dataset::Taobao] {
            let spec = d.spec();
            let scale = d.scale_for_max_edges(100_000);
            let g = d.generate_scaled(scale, 42);
            let rel = (g.average_degree() - spec.degree).abs() / spec.degree;
            assert!(
                rel < 0.25,
                "{}: degree {} vs target {}",
                spec.abbrev,
                g.average_degree(),
                spec.degree
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Arxiv.generate_scaled(128, 1);
        let b = Dataset::Arxiv.generate_scaled(128, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_for_max_edges_bounds_edge_count() {
        for d in Dataset::ALL {
            let scale = d.scale_for_max_edges(500_000);
            assert!(d.spec().edges / scale <= 500_000);
        }
    }

    #[test]
    fn interaction_graphs_have_hubbier_scaled_instances_than_citation() {
        let cit = Dataset::Arxiv.generate_scaled(Dataset::Arxiv.scale_for_max_edges(50_000), 3);
        let mov = Dataset::Movie.generate_scaled(Dataset::Movie.scale_for_max_edges(50_000), 3);
        assert!(mov.degree_stats().mean > cit.degree_stats().mean * 10.0);
    }
}

//! Dynamic-graph machinery: growth streams and update-influence analysis.
//!
//! Backs the paper's dynamic-graph studies: task-share drift over days
//! (Fig. 7), critical update ratios and per-hour update series (Fig. 29), and
//! the long-horizon Taobao growth scenario (Fig. 30, edges ×112 over 5 000 h).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generate;
use crate::{Coo, Edge, Vid};

/// Exponential edge-growth model: `edges(t) = e0 · (1 + rate)^t`.
///
/// §III-A measures SO growing 0.52 %/day and TB 0.95 %/day; `rate` is that
/// per-step fraction (e.g. `0.0052`).
///
/// # Examples
///
/// ```
/// use agnn_graph::dynamic::GrowthModel;
///
/// let m = GrowthModel::new(1_000_000, 0.0095);
/// assert_eq!(m.edges_at(0), 1_000_000);
/// assert!(m.edges_at(500) > 100_000_000, "TB grows 112x over ~500 days");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthModel {
    initial_edges: u64,
    rate: f64,
}

impl GrowthModel {
    /// Creates a growth model from an initial edge count and per-step rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(initial_edges: u64, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative");
        GrowthModel {
            initial_edges,
            rate,
        }
    }

    /// Edge count after `t` steps.
    pub fn edges_at(&self, t: u32) -> u64 {
        (self.initial_edges as f64 * (1.0 + self.rate).powi(t as i32)).round() as u64
    }

    /// Edges added during step `t` (between `t` and `t + 1`).
    pub fn edges_added_at(&self, t: u32) -> u64 {
        self.edges_at(t + 1).saturating_sub(self.edges_at(t))
    }

    /// Number of steps until the edge count first reaches `factor ×` the
    /// initial count.
    pub fn steps_to_factor(&self, factor: f64) -> u32 {
        assert!(factor >= 1.0, "factor must be at least 1");
        if self.rate == 0.0 {
            return u32::MAX;
        }
        (factor.ln() / (1.0 + self.rate).ln()).ceil() as u32
    }
}

/// A stream of edge-update batches applied to a live graph.
///
/// Produces one batch per step; each batch is deterministic in the seed and
/// biased toward existing hubs (preferential attachment), matching §VI-B's
/// observation that "interactions in a social graph or item purchases in an
/// e-commerce graph are often added over time".
#[derive(Debug)]
pub struct UpdateStream {
    graph: Coo,
    growth: GrowthModel,
    preferential: f64,
    step: u32,
    seed: u64,
}

impl UpdateStream {
    /// Creates a stream over `graph` with the given growth model.
    ///
    /// # Panics
    ///
    /// Panics if `preferential` is not a probability.
    pub fn new(graph: Coo, growth: GrowthModel, preferential: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&preferential));
        UpdateStream {
            graph,
            growth,
            preferential,
            step: 0,
            seed,
        }
    }

    /// The current graph state.
    pub fn graph(&self) -> &Coo {
        &self.graph
    }

    /// The current step index.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Advances one step, applying the batch to the live graph and returning
    /// the edges that were added.
    pub fn advance(&mut self) -> Vec<Edge> {
        let count = self.growth.edges_added_at(self.step) as usize;
        let batch = generate::incremental_edges(
            &self.graph,
            count,
            self.preferential,
            self.seed ^ u64::from(self.step).wrapping_mul(0x517c_c1b7_2722_0a95),
        );
        self.graph
            .extend_edges(batch.iter().copied())
            .expect("incremental edges are in range");
        self.step += 1;
        batch
    }

    /// Update ratio of the last step: edges added / edges before the step.
    pub fn update_ratio_at(&self, t: u32) -> f64 {
        let before = self.growth.edges_at(t);
        if before == 0 {
            return 0.0;
        }
        self.growth.edges_added_at(t) as f64 / before as f64
    }
}

/// Fraction of vertices whose `layers`-hop GNN neighbourhood is perturbed
/// when `updated` vertices change (Fig. 29a, "critical update ratio").
///
/// A GNN output at vertex `v` depends on every vertex within `layers` hops
/// *upstream* of `v`; an update at `u` therefore influences all vertices
/// reachable from `u` in `layers` forward (src→dst) hops.
///
/// # Examples
///
/// ```
/// use agnn_graph::{Coo, Vid};
/// use agnn_graph::dynamic::influence_ratio;
///
/// // chain 0 -> 1 -> 2 -> 3
/// let g = Coo::from_pairs(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(influence_ratio(&g, &[Vid(0)], 1), 0.5);   // {0, 1}
/// assert_eq!(influence_ratio(&g, &[Vid(0)], 3), 1.0);   // whole chain
/// # Ok::<(), agnn_graph::GraphError>(())
/// ```
pub fn influence_ratio(graph: &Coo, updated: &[Vid], layers: u32) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    // Forward adjacency src -> dst.
    let mut offsets = vec![0u32; n + 1];
    for e in graph.edges() {
        offsets[e.src.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; graph.num_edges()];
    for e in graph.edges() {
        targets[cursor[e.src.index()] as usize] = e.dst.0;
        cursor[e.src.index()] += 1;
    }

    let mut influenced = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for &v in updated {
        if v.index() < n && !influenced[v.index()] {
            influenced[v.index()] = true;
            frontier.push(v.0);
        }
    }
    for _ in 0..layers {
        let mut next = Vec::new();
        for &v in &frontier {
            let (lo, hi) = (
                offsets[v as usize] as usize,
                offsets[v as usize + 1] as usize,
            );
            for &t in &targets[lo..hi] {
                if !influenced[t as usize] {
                    influenced[t as usize] = true;
                    next.push(t);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    influenced.iter().filter(|&&b| b).count() as f64 / n as f64
}

/// Smallest update ratio (fraction of vertices updated) whose influence at
/// `layers` hops reaches `target_influence` — the quantity Fig. 29a plots.
///
/// Performs a doubling search over update-set sizes with a deterministic
/// vertex choice per trial.
pub fn critical_update_ratio(graph: &Coo, layers: u32, target_influence: f64, seed: u64) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut size = 1usize;
    loop {
        let updated: Vec<Vid> = (0..size).map(|_| Vid(rng.gen_range(0..n as u32))).collect();
        if influence_ratio(graph, &updated, layers) >= target_influence || size >= n {
            return size as f64 / n as f64;
        }
        size *= 2;
    }
}

/// Per-hour update-ratio series (Fig. 29b): a noisy sample path around the
/// dataset's mean hourly rate, deterministic in the seed.
pub fn hourly_update_series(mean_pct_per_step: f64, steps: u32, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|_| {
            let noise: f64 = rng.gen_range(0.5..1.5);
            mean_pct_per_step * noise
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::power_law;

    #[test]
    fn growth_model_matches_paper_taobao_horizon() {
        // Fig. 30: TB edge count grows 112x; at 0.95%/day that is ~499 days.
        let m = GrowthModel::new(400_000_000, 0.0095);
        let days = m.steps_to_factor(112.0);
        assert!((495..=505).contains(&days), "got {days}");
    }

    #[test]
    fn growth_zero_rate_is_flat() {
        let m = GrowthModel::new(100, 0.0);
        assert_eq!(m.edges_at(10), 100);
        assert_eq!(m.edges_added_at(3), 0);
        assert_eq!(m.steps_to_factor(2.0), u32::MAX);
    }

    #[test]
    fn update_stream_applies_batches() {
        let base = power_law(256, 5_000, 0.8, 1);
        let mut stream = UpdateStream::new(base, GrowthModel::new(5_000, 0.01), 0.7, 9);
        let before = stream.graph().num_edges();
        let batch = stream.advance();
        assert_eq!(stream.graph().num_edges(), before + batch.len());
        assert_eq!(batch.len(), 50);
        assert!((stream.update_ratio_at(0) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn update_stream_is_deterministic() {
        let mk = || {
            let base = power_law(128, 2_000, 0.8, 2);
            let mut s = UpdateStream::new(base, GrowthModel::new(2_000, 0.02), 0.5, 3);
            (s.advance(), s.advance())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn influence_grows_with_layers() {
        let g = power_law(512, 4_096, 0.7, 5);
        let updated = [Vid(0), Vid(1), Vid(2)];
        let r1 = influence_ratio(&g, &updated, 1);
        let r3 = influence_ratio(&g, &updated, 3);
        assert!(r3 >= r1);
        assert!(r1 > 0.0);
    }

    #[test]
    fn influence_zero_layers_counts_only_updates() {
        let g = power_law(100, 500, 0.5, 6);
        assert!((influence_ratio(&g, &[Vid(3)], 0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn influence_deduplicates_update_set() {
        let g = power_law(100, 500, 0.5, 6);
        let a = influence_ratio(&g, &[Vid(3), Vid(3), Vid(3)], 2);
        let b = influence_ratio(&g, &[Vid(3)], 2);
        assert_eq!(a, b);
    }

    #[test]
    fn critical_ratio_shrinks_for_connected_graphs_with_more_layers() {
        // High-connectivity graphs: a few updates reach most of the graph as
        // layers grow (the JR/AM pattern in Fig. 29a).
        let g = power_law(256, 8_192, 0.4, 7);
        let shallow = critical_update_ratio(&g, 1, 0.5, 11);
        let deep = critical_update_ratio(&g, 4, 0.5, 11);
        assert!(deep <= shallow);
    }

    #[test]
    fn hourly_series_has_requested_mean_scale() {
        let series = hourly_update_series(0.37, 1_000, 13);
        assert_eq!(series.len(), 1_000);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        assert!((mean - 0.37).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn empty_graph_influence_is_zero() {
        let g = Coo::from_pairs(0, []).unwrap();
        assert_eq!(influence_ratio(&g, &[], 3), 0.0);
        assert_eq!(critical_update_ratio(&g, 2, 0.5, 0), 0.0);
    }
}

//! Error types for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating graph structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge references a vertex at or beyond `num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vid: u32,
        /// The number of vertices the graph declares.
        num_vertices: usize,
    },
    /// A CSC pointer array is malformed (wrong length, non-monotonic, or the
    /// final pointer disagrees with the index-array length).
    MalformedPointers {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The edges handed to a sorted-input constructor were not sorted by
    /// (dst, src).
    UnsortedEdges {
        /// Index of the first out-of-order edge.
        position: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vid, num_vertices } => write!(
                f,
                "vertex v{vid} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::MalformedPointers { detail } => {
                write!(f, "malformed CSC pointer array: {detail}")
            }
            GraphError::UnsortedEdges { position } => {
                write!(
                    f,
                    "edge array not sorted by (dst, src) at position {position}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange {
            vid: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));

        let e = GraphError::UnsortedEdges { position: 3 };
        assert!(e.to_string().contains('3'));

        let e = GraphError::MalformedPointers {
            detail: "last pointer 5 != 4 edges".into(),
        };
        assert!(e.to_string().contains("last pointer"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}

//! Seeded synthetic graph generators.
//!
//! The paper evaluates on eleven real-world datasets (Table II). Those exact
//! datasets (OGB/DGL/SNAP/Taobao dumps, up to 400 M edges) are not available
//! offline, so this module provides deterministic generators that hit the
//! same *structural parameters* preprocessing cost depends on — vertex count,
//! edge count and degree skew. See `DESIGN.md` for the substitution note.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Coo, Edge, Vid};

/// Uniform (Erdős–Rényi style) multigraph: both endpoints of every edge are
/// drawn uniformly at random.
///
/// # Examples
///
/// ```
/// use agnn_graph::generate::uniform;
///
/// let g = uniform(100, 500, 42);
/// assert_eq!(g.num_vertices(), 100);
/// assert_eq!(g.num_edges(), 500);
/// ```
///
/// # Panics
///
/// Panics if `num_vertices == 0` while `num_edges > 0`.
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> Coo {
    assert!(
        num_vertices > 0 || num_edges == 0,
        "cannot place edges in an empty vertex set"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| {
            Edge::new(
                Vid(rng.gen_range(0..num_vertices as u32)),
                Vid(rng.gen_range(0..num_vertices as u32)),
            )
        })
        .collect();
    Coo::new(num_vertices, edges).expect("generated endpoints are in range")
}

/// Recursive-matrix (R-MAT) generator.
///
/// Standard in architecture evaluations for producing realistic skewed
/// graphs: each edge recursively descends a 2×2 partition of the adjacency
/// matrix with probabilities `(a, b, c, d)`, `d = 1 − a − b − c`.
///
/// # Examples
///
/// ```
/// use agnn_graph::generate::rmat;
///
/// let g = rmat(8, 2000, (0.57, 0.19, 0.19), 7);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 2000);
/// ```
///
/// # Panics
///
/// Panics if the probabilities are not in `(0, 1)` or sum to ≥ 1, or if
/// `scale` is 0 or exceeds 31.
pub fn rmat(scale: u32, num_edges: usize, (a, b, c): (f64, f64, f64), seed: u64) -> Coo {
    assert!(
        a > 0.0 && b > 0.0 && c > 0.0 && a + b + c < 1.0,
        "RMAT probabilities must be positive and sum below 1"
    );
    assert!(scale > 0 && scale <= 31, "scale must be in 1..=31");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut row, mut col) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (dr, dc) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            row |= dr << level;
            col |= dc << level;
        }
        edges.push(Edge::new(Vid(row), Vid(col)));
    }
    Coo::new(n, edges).expect("RMAT endpoints are in range")
}

/// Chung–Lu power-law generator: endpoint `i` is drawn with probability
/// proportional to `(i + 1)^(-alpha)` for destinations and uniformly for
/// sources, yielding the hub-dominated in-degree distributions interaction
/// and e-commerce graphs exhibit (Table II: MV deg 3052, TB deg 1744).
///
/// # Examples
///
/// ```
/// use agnn_graph::generate::power_law;
///
/// let g = power_law(50, 1000, 1.2, 3);
/// let stats = g.degree_stats();
/// assert!(stats.max as f64 > 3.0 * stats.mean, "hubs dominate");
/// ```
///
/// # Panics
///
/// Panics if `alpha < 0` or the vertex set is empty while edges are requested.
pub fn power_law(num_vertices: usize, num_edges: usize, alpha: f64, seed: u64) -> Coo {
    assert!(alpha >= 0.0, "alpha must be non-negative");
    assert!(
        num_vertices > 0 || num_edges == 0,
        "cannot place edges in an empty vertex set"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative weights for inverse-transform sampling of destinations.
    let mut cumulative = Vec::with_capacity(num_vertices);
    let mut total = 0.0f64;
    for i in 0..num_vertices {
        total += ((i + 1) as f64).powf(-alpha);
        cumulative.push(total);
    }
    let edges = (0..num_edges)
        .map(|_| {
            let target: f64 = rng.gen_range(0.0..total);
            let dst = cumulative.partition_point(|&c| c <= target);
            let src = rng.gen_range(0..num_vertices as u32);
            Edge::new(Vid(src), Vid(dst.min(num_vertices - 1) as u32))
        })
        .collect();
    Coo::new(num_vertices, edges).expect("generated endpoints are in range")
}

/// Draws `count` fresh edges consistent with an existing graph's skew, for
/// dynamic-update streams (Figs. 7, 29, 30).
///
/// Destinations are biased toward existing high-degree vertices with
/// probability `preferential`, mimicking preferential attachment in social
/// and e-commerce networks (§III-A "Considering graph dynamics").
pub fn incremental_edges(base: &Coo, count: usize, preferential: f64, seed: u64) -> Vec<Edge> {
    assert!(
        (0.0..=1.0).contains(&preferential),
        "preferential must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = base.num_vertices();
    if n == 0 || count == 0 {
        return Vec::new();
    }
    // Preferential attachment: picking a uniform *edge endpoint* selects a
    // vertex proportionally to its degree.
    let edges = base.edges();
    (0..count)
        .map(|_| {
            let dst = if !edges.is_empty() && rng.gen_bool(preferential) {
                edges[rng.gen_range(0..edges.len())].dst
            } else {
                Vid(rng.gen_range(0..n as u32))
            };
            Edge::new(Vid(rng.gen_range(0..n as u32)), dst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform(64, 256, 1), uniform(64, 256, 1));
        assert_ne!(
            uniform(64, 256, 1).edges(),
            uniform(64, 256, 2).edges(),
            "different seeds should differ"
        );
    }

    #[test]
    fn uniform_empty_edgeless() {
        let g = uniform(0, 0, 9);
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "empty vertex set")]
    fn uniform_rejects_edges_without_vertices() {
        uniform(0, 10, 0);
    }

    #[test]
    fn rmat_skews_toward_low_ids() {
        let g = rmat(10, 20_000, (0.57, 0.19, 0.19), 11);
        let deg = g.in_degrees();
        let low: u64 = deg[..64].iter().map(|&d| u64::from(d)).sum();
        let high: u64 = deg[deg.len() - 64..].iter().map(|&d| u64::from(d)).sum();
        assert!(low > 4 * high, "RMAT favours the top-left quadrant");
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn rmat_rejects_bad_probabilities() {
        rmat(4, 10, (0.5, 0.5, 0.2), 0);
    }

    #[test]
    fn power_law_degree_skew_grows_with_alpha() {
        let flat = power_law(256, 10_000, 0.0, 5);
        let steep = power_law(256, 10_000, 1.5, 5);
        assert!(steep.degree_stats().max > 2 * flat.degree_stats().max);
    }

    #[test]
    fn power_law_exact_counts() {
        let g = power_law(100, 1234, 0.8, 2);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 1234);
    }

    #[test]
    fn incremental_edges_are_in_range_and_deterministic() {
        let base = power_law(128, 1000, 1.0, 3);
        let a = incremental_edges(&base, 200, 0.8, 4);
        let b = incremental_edges(&base, 200, 0.8, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.src.index() < 128 && e.dst.index() < 128));
    }

    #[test]
    fn incremental_preferential_hits_hubs() {
        let base = power_law(512, 20_000, 1.4, 6);
        let hub = {
            let deg = base.in_degrees();
            Vid((0..deg.len()).max_by_key(|&i| deg[i]).unwrap() as u32)
        };
        let pref = incremental_edges(&base, 2_000, 1.0, 7);
        let unif = incremental_edges(&base, 2_000, 0.0, 7);
        let count = |edges: &[Edge]| edges.iter().filter(|e| e.dst == hub).count();
        assert!(count(&pref) > count(&unif));
    }

    #[test]
    fn incremental_empty_base() {
        let base = uniform(0, 0, 0);
        assert!(incremental_edges(&base, 10, 0.5, 0).is_empty());
    }
}

//! Graph substrate for the AutoGNN reproduction.
//!
//! This crate provides everything the accelerator and its baselines consume:
//!
//! - [`Vid`]/[`Edge`] — vertex identifiers and edges as the paper defines them
//!   (32-bit integer VIDs drawn from a small contiguous range, §IV-A);
//! - [`Coo`] — the coordinate ("edge array") format used for raw and
//!   frequently-updated graphs (§II-A, Fig. 1);
//! - [`Csc`] — compressed sparse column with pointer + index arrays, the
//!   traversal-friendly target of graph conversion (§II-A, Fig. 1);
//! - [`generate`] — seeded synthetic generators (uniform, RMAT, Chung–Lu
//!   power-law) standing in for the proprietary/open datasets of Table II;
//! - [`datasets`] — the eleven-workload catalog of Table II with full-scale
//!   parameters and deterministic scaled instantiation;
//! - [`dynamic`] — dynamic-graph update streams and the influence analysis
//!   behind Figs. 7, 29 and 30.
//!
//! # Examples
//!
//! ```
//! use agnn_graph::{datasets::Dataset, Csc};
//!
//! let coo = Dataset::Physics.generate_scaled(64, 7);
//! let csc = Csc::from_coo(&coo);
//! assert_eq!(csc.num_edges(), coo.num_edges());
//! ```

mod coo;
mod csc;
mod error;
mod vid;

pub mod datasets;
pub mod dynamic;
pub mod generate;

pub use coo::{map_edges, Coo, DegreeStats};
pub use csc::Csc;
pub use error::GraphError;
pub use vid::{Edge, Vid};

//! Vertex identifiers and edges.

use std::fmt;

/// A vertex identification (VID).
///
/// The paper's hardware assumes VIDs are "integers drawn from a small,
/// contiguous range" (§IV-A) and sizes its comparators at 32 bits (§IV-C),
/// so the newtype wraps a `u32`.
///
/// # Examples
///
/// ```
/// use agnn_graph::Vid;
///
/// let v = Vid(7);
/// assert_eq!(v.index(), 7usize);
/// assert_eq!(Vid::from_index(7), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vid(pub u32);

impl Vid {
    /// Returns the VID as a `usize` index into vertex-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a VID from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Vid(u32::try_from(index).expect("vertex index exceeds u32 range"))
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Vid {
    fn from(raw: u32) -> Self {
        Vid(raw)
    }
}

impl From<Vid> for u32 {
    fn from(vid: Vid) -> Self {
        vid.0
    }
}

/// A directed edge as stored in COO format: a (source, destination) VID pair.
///
/// Edge ordering sorts primarily by [`dst`](Edge::dst) and secondarily by
/// [`src`](Edge::src) (§II-B), which corresponds to comparing the
/// [`sort_key`](Edge::sort_key) — the two VIDs concatenated into 64 bits,
/// exactly the word the UPE relocation datapath is sized for (§IV-C).
///
/// # Examples
///
/// ```
/// use agnn_graph::{Edge, Vid};
///
/// let e = Edge::new(Vid(3), Vid(9));
/// assert_eq!(e.sort_key(), (9u64 << 32) | 3);
/// assert_eq!(Edge::from_sort_key(e.sort_key()), e);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Edge {
    /// Source vertex.
    pub src: Vid,
    /// Destination vertex.
    pub dst: Vid,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    #[inline]
    pub fn new(src: Vid, dst: Vid) -> Self {
        Edge { src, dst }
    }

    /// The concatenated 64-bit key `(dst << 32) | src` used by edge ordering.
    #[inline]
    pub fn sort_key(self) -> u64 {
        (u64::from(self.dst.0) << 32) | u64::from(self.src.0)
    }

    /// Deconcatenates a 64-bit sort key back into an edge.
    #[inline]
    pub fn from_sort_key(key: u64) -> Self {
        Edge {
            src: Vid((key & 0xffff_ffff) as u32),
            dst: Vid((key >> 32) as u32),
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((src, dst): (u32, u32)) -> Self {
        Edge::new(Vid(src), Vid(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_index_round_trip() {
        assert_eq!(Vid::from_index(42).index(), 42);
        assert_eq!(u32::from(Vid(5)), 5);
        assert_eq!(Vid::from(5u32), Vid(5));
    }

    #[test]
    fn vid_display_is_nonempty() {
        assert_eq!(Vid(3).to_string(), "v3");
    }

    #[test]
    fn edge_sort_key_orders_by_dst_then_src() {
        let a = Edge::new(Vid(9), Vid(1));
        let b = Edge::new(Vid(0), Vid(2));
        let c = Edge::new(Vid(1), Vid(2));
        assert!(a.sort_key() < b.sort_key());
        assert!(b.sort_key() < c.sort_key());
    }

    #[test]
    fn edge_key_round_trip_extremes() {
        for e in [
            Edge::new(Vid(0), Vid(0)),
            Edge::new(Vid(u32::MAX), Vid(0)),
            Edge::new(Vid(0), Vid(u32::MAX)),
            Edge::new(Vid(u32::MAX), Vid(u32::MAX)),
        ] {
            assert_eq!(Edge::from_sort_key(e.sort_key()), e);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn vid_from_oversized_index_panics() {
        let _ = Vid::from_index(usize::MAX);
    }
}

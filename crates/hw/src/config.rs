//! Hardware configuration: UPE/SCR instance counts and widths.

use crate::floorplan::{self, Floorplan};

/// Configuration of the UPE kernel: instance count and per-instance width.
///
/// "UPEs can be configured up to 240 instances, each with a width of 64
/// elements" on the VPK180 (§V-A); both parameters are reconfigurable
/// (§V-B "Bitstream generation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpeConfig {
    /// Number of UPE instances.
    pub count: usize,
    /// Elements processed per UPE pass; must be a power of two ("both
    /// hardware are most efficient when configured with widths that are a
    /// power of two", §V-B).
    pub width: usize,
}

impl UpeConfig {
    /// Creates a configuration, validating the width.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `width < 2`, or `width` is not a power of two.
    pub fn new(count: usize, width: usize) -> Self {
        assert!(count > 0, "UPE count must be positive");
        assert!(
            width >= 2 && width.is_power_of_two(),
            "UPE width must be a power of two >= 2, got {width}"
        );
        UpeConfig { count, width }
    }

    /// Aggregate elements all UPEs process per cycle.
    pub fn throughput_elements(&self) -> usize {
        self.count * self.width
    }

    /// LUTs this configuration occupies.
    pub fn luts(&self) -> u64 {
        floorplan::upe_luts(self.width) * self.count as u64
    }
}

/// Configuration of the SCR kernel: slot count and per-slot width.
///
/// A *slot* is one SCR instance (one comparator array + reducer tree); the
/// width is the number of comparators, i.e. elements examined per cycle
/// (Fig. 13b, Fig. 23a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScrConfig {
    /// Number of SCR slots.
    pub slots: usize,
    /// Comparators per slot; must be a power of two.
    pub width: usize,
}

impl ScrConfig {
    /// Creates a configuration, validating the width.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`, `width < 2`, or `width` is not a power of two.
    pub fn new(slots: usize, width: usize) -> Self {
        assert!(slots > 0, "SCR slot count must be positive");
        assert!(
            width >= 2 && width.is_power_of_two(),
            "SCR width must be a power of two >= 2, got {width}"
        );
        ScrConfig { slots, width }
    }

    /// LUTs this configuration occupies.
    pub fn luts(&self) -> u64 {
        floorplan::scr_luts(self.width) * self.slots as u64
    }
}

/// Full HW-kernel configuration: the two reconfigurable regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwConfig {
    /// UPE region contents.
    pub upe: UpeConfig,
    /// SCR region contents.
    pub scr: ScrConfig,
}

impl HwConfig {
    /// The Table III default on the VPK180: the width-64 rung of the
    /// halve-width/double-count bitstream ladder (64 instances; the region
    /// could fit up to 240 — §V-A — but ladder rungs keep power-of-two
    /// counts so a single pre-compiled bitstream per width suffices), and
    /// one SCR slot filling the 30 % region.
    pub fn vpk180_default() -> Self {
        let plan = Floorplan::vpk180();
        let scr_width = plan.max_scr_width(1);
        HwConfig {
            upe: UpeConfig::new(64, 64),
            scr: ScrConfig::new(1, scr_width),
        }
    }

    /// Whether this configuration fits the given floorplan.
    pub fn fits(&self, plan: &Floorplan) -> bool {
        self.upe.luts() <= plan.upe_region_luts() && self.scr.luts() <= plan.scr_region_luts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpk180_default_matches_paper_constants() {
        let cfg = HwConfig::vpk180_default();
        assert_eq!(cfg.upe.width, 64, "Table III: UPE width 64");
        assert_eq!(cfg.scr.slots, 1, "Table III: SCR slots 1");
        assert!(cfg.fits(&Floorplan::vpk180()));
        // The region has headroom up to 240 instances of width 64 (§V-A).
        assert_eq!(Floorplan::vpk180().max_upe_count(64), 240);
        assert!(cfg.upe.count <= 240);
    }

    #[test]
    fn throughput_is_count_times_width() {
        assert_eq!(UpeConfig::new(4, 32).throughput_elements(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_width() {
        UpeConfig::new(1, 48);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_count() {
        ScrConfig::new(0, 64);
    }

    #[test]
    fn oversized_config_does_not_fit() {
        let plan = Floorplan::vpk180();
        let cfg = HwConfig {
            upe: UpeConfig::new(10_000, 64),
            scr: ScrConfig::new(1, 64),
        };
        assert!(!cfg.fits(&plan));
    }
}

//! The end-to-end preprocessing engine (Fig. 14).
//!
//! Drives the UPE and SCR kernels through the fully automated workflow:
//! edge ordering → data reshaping → uni-random selection → subgraph
//! reindexing → subgraph conversion. The functional output is bit-identical
//! to [`agnn_algo::pipeline::preprocess`] under the same seed (verified by
//! the integration tests); on top of that the engine produces the per-stage
//! cycle and DRAM-byte report every timing model consumes.

use std::collections::HashMap;

use agnn_algo::pipeline::{
    PreprocessOutput, PreprocessStats, SampleParams, SampledSubgraph, SelectionStrategy,
};
use agnn_graph::{Coo, Csc, Edge, Vid};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::HwConfig;
use crate::floorplan::Floorplan;
use crate::kernel::{Fidelity, Reindexer, Reshaper, UpeKernel};
use crate::metrics::{HwReport, StageCycles};
use crate::shell::{HwShell, ReconfigScope};

/// On-chip scratchpad capacity in bytes; merge runs below this size never
/// leave the chip (Fig. 12a's shared scratchpad memory — the Versal
/// device's aggregate URAM/BRAM).
pub const SCRATCHPAD_BYTES: u64 = 32 << 20;

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// The preprocessing product — identical to the software pipeline's.
    pub output: PreprocessOutput,
    /// Per-stage cycles and DRAM traffic.
    pub report: HwReport,
}

/// A reconfiguration event: which region changed and how long it took.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigEvent {
    /// Affected region(s).
    pub scope: ReconfigScope,
    /// Wall-clock seconds spent reprogramming.
    pub seconds: f64,
}

/// The AutoGNN accelerator: kernels + shell under one configuration.
#[derive(Debug, Clone)]
pub struct AutoGnnEngine {
    config: HwConfig,
    fidelity: Fidelity,
    upe_kernel: UpeKernel,
    reshaper: Reshaper,
    reindexer: Reindexer,
    shell: HwShell,
}

impl AutoGnnEngine {
    /// Creates an engine in [`Fidelity::Fast`] on the VPK180 floorplan.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not fit the VPK180.
    pub fn new(config: HwConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Fast)
    }

    /// Creates an engine with an explicit fidelity.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not fit the VPK180.
    pub fn with_fidelity(config: HwConfig, fidelity: Fidelity) -> Self {
        Self::with_floorplan(config, Floorplan::vpk180(), fidelity)
    }

    /// Creates an engine on an arbitrary floorplan (Fig. 26 board sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not fit `plan`.
    pub fn with_floorplan(config: HwConfig, plan: Floorplan, fidelity: Fidelity) -> Self {
        assert!(
            config.fits(&plan),
            "configuration {config:?} exceeds floorplan {plan:?}"
        );
        AutoGnnEngine {
            config,
            fidelity,
            upe_kernel: UpeKernel::with_fidelity(config.upe, fidelity),
            reshaper: Reshaper::with_fidelity(config.scr, fidelity),
            reindexer: Reindexer::with_fidelity(config.scr, fidelity),
            shell: HwShell::new(),
        }
    }

    /// Current kernel configuration.
    pub fn config(&self) -> HwConfig {
        self.config
    }

    /// Simulation fidelity this engine was built with.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The HW-shell (transfer state and models).
    pub fn shell(&self) -> &HwShell {
        &self.shell
    }

    /// Mutable access to the HW-shell.
    pub fn shell_mut(&mut self) -> &mut HwShell {
        &mut self.shell
    }

    /// Applies a new configuration, reprogramming only the regions that
    /// changed (§V-B), and returns the event.
    pub fn reconfigure(&mut self, new: HwConfig) -> ReconfigEvent {
        let scope = match (self.config.upe != new.upe, self.config.scr != new.scr) {
            (false, false) => ReconfigScope::None,
            (true, false) => ReconfigScope::UpeOnly,
            (false, true) => ReconfigScope::ScrOnly,
            (true, true) => ReconfigScope::Both,
        };
        let seconds = self.shell.icap.reconfig_secs(scope);
        if scope != ReconfigScope::None {
            self.config = new;
            self.upe_kernel = UpeKernel::with_fidelity(new.upe, self.fidelity);
            self.reshaper = Reshaper::with_fidelity(new.scr, self.fidelity);
            self.reindexer = Reindexer::with_fidelity(new.scr, self.fidelity);
        }
        ReconfigEvent { scope, seconds }
    }

    /// Runs the fully automated preprocessing workflow of Fig. 14.
    ///
    /// # Panics
    ///
    /// Panics if a batch node is out of range for `coo`.
    pub fn preprocess(
        &mut self,
        coo: &Coo,
        batch: &[Vid],
        params: &SampleParams,
        seed: u64,
    ) -> EngineRun {
        for b in batch {
            assert!(
                b.index() < coo.num_vertices(),
                "batch node {b} out of range"
            );
        }
        let mut cycles = StageCycles::default();
        let mut dram = StageCycles::default();
        let mut upe_passes = 0u64;
        let mut scr_passes = 0u64;

        // 1. Edge ordering on the full graph (UPE kernel, Fig. 15).
        let sort_run = self.upe_kernel.sort_edges(coo.edges());
        cycles.ordering += sort_run.cycles;
        dram.ordering += ordering_dram_bytes(
            coo.num_edges(),
            self.config.upe.width,
            self.config.upe.count,
        );
        upe_passes += sort_run.upe_passes;

        // 2. Data reshaping (SCR reshaper): pointer array over sorted dsts.
        let sorted_dsts: Vec<Vid> = sort_run.sorted.iter().map(|e| e.dst).collect();
        let indices: Vec<Vid> = sort_run.sorted.iter().map(|e| e.src).collect();
        let reshape_run = self
            .reshaper
            .build_pointers(coo.num_vertices(), &sorted_dsts);
        cycles.reshaping += reshape_run.cycles;
        dram.reshaping += reshaping_dram_bytes(coo.num_edges(), coo.num_vertices());
        scr_passes += reshape_run.scr_passes;
        let csc = Csc::new(reshape_run.pointers, indices)
            .expect("reshaper output satisfies CSC invariants");

        // 3. Uni-random selection (UPE kernel, Fig. 16). The trace is the
        // shared functional specification; the kernel replays it for cycle
        // accounting (and network verification in structural fidelity).
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = agnn_algo::pipeline::sample(&csc, batch, params, &mut rng);
        for layer in &trace.layers {
            let pool_values: Vec<Vec<u64>> = layer
                .iter()
                .map(|record| pool_contents(&csc, params.strategy, &record.parents))
                .collect();
            let select_run = self.upe_kernel.select_layer(layer, &pool_values);
            cycles.selecting += select_run.cycles;
            upe_passes += select_run.upe_passes;
        }
        dram.selecting += 4 * trace.pool_elements as u64 + 4 * trace.selections as u64;

        // 4. Subgraph reindexing (SCR reindexer, Fig. 13c).
        let reindex_run = self.reindexer.reindex(&trace.node_stream);
        cycles.reindexing += reindex_run.cycles;
        dram.reindexing +=
            4 * trace.node_stream.len() as u64 + 8 * reindex_run.result.num_unique() as u64;
        scr_passes += reindex_run.scr_passes;

        // 5. Final conversion of the sampled COO (§II-B): edge ordering and
        // data reshaping on the renumbered subgraph, charged to the same
        // stages.
        let old_to_new: HashMap<Vid, Vid> = reindex_run
            .result
            .new_to_old
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, Vid::from_index(new)))
            .collect();
        let sub_edges: Vec<Edge> = trace
            .edges
            .iter()
            .map(|e| Edge::new(old_to_new[&e.src], old_to_new[&e.dst]))
            .collect();
        let sub_nodes = reindex_run.result.num_unique();
        let sub_sort = self.upe_kernel.sort_edges(&sub_edges);
        cycles.ordering += sub_sort.cycles;
        dram.ordering += ordering_dram_bytes(
            sub_edges.len(),
            self.config.upe.width,
            self.config.upe.count,
        );
        upe_passes += sub_sort.upe_passes;

        let sub_dsts: Vec<Vid> = sub_sort.sorted.iter().map(|e| e.dst).collect();
        let sub_srcs: Vec<Vid> = sub_sort.sorted.iter().map(|e| e.src).collect();
        let sub_reshape = self.reshaper.build_pointers(sub_nodes, &sub_dsts);
        cycles.reshaping += sub_reshape.cycles;
        dram.reshaping += reshaping_dram_bytes(sub_edges.len(), sub_nodes);
        scr_passes += sub_reshape.scr_passes;
        let sub_csc = Csc::new(sub_reshape.pointers, sub_srcs)
            .expect("subgraph reshaper output satisfies CSC invariants");

        let subgraph = SampledSubgraph {
            csc: sub_csc,
            new_to_old: reindex_run.result.new_to_old,
            batch_new: batch.iter().map(|b| old_to_new[b]).collect(),
        };
        let stats = PreprocessStats {
            edges_ordered: coo.num_edges(),
            pointer_entries: coo.num_vertices() + 1,
            selections: trace.selections,
            pool_elements: trace.pool_elements,
            reindex_inputs: trace.node_stream.len(),
            subgraph_edges: subgraph.csc.num_edges(),
            subgraph_nodes: subgraph.csc.num_vertices(),
        };

        EngineRun {
            output: PreprocessOutput { subgraph, stats },
            report: HwReport {
                cycles,
                dram_bytes: dram,
                upe_passes,
                scr_passes,
            },
        }
    }
}

/// DRAM traffic of edge ordering. The chunk sort and the merge cascade are
/// fused into a single streaming pass (chunks are sorted in the scratchpad
/// and fed straight into the cascade), so the baseline traffic is one
/// read + one write of the key array. When the parallel merge phase builds
/// runs larger than the scratchpad (roughly `8·e / upe_count` bytes), one
/// additional spill pass is charged.
pub fn ordering_dram_bytes(num_edges: usize, upe_width: usize, upe_count: usize) -> u64 {
    let _ = upe_width; // traffic depends on run sizes, not lane width
    let e = num_edges as u64;
    if e == 0 {
        return 0;
    }
    let pass_bytes = 16 * e; // 8-byte keys, read + write
                             // At the end of the parallel phase each of the `count` runs holds
                             // ~8e/count bytes; only the portion that does not fit the scratchpad
                             // spills (one extra read + write of the overflow).
    let spill_bytes = 2 * (8 * e).saturating_sub(upe_count.max(1) as u64 * SCRATCHPAD_BYTES);
    pass_bytes + spill_bytes
}

/// DRAM traffic of data reshaping: read the destination column, write the
/// pointer array.
pub fn reshaping_dram_bytes(num_edges: usize, num_vertices: usize) -> u64 {
    4 * num_edges as u64 + 4 * (num_vertices as u64 + 1)
}

/// Reconstructs the selection-pool contents for a pool record, packed into
/// the UPE's 64-bit lanes.
fn pool_contents(csc: &Csc, strategy: SelectionStrategy, parents: &[Vid]) -> Vec<u64> {
    match strategy {
        SelectionStrategy::NodeWise => {
            debug_assert_eq!(parents.len(), 1);
            csc.neighbors(parents[0])
                .iter()
                .map(|s| u64::from(s.0))
                .collect()
        }
        SelectionStrategy::LayerWise => parents
            .iter()
            .flat_map(|&parent| {
                csc.neighbors(parent)
                    .iter()
                    .map(move |s| (u64::from(s.0) << 32) | u64::from(parent.0))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ScrConfig, UpeConfig};
    use agnn_graph::generate;

    fn small_config() -> HwConfig {
        HwConfig {
            upe: UpeConfig::new(4, 16),
            scr: ScrConfig::new(2, 32),
        }
    }

    fn workload() -> (Coo, Vec<Vid>, SampleParams) {
        (
            generate::power_law(300, 3_000, 0.9, 11),
            vec![Vid(0), Vid(3), Vid(7)],
            SampleParams::new(5, 2),
        )
    }

    #[test]
    fn engine_output_equals_software_pipeline() {
        let (coo, batch, params) = workload();
        let expected = agnn_algo::pipeline::preprocess(&coo, &batch, &params, 42);
        for fidelity in [Fidelity::Fast, Fidelity::Structural] {
            let mut engine = AutoGnnEngine::with_fidelity(small_config(), fidelity);
            let run = engine.preprocess(&coo, &batch, &params, 42);
            assert_eq!(run.output, expected, "{fidelity:?}");
        }
    }

    #[test]
    fn engine_output_equals_software_pipeline_layer_wise() {
        let coo = generate::power_law(200, 2_000, 0.8, 5);
        let batch = vec![Vid(1), Vid(2)];
        let params = SampleParams::layer_wise(6, 2);
        let expected = agnn_algo::pipeline::preprocess(&coo, &batch, &params, 7);
        let mut engine = AutoGnnEngine::with_fidelity(small_config(), Fidelity::Structural);
        let run = engine.preprocess(&coo, &batch, &params, 7);
        assert_eq!(run.output, expected);
    }

    #[test]
    fn fidelities_agree_on_report() {
        let (coo, batch, params) = workload();
        let fast = AutoGnnEngine::with_fidelity(small_config(), Fidelity::Fast)
            .preprocess(&coo, &batch, &params, 1);
        let structural = AutoGnnEngine::with_fidelity(small_config(), Fidelity::Structural)
            .preprocess(&coo, &batch, &params, 1);
        assert_eq!(fast.report, structural.report);
    }

    #[test]
    fn all_stages_record_cycles_and_bytes() {
        let (coo, batch, params) = workload();
        let run = AutoGnnEngine::new(small_config()).preprocess(&coo, &batch, &params, 2);
        for (name, value) in run.report.cycles.as_pairs() {
            assert!(value > 0, "stage {name} recorded no cycles");
        }
        for (name, value) in run.report.dram_bytes.as_pairs() {
            assert!(value > 0, "stage {name} recorded no DRAM traffic");
        }
    }

    #[test]
    fn bigger_upe_kernel_cuts_ordering_cycles() {
        let (coo, batch, params) = workload();
        let small = AutoGnnEngine::new(small_config()).preprocess(&coo, &batch, &params, 3);
        let big_cfg = HwConfig {
            upe: UpeConfig::new(32, 64),
            scr: ScrConfig::new(2, 32),
        };
        let big = AutoGnnEngine::new(big_cfg).preprocess(&coo, &batch, &params, 3);
        assert!(big.report.cycles.ordering < small.report.cycles.ordering);
        // Functional output does not depend on the configuration.
        assert_eq!(big.output, small.output);
    }

    #[test]
    fn reconfigure_tracks_scope_and_time() {
        let mut engine = AutoGnnEngine::new(small_config());
        let same = engine.reconfigure(small_config());
        assert_eq!(same.scope, ReconfigScope::None);
        assert_eq!(same.seconds, 0.0);

        let upe_only = HwConfig {
            upe: UpeConfig::new(8, 16),
            scr: small_config().scr,
        };
        let event = engine.reconfigure(upe_only);
        assert_eq!(event.scope, ReconfigScope::UpeOnly);
        assert!(event.seconds > 0.0);
        assert_eq!(engine.config(), upe_only);

        let both = HwConfig {
            upe: UpeConfig::new(2, 32),
            scr: ScrConfig::new(4, 16),
        };
        let event = engine.reconfigure(both);
        assert_eq!(event.scope, ReconfigScope::Both);
        assert!((event.seconds - 0.231).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_produces_empty_subgraph() {
        let (coo, _, params) = workload();
        let run = AutoGnnEngine::new(small_config()).preprocess(&coo, &[], &params, 4);
        assert_eq!(run.output.subgraph.csc.num_vertices(), 0);
        assert_eq!(run.output.stats.selections, 0);
        // Conversion still happened.
        assert!(run.report.cycles.ordering > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds floorplan")]
    fn oversized_config_rejected() {
        let cfg = HwConfig {
            upe: UpeConfig::new(100_000, 64),
            scr: ScrConfig::new(1, 64),
        };
        AutoGnnEngine::new(cfg);
    }

    #[test]
    fn dram_bytes_scale_with_graph_size() {
        let params = SampleParams::new(3, 1);
        let small_g = generate::power_law(100, 1_000, 0.8, 6);
        let large_g = generate::power_law(100, 8_000, 0.8, 6);
        let a = AutoGnnEngine::new(small_config()).preprocess(&small_g, &[Vid(0)], &params, 5);
        let b = AutoGnnEngine::new(small_config()).preprocess(&large_g, &[Vid(0)], &params, 5);
        assert!(b.report.dram_bytes.ordering > 4 * a.report.dram_bytes.ordering);
    }
}

//! LUT accounting and the two-region floorplan.
//!
//! §V-B: "AutoGNN partitions the device into two reconfigurable regions with
//! a fixed area split of 70:30"; Fig. 17 shows the resulting floorplan on
//! the 4.1 M-LUT VPK180 (Table III).

/// LUTs one UPE of the given width occupies.
///
/// The UPE datapath is a `log2(w)`-layer hierarchical adder network whose
/// adders are `log2(w)` bits wide ("because the inputs are booleans, each
/// adder only needs a width of log n bits", §IV-C) plus a `log2(w)`-layer
/// relocation router of 64-bit 2:1 muxes ("the input/output width matches
/// the bit width of the array elements … 64 bits in AutoGNN"). Both scale as
/// `w · log2(w)` lanes with per-lane cost `log2(w) + 64`; the constant is
/// fitted so that 240 width-64 UPEs fill the VPK180's 70 % region, matching
/// §V-A.
pub fn upe_luts(width: usize) -> u64 {
    assert!(width.is_power_of_two() && width >= 2);
    let lg = width.trailing_zeros() as u64;
    let lanes = width as u64 * lg;
    // 0.4448 LUTs per lane-bit, fitted to the §V-A operating point.
    (lanes * (lg + 64) * 4448).div_ceil(10000)
}

/// LUTs one SCR slot of the given width occupies: `w` 32-bit comparators
/// ("the comparator must match the bit width of the comparison target —
/// 32 bits for a VID", §IV-C) plus an adder/filter tree of `w − 1` nodes up
/// to 33 bits wide. ≈ 150 LUTs per comparator lane, fitted so one
/// 8192-wide slot fills the VPK180's 30 % region.
pub fn scr_luts(width: usize) -> u64 {
    assert!(width.is_power_of_two() && width >= 2);
    width as u64 * 150
}

/// A device floorplan: total LUTs and the UPE/SCR area split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    total_luts: u64,
    upe_fraction: f64,
}

impl Floorplan {
    /// Creates a floorplan.
    ///
    /// # Panics
    ///
    /// Panics if `upe_fraction` is outside `(0, 1)`.
    pub fn new(total_luts: u64, upe_fraction: f64) -> Self {
        assert!(
            upe_fraction > 0.0 && upe_fraction < 1.0,
            "UPE fraction must be in (0, 1)"
        );
        Floorplan {
            total_luts,
            upe_fraction,
        }
    }

    /// The VPK180 evaluation board: 4.1 M LUTs, 70:30 UPE:SCR split
    /// (Table III, §V-B).
    pub fn vpk180() -> Self {
        Floorplan::new(4_100_000, 0.70)
    }

    /// Total device LUTs.
    pub fn total_luts(&self) -> u64 {
        self.total_luts
    }

    /// LUTs available to the UPE region.
    pub fn upe_region_luts(&self) -> u64 {
        (self.total_luts as f64 * self.upe_fraction) as u64
    }

    /// LUTs available to the SCR region.
    pub fn scr_region_luts(&self) -> u64 {
        self.total_luts - self.upe_region_luts()
    }

    /// Maximum UPE instances of `width` that fit the UPE region.
    pub fn max_upe_count(&self, width: usize) -> usize {
        (self.upe_region_luts() / upe_luts(width)) as usize
    }

    /// Largest power-of-two SCR width such that `slots` slots fit the SCR
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if even width 2 does not fit.
    pub fn max_scr_width(&self, slots: usize) -> usize {
        let budget = self.scr_region_luts() / slots as u64;
        let mut width = 2;
        while scr_luts(width * 2) <= budget {
            width *= 2;
        }
        assert!(scr_luts(width) <= budget, "SCR region too small");
        width
    }

    /// Returns a floorplan with a different UPE fraction (DynArea search,
    /// Fig. 22).
    pub fn with_upe_fraction(&self, upe_fraction: f64) -> Self {
        Floorplan::new(self.total_luts, upe_fraction)
    }

    /// Returns a floorplan scaled to a different total LUT count
    /// (Fig. 26a LUT sweep).
    pub fn with_total_luts(&self, total_luts: u64) -> Self {
        Floorplan::new(total_luts, self.upe_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpk180_fits_240_width64_upes() {
        assert_eq!(Floorplan::vpk180().max_upe_count(64), 240);
    }

    #[test]
    fn vpk180_single_scr_slot_is_8192_wide() {
        // 30% of 4.1M = 1.23M LUTs; 8192 * 150 = 1.2288M fits, 16384 doesn't.
        assert_eq!(Floorplan::vpk180().max_scr_width(1), 8192);
        assert_eq!(Floorplan::vpk180().max_scr_width(8), 1024);
    }

    #[test]
    fn upe_luts_grow_superlinearly() {
        assert!(upe_luts(128) > 2 * upe_luts(64));
        assert!(upe_luts(4096) <= Floorplan::vpk180().upe_region_luts());
    }

    #[test]
    fn regions_partition_the_device() {
        let plan = Floorplan::vpk180();
        assert_eq!(
            plan.upe_region_luts() + plan.scr_region_luts(),
            plan.total_luts()
        );
    }

    #[test]
    fn area_rebalancing_trades_regions() {
        let plan = Floorplan::vpk180();
        let upe_heavy = plan.with_upe_fraction(0.9);
        assert!(upe_heavy.max_upe_count(64) > plan.max_upe_count(64));
        assert!(upe_heavy.max_scr_width(1) < plan.max_scr_width(1));
    }

    #[test]
    fn lut_sweep_scales_capacity() {
        let small = Floorplan::vpk180().with_total_luts(400_000);
        assert!(small.max_upe_count(64) < 30);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn rejects_degenerate_fraction() {
        Floorplan::new(1_000, 1.0);
    }
}

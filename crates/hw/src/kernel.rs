//! The UPE and SCR kernels: controllers, scheduling and cycle accounting.
//!
//! The UPE kernel (Fig. 12a) couples a controller, a scoreboard scheduler
//! and a scratchpad around `n` identical UPEs; the SCR kernel (Fig. 13a)
//! couples the *reshaper* and *reindexer* controllers around `n` SCR slots
//! and an SRAM mapping bank.
//!
//! # Fidelity
//!
//! Each kernel runs in one of two fidelities with **identical cycle
//! accounting and identical functional output**:
//!
//! - [`Fidelity::Structural`] evaluates every prefix-sum/relocation network
//!   layer and every comparator/reducer tree explicitly (and asserts the
//!   result against the software model) — used by the verification tests;
//! - [`Fidelity::Fast`] computes the same result with plain software
//!   operations — used for large experiment sweeps.

use agnn_algo::pipeline::PoolRecord;
use agnn_algo::reindex::ReindexResult;
use agnn_graph::{Edge, Vid};

use crate::config::{ScrConfig, UpeConfig};
use crate::scr::Scr;
use crate::upe::Upe;

/// Simulation fidelity; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Gate-level network evaluation with golden-model assertions.
    Structural,
    /// Software-equivalent computation, identical outputs and cycles.
    #[default]
    Fast,
}

/// Cascaded set-partition stages the radix datapath evaluates per cycle.
///
/// A width-64 partition network is shallow enough at the 300 MHz kernel
/// clock to chain several stages per cycle; 16 binary-radix stages per cycle
/// makes in-chunk sorting a small fraction of merge time, matching the cost
/// model's decision to account only merge rounds (Table I).
pub const RADIX_STAGES_PER_CYCLE: u32 = 16;

/// Outcome of an edge-ordering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortRun {
    /// Edges sorted by (dst, src).
    pub sorted: Vec<Edge>,
    /// Kernel cycles consumed.
    pub cycles: u64,
    /// Set-partition network passes issued.
    pub upe_passes: u64,
}

/// Outcome of a selection run over one layer of pools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectRun {
    /// Kernel cycles consumed (makespan across UPEs).
    pub cycles: u64,
    /// One-hot extraction passes issued.
    pub upe_passes: u64,
}

/// Greedy list scheduling: assign jobs in order to the earliest-free worker
/// and return the makespan — the scoreboard scheduler's behaviour ("using a
/// scoreboard to track the status of each UPE (busy or idle) and assign
/// input data accordingly", §IV-C).
pub fn schedule_makespan(job_cycles: impl IntoIterator<Item = u64>, workers: usize) -> u64 {
    assert!(workers > 0, "scheduler needs at least one worker");
    let mut free_at = vec![0u64; workers];
    for job in job_cycles {
        let worker = (0..workers)
            .min_by_key(|&w| free_at[w])
            .expect("non-empty worker set");
        free_at[worker] += job;
    }
    free_at.into_iter().max().unwrap_or(0)
}

/// The UPE kernel: `config.count` UPEs of `config.width` behind a scoreboard
/// scheduler.
#[derive(Debug, Clone)]
pub struct UpeKernel {
    config: UpeConfig,
    upe: Upe,
    fidelity: Fidelity,
}

impl UpeKernel {
    /// Creates a kernel in [`Fidelity::Fast`].
    pub fn new(config: UpeConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Fast)
    }

    /// Creates a kernel with an explicit fidelity.
    pub fn with_fidelity(config: UpeConfig, fidelity: Fidelity) -> Self {
        UpeKernel {
            config,
            upe: Upe::new(config.width),
            fidelity,
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> UpeConfig {
        self.config
    }

    /// Edge ordering (Fig. 15): concatenate VID pairs into 64-bit keys,
    /// split into width-sized chunks, radix-sort each chunk on a UPE, then
    /// merge chunk runs round by round (Algorithm 1) and deconcatenate.
    ///
    /// Cycle accounting:
    /// - chunk sort: `ceil(significant_bits / RADIX_STAGES_PER_CYCLE)`
    ///   cycles per chunk, scheduled across UPEs;
    /// - each merge round: jobs emit `width/2` elements per cycle per UPE
    ///   (Table I's merge rate), scheduled across UPEs with a barrier
    ///   between rounds (the controller synchronizes rounds).
    pub fn sort_edges(&self, edges: &[Edge]) -> SortRun {
        let width = self.config.width;
        let keys: Vec<u64> = edges.iter().map(|e| e.sort_key()).collect();
        let significant_bits = keys
            .iter()
            .copied()
            .max()
            .map_or(0, |max| 64 - max.leading_zeros());
        let chunk_sort_cycles = u64::from(significant_bits.div_ceil(RADIX_STAGES_PER_CYCLE));

        // Phase 1: split + per-chunk radix sort.
        let mut runs: Vec<Vec<u64>> = Vec::with_capacity(keys.len().div_ceil(width).max(1));
        let mut upe_passes = 0u64;
        for chunk in keys.chunks(width.max(1)) {
            let sorted = match self.fidelity {
                Fidelity::Structural => {
                    let (sorted, passes) = self.upe.radix_sort_chunk(chunk);
                    upe_passes += passes * 2; // zero-pass + one-pass per bit
                    let mut expected = chunk.to_vec();
                    expected.sort_unstable();
                    assert_eq!(sorted, expected, "UPE chunk sort diverged");
                    sorted
                }
                Fidelity::Fast => {
                    // Mirror the structural pass count: one zero-pass and one
                    // one-pass per significant bit of the chunk's max key.
                    if chunk.len() > 1 {
                        let chunk_bits = chunk
                            .iter()
                            .copied()
                            .max()
                            .map_or(0, |max| 64 - max.leading_zeros());
                        upe_passes += 2 * u64::from(chunk_bits);
                    }
                    let mut sorted = chunk.to_vec();
                    sorted.sort_unstable();
                    sorted
                }
            };
            runs.push(sorted);
        }
        let mut cycles =
            schedule_makespan(runs.iter().map(|_| chunk_sort_cycles), self.config.count);

        // Phase 2: merge rounds (Fig. 15 "merging"; Algorithm 1 rate w/2
        // elements per cycle per UPE). While a round has at least as many
        // merge jobs as UPEs, rounds execute back to back with full
        // parallelism; once jobs drop below the UPE count, the controller
        // chains the remaining merge tree as a pipelined cascade whose
        // throughput is the root merger's w/2 elements per cycle.
        let half = (width / 2).max(1) as u64;
        let total_elements = keys.len() as u64;
        let mut cascade_charged = false;
        while runs.len() > 1 {
            let job_count = runs.len() / 2;
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut job_cycles = Vec::new();
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => {
                        job_cycles.push(((a.len() + b.len()) as u64).div_ceil(half));
                        next.push(agnn_algo::sort::merge_sorted(&a, &b));
                    }
                    None => next.push(a),
                }
            }
            if job_count >= self.config.count {
                cycles += schedule_makespan(job_cycles, self.config.count);
            } else if !cascade_charged {
                cycles += total_elements.div_ceil(half);
                cascade_charged = true;
            }
            runs = next;
        }

        let sorted = runs
            .pop()
            .unwrap_or_default()
            .into_iter()
            .map(Edge::from_sort_key)
            .collect();
        SortRun {
            sorted,
            cycles,
            upe_passes,
        }
    }

    /// Uni-random selection for one layer: each pool record is one UPE job
    /// costing one cycle per draw (one-hot extraction, Fig. 16) plus
    /// `ceil(pool_len / width)` cycles for the final bitmap partition that
    /// extracts the sampled neighborhood; jobs are scheduled across UPEs.
    ///
    /// In [`Fidelity::Structural`] every recorded draw is replayed through
    /// the one-hot extraction network against the actual pool contents.
    pub fn select_layer(&self, pools: &[PoolRecord], pool_values: &[Vec<u64>]) -> SelectRun {
        let width = self.config.width as u64;
        let mut upe_passes = 0u64;
        let mut job_cycles = Vec::with_capacity(pools.len());
        for (record, values) in pools.iter().zip(pool_values) {
            debug_assert_eq!(record.pool_len as usize, values.len());
            let draws = record.positions.len() as u64;
            let final_extract = u64::from(record.pool_len).div_ceil(width).max(1);
            job_cycles.push(draws + final_extract);
            upe_passes += draws + final_extract;
            if self.fidelity == Fidelity::Structural {
                for &position in &record.positions {
                    // Chunk the pool to the UPE width and extract within the
                    // chunk holding the drawn position.
                    let chunk_index = position as usize / self.config.width;
                    let chunk_start = chunk_index * self.config.width;
                    let chunk_end = (chunk_start + self.config.width).min(values.len());
                    let extracted = self.upe.extract_one_hot(
                        &values[chunk_start..chunk_end],
                        position as usize - chunk_start,
                    );
                    assert_eq!(
                        extracted, values[position as usize],
                        "one-hot extraction diverged"
                    );
                }
            }
        }
        SelectRun {
            cycles: schedule_makespan(job_cycles, self.config.count),
            upe_passes,
        }
    }
}

/// Outcome of a reshaping run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshapeRun {
    /// The CSC pointer array (`num_vertices + 1` entries).
    pub pointers: Vec<u32>,
    /// Kernel cycles consumed.
    pub cycles: u64,
    /// Comparator-window evaluations issued.
    pub scr_passes: u64,
}

/// The SCR reshaper: builds the CSC pointer array from the sorted
/// destination array with the dual-counter window algorithm of §IV-C.
#[derive(Debug, Clone)]
pub struct Reshaper {
    config: ScrConfig,
    scr: Scr,
    fidelity: Fidelity,
}

impl Reshaper {
    /// Creates a reshaper in [`Fidelity::Fast`].
    pub fn new(config: ScrConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Fast)
    }

    /// Creates a reshaper with an explicit fidelity.
    pub fn with_fidelity(config: ScrConfig, fidelity: Fidelity) -> Self {
        Reshaper {
            config,
            scr: Scr::new(config.width),
            fidelity,
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> ScrConfig {
        self.config
    }

    /// Builds the pointer array. Per cycle, every SCR slot evaluates one
    /// target VID against the current window of `width` sorted destinations;
    /// a target completes when the window proves its count ("whenever a
    /// target VID meets a COO element with a value strictly larger than
    /// itself"), and window elements below the current target are consumed,
    /// fetching the next COO segment (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_dsts` is not sorted.
    pub fn build_pointers(&self, num_vertices: usize, sorted_dsts: &[Vid]) -> ReshapeRun {
        debug_assert!(sorted_dsts.windows(2).all(|w| w[0] <= w[1]));
        let width = self.config.width;
        let slots = self.config.slots;
        let total = sorted_dsts.len();
        let mut pointers = vec![0u32; num_vertices + 1];
        let mut cycles = 0u64;
        let mut scr_passes = 0u64;
        let mut consumed = 0usize; // COO elements already consumed
        let mut target = 0usize; // next pointer entry to finalize

        while target <= num_vertices {
            cycles += 1;
            let window_end = (consumed + width).min(total);
            let window = &sorted_dsts[consumed..window_end];
            let window_is_last = window_end == total;

            // Each slot evaluates one consecutive target this cycle.
            let mut finished = 0usize;
            for slot in 0..slots {
                let t = target + slot;
                if t > num_vertices {
                    break;
                }
                scr_passes += 1;
                let in_window = self.count_below(window, t as u32);
                // The count is final once the window shows an element >= t
                // or the COO is exhausted.
                let proven = window_is_last || window.last().is_some_and(|&d| d.index() >= t);
                if proven {
                    pointers[t] = consumed as u32 + in_window;
                    finished += 1;
                } else {
                    break;
                }
            }
            target += finished;
            // Consume window elements strictly below the current target —
            // they "can no longer contribute to the remaining targets".
            let consumable = window.partition_point(|&d| d.index() < target);
            if finished == 0 {
                // Whole window below the pending target: consume it all.
                consumed = window_end;
            } else {
                consumed += consumable;
            }
        }

        ReshapeRun {
            pointers,
            cycles,
            scr_passes,
        }
    }

    fn count_below(&self, window: &[Vid], target: u32) -> u32 {
        match self.fidelity {
            Fidelity::Structural => {
                let raw: Vec<u32> = window.iter().map(|v| v.0).collect();
                let counted = self.scr.count_less_than(&raw, target);
                let expected = window.partition_point(|&d| d.0 < target) as u32;
                assert_eq!(counted, expected, "SCR adder tree diverged");
                counted
            }
            Fidelity::Fast => window.partition_point(|&d| d.0 < target) as u32,
        }
    }
}

/// Outcome of a reindexing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReindexRun {
    /// The first-appearance renumbering.
    pub result: ReindexResult,
    /// Kernel cycles consumed.
    pub cycles: u64,
    /// Comparator-window evaluations issued.
    pub scr_passes: u64,
    /// Peak SRAM mapping entries used.
    pub peak_mappings: usize,
}

/// The SCR reindexer: first-appearance renumbering backed by an SRAM mapping
/// bank searched by the filter tree (Fig. 13c).
#[derive(Debug, Clone)]
pub struct Reindexer {
    config: ScrConfig,
    scr: Scr,
    fidelity: Fidelity,
    sram_capacity: usize,
}

impl Reindexer {
    /// Default SRAM mapping capacity (entries). Generous for sampled
    /// subgraphs: a 2-layer, k = 10, b = 3000 workload touches ≈ 333 K
    /// uniques at most.
    pub const DEFAULT_SRAM_CAPACITY: usize = 1 << 20;

    /// Creates a reindexer in [`Fidelity::Fast`].
    pub fn new(config: ScrConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Fast)
    }

    /// Creates a reindexer with an explicit fidelity.
    pub fn with_fidelity(config: ScrConfig, fidelity: Fidelity) -> Self {
        Reindexer {
            config,
            scr: Scr::new(config.width),
            fidelity,
            sram_capacity: Self::DEFAULT_SRAM_CAPACITY,
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> ScrConfig {
        self.config
    }

    /// Processes a VID stream. The SRAM mapping store is organized as
    /// parallel banks, each fronted by one comparator window; every bank is
    /// searched concurrently and the filter trees' results OR together, so
    /// a lookup completes in one cycle for any map that fits the SRAM
    /// (§IV-C's single-cycle claim, realized with banked comparators). A
    /// miss additionally costs one insert cycle ("the reindexer increments
    /// the counter, assigns it as the new VID, and stores the input target
    /// and the counter value as a new mapping pair").
    ///
    /// [`Fidelity::Structural`] still evaluates the filter tree window by
    /// window to verify the datapath.
    ///
    /// # Panics
    ///
    /// Panics if the mapping bank exceeds the SRAM capacity.
    pub fn reindex(&self, stream: &[Vid]) -> ReindexRun {
        let window = self.config.width * self.config.slots;
        let mut mappings: Vec<(u32, u32)> = Vec::new();
        let mut new_ids = Vec::with_capacity(stream.len());
        let mut new_to_old = Vec::new();
        let mut cycles = 0u64;
        let mut scr_passes = 0u64;

        for &old in stream {
            let banks = mappings.len().div_ceil(window).max(1) as u64;
            cycles += 1; // banked search: one cycle per lookup
            scr_passes += banks * self.config.slots as u64;
            let hit = match self.fidelity {
                Fidelity::Structural => {
                    let mut found = None;
                    for chunk in mappings.chunks(self.config.width) {
                        if let Some(renumbered) = self.scr.filter_lookup(chunk, old.0) {
                            found = Some(renumbered);
                            break;
                        }
                    }
                    let expected = mappings.iter().find(|&&(o, _)| o == old.0).map(|&(_, r)| r);
                    assert_eq!(found, expected, "SCR filter tree diverged");
                    found
                }
                Fidelity::Fast => mappings
                    .iter()
                    .position(|&(o, _)| o == old.0)
                    .map(|hit| mappings[hit].1),
            };
            match hit {
                Some(renumbered) => new_ids.push(Vid(renumbered)),
                None => {
                    let fresh = new_to_old.len() as u32;
                    assert!(
                        mappings.len() < self.sram_capacity,
                        "reindexer SRAM bank overflow at {} mappings",
                        mappings.len()
                    );
                    mappings.push((old.0, fresh));
                    new_to_old.push(old);
                    new_ids.push(Vid(fresh));
                    cycles += 1; // insert
                }
            }
        }

        ReindexRun {
            result: ReindexResult {
                new_ids,
                new_to_old,
            },
            cycles,
            scr_passes,
            peak_mappings: mappings.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_algo::ordering::order_edges_std;
    use agnn_algo::reindex::reindex_hashmap;
    use agnn_algo::reshape::pointer_array_sequential;
    use agnn_graph::generate;

    fn upe_kernel(count: usize, width: usize, fidelity: Fidelity) -> UpeKernel {
        UpeKernel::with_fidelity(UpeConfig::new(count, width), fidelity)
    }

    #[test]
    fn scheduler_balances_jobs() {
        assert_eq!(schedule_makespan([4, 4, 4, 4], 2), 8);
        assert_eq!(schedule_makespan([8, 1, 1, 1], 2), 8);
        assert_eq!(schedule_makespan(std::iter::empty(), 3), 0);
        assert_eq!(schedule_makespan([5], 10), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn scheduler_rejects_zero_workers() {
        schedule_makespan([1], 0);
    }

    #[test]
    fn sort_edges_matches_golden_model_both_fidelities() {
        let g = generate::power_law(80, 600, 0.9, 7);
        let expected = order_edges_std(g.edges());
        for fidelity in [Fidelity::Fast, Fidelity::Structural] {
            let kernel = upe_kernel(4, 16, fidelity);
            let run = kernel.sort_edges(g.edges());
            assert_eq!(run.sorted, expected, "{fidelity:?}");
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn fidelities_agree_on_cycles() {
        let g = generate::power_law(60, 400, 0.8, 3);
        let fast = upe_kernel(4, 16, Fidelity::Fast).sort_edges(g.edges());
        let structural = upe_kernel(4, 16, Fidelity::Structural).sort_edges(g.edges());
        assert_eq!(fast.cycles, structural.cycles);
        assert_eq!(fast.sorted, structural.sorted);
    }

    #[test]
    fn sort_empty_and_single() {
        let kernel = upe_kernel(2, 8, Fidelity::Structural);
        assert!(kernel.sort_edges(&[]).sorted.is_empty());
        let one = [Edge::new(Vid(3), Vid(1))];
        assert_eq!(kernel.sort_edges(&one).sorted, one.to_vec());
    }

    #[test]
    fn more_upes_reduce_sort_cycles() {
        let g = generate::power_law(200, 4_000, 0.8, 5);
        let few = upe_kernel(2, 64, Fidelity::Fast).sort_edges(g.edges());
        let many = upe_kernel(32, 64, Fidelity::Fast).sort_edges(g.edges());
        assert!(many.cycles < few.cycles);
    }

    #[test]
    fn wider_upes_reduce_sort_cycles() {
        let g = generate::power_law(200, 4_000, 0.8, 5);
        let narrow = upe_kernel(8, 16, Fidelity::Fast).sort_edges(g.edges());
        let wide = upe_kernel(8, 256, Fidelity::Fast).sort_edges(g.edges());
        assert!(wide.cycles < narrow.cycles);
    }

    #[test]
    fn select_layer_counts_draws_and_replays_extractions() {
        let pools = vec![
            PoolRecord {
                parents: vec![Vid(0)],
                pool_len: 5,
                positions: vec![4, 0, 2],
            },
            PoolRecord {
                parents: vec![Vid(1)],
                pool_len: 3,
                positions: vec![1],
            },
        ];
        let values = vec![vec![10, 11, 12, 13, 14], vec![20, 21, 22]];
        let kernel = upe_kernel(1, 8, Fidelity::Structural);
        let run = kernel.select_layer(&pools, &values);
        // Pool 1: 3 draws + 1 extraction; pool 2: 1 draw + 1 extraction.
        assert_eq!(run.cycles, 6);
        assert_eq!(run.upe_passes, 6);
    }

    #[test]
    fn select_layer_parallelizes_across_upes() {
        let pools: Vec<PoolRecord> = (0..8)
            .map(|i| PoolRecord {
                parents: vec![Vid(i)],
                pool_len: 4,
                positions: vec![0, 1],
            })
            .collect();
        let values: Vec<Vec<u64>> = (0..8).map(|_| vec![1, 2, 3, 4]).collect();
        let serial = upe_kernel(1, 8, Fidelity::Fast).select_layer(&pools, &values);
        let parallel = upe_kernel(8, 8, Fidelity::Fast).select_layer(&pools, &values);
        assert_eq!(serial.cycles, 8 * 3);
        assert_eq!(parallel.cycles, 3);
    }

    #[test]
    fn reshaper_matches_golden_pointer_array() {
        let g = generate::power_law(64, 800, 1.0, 9);
        let mut dsts: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        let expected = pointer_array_sequential(64, &dsts);
        for fidelity in [Fidelity::Fast, Fidelity::Structural] {
            let reshaper = Reshaper::with_fidelity(ScrConfig::new(2, 16), fidelity);
            let run = reshaper.build_pointers(64, &dsts);
            assert_eq!(run.pointers, expected, "{fidelity:?}");
        }
    }

    #[test]
    fn reshaper_cycle_count_tracks_table_i_bound() {
        // cycles ~ max(n / slots, e / width) for uniform data (Table I).
        let g = generate::uniform(256, 4_096, 2);
        let mut dsts: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        let reshaper = Reshaper::new(ScrConfig::new(4, 64));
        let run = reshaper.build_pointers(256, &dsts);
        let bound = 4_096u64 / 64; // the edge-side term binds here
        assert!(
            run.cycles >= bound && run.cycles < bound * 3,
            "cycles {} vs bound {bound}",
            run.cycles
        );
    }

    #[test]
    fn reshaper_handles_empty_graph() {
        let reshaper = Reshaper::new(ScrConfig::new(1, 8));
        let run = reshaper.build_pointers(5, &[]);
        assert_eq!(run.pointers, vec![0; 6]);
    }

    #[test]
    fn reshaper_handles_hub_vertex() {
        // One destination owning every edge exercises the consume-window
        // path where no target finishes for many cycles.
        let dsts = vec![Vid(3); 100];
        let reshaper = Reshaper::with_fidelity(ScrConfig::new(1, 8), Fidelity::Structural);
        let run = reshaper.build_pointers(5, &dsts);
        assert_eq!(run.pointers, vec![0, 0, 0, 0, 100, 100]);
    }

    #[test]
    fn more_slots_help_pointer_heavy_graphs() {
        // Low-degree graph: many vertices, few edges per vertex — the AX
        // pattern of Fig. 23a where slot count matters.
        let g = generate::uniform(2_048, 4_096, 3);
        let mut dsts: Vec<Vid> = g.edges().iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        let one = Reshaper::new(ScrConfig::new(1, 256)).build_pointers(2_048, &dsts);
        let eight = Reshaper::new(ScrConfig::new(8, 256)).build_pointers(2_048, &dsts);
        assert!(eight.cycles * 2 < one.cycles);
    }

    #[test]
    fn reindexer_matches_golden_model_both_fidelities() {
        let stream: Vec<Vid> = [5u32, 9, 5, 1, 9, 9, 2, 5].into_iter().map(Vid).collect();
        let expected = reindex_hashmap(&stream);
        for fidelity in [Fidelity::Fast, Fidelity::Structural] {
            let reindexer = Reindexer::with_fidelity(ScrConfig::new(2, 4), fidelity);
            let run = reindexer.reindex(&stream);
            assert_eq!(run.result, expected, "{fidelity:?}");
            assert_eq!(run.peak_mappings, 4);
        }
    }

    #[test]
    fn reindexer_charges_insert_cycles() {
        let reindexer = Reindexer::new(ScrConfig::new(1, 8));
        // All distinct: each input costs 1 lookup + 1 insert.
        let stream: Vec<Vid> = (0..5).map(Vid).collect();
        let run = reindexer.reindex(&stream);
        assert_eq!(run.cycles, 10);
        // All duplicates after the first: 1 lookup each, single insert.
        let dup = vec![Vid(7); 5];
        let run = reindexer.reindex(&dup);
        assert_eq!(run.cycles, 5 + 1);
    }

    #[test]
    fn reindexer_bank_count_grows_with_mapping_size() {
        // Lookups stay single-cycle (banked search), but the comparator
        // work — scr_passes — grows with the number of occupied banks.
        let narrow = Reindexer::new(ScrConfig::new(1, 2));
        let stream: Vec<Vid> = (0..64).map(Vid).collect();
        let run = narrow.reindex(&stream);
        assert_eq!(run.cycles, 64 + 64, "one lookup + one insert per input");
        let expected_bank_exams: u64 = (0..64u64).map(|i| i.div_ceil(2).max(1)).sum();
        assert_eq!(run.scr_passes, expected_bank_exams);
    }

    #[test]
    fn reindexer_empty_stream() {
        let run = Reindexer::new(ScrConfig::new(1, 8)).reindex(&[]);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.result.num_unique(), 0);
    }
}

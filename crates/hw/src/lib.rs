//! Cycle-level functional simulator of the AutoGNN accelerator.
//!
//! Every block §IV describes is simulated at the level the paper describes
//! it, and its outputs are verified against the `agnn-algo` golden models:
//!
//! - [`upe`] — the Unified Processing Element: a hierarchical-adder
//!   prefix-sum network (Fig. 12b), an AND-mask filter, and a power-of-two
//!   relocation router (Fig. 12c), composed into set-partitioning, chunk
//!   radix sort and one-hot extraction;
//! - [`scr`] — the Single-Cycle Reducer: a comparator array feeding an adder
//!   tree (reshaper flavour) or an OR filter tree carrying `value + hit`
//!   (reindexer flavour) (Fig. 13b);
//! - [`kernel`] — the UPE kernel (controller + scoreboard scheduler,
//!   Fig. 12a) and SCR kernel (reshaper + reindexer with SRAM bank,
//!   Fig. 13a/c), with cycle accounting exactly as the paper charges it;
//! - [`shell`] — the fixed HW-shell: PCIe DMA-main/DMA-bypass transfer
//!   models and the FPP/ICAP partial-reconfiguration timing model (§IV-B,
//!   §V-B);
//! - [`floorplan`] — LUT accounting for UPE/SCR instances and the 70:30
//!   region split (Fig. 17, §V-B);
//! - [`engine`] — the end-to-end preprocessing workflow of Fig. 14
//!   (ordering → reshaping → selection → reindexing → subgraph conversion),
//!   bit-identical to `agnn_algo::pipeline::preprocess` under the same seed.
//!
//! # Examples
//!
//! ```
//! use agnn_algo::pipeline::SampleParams;
//! use agnn_graph::{generate, Vid};
//! use agnn_hw::{engine::AutoGnnEngine, HwConfig};
//!
//! let coo = generate::power_law(200, 2_000, 0.8, 1);
//! let mut engine = AutoGnnEngine::new(HwConfig::vpk180_default());
//! let run = engine.preprocess(&coo, &[Vid(0)], &SampleParams::new(5, 2), 42);
//! assert!(run.report.total_cycles() > 0);
//! ```

pub mod engine;
pub mod floorplan;
pub mod kernel;
pub mod metrics;
pub mod scr;
pub mod shell;
pub mod upe;

mod config;

pub use config::{HwConfig, ScrConfig, UpeConfig};
pub use metrics::{HwReport, StageCycles};

//! Cycle and byte accounting for the simulator.

/// Per-stage counters, one per preprocessing task (the Fig. 6 breakdown).
///
/// Used for both cycles and DRAM bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCycles {
    /// Edge ordering (UPE kernel).
    pub ordering: u64,
    /// Data reshaping (SCR reshaper).
    pub reshaping: u64,
    /// Unique random selection (UPE kernel).
    pub selecting: u64,
    /// Subgraph reindexing (SCR reindexer).
    pub reindexing: u64,
}

impl StageCycles {
    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.ordering + self.reshaping + self.selecting + self.reindexing
    }

    /// Element-wise addition.
    pub fn add(&self, other: &StageCycles) -> StageCycles {
        StageCycles {
            ordering: self.ordering + other.ordering,
            reshaping: self.reshaping + other.reshaping,
            selecting: self.selecting + other.selecting,
            reindexing: self.reindexing + other.reindexing,
        }
    }

    /// The four stages as `(name, value)` pairs, in pipeline order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 4] {
        [
            ("ordering", self.ordering),
            ("reshaping", self.reshaping),
            ("selecting", self.selecting),
            ("reindexing", self.reindexing),
        ]
    }
}

/// A full run report: per-stage cycles, per-stage DRAM traffic and
/// network-invocation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwReport {
    /// Per-stage kernel cycles.
    pub cycles: StageCycles,
    /// Per-stage DRAM bytes moved (reads + writes).
    pub dram_bytes: StageCycles,
    /// Prefix-sum/relocation network invocations (UPE passes).
    pub upe_passes: u64,
    /// Comparator-window evaluations (SCR passes).
    pub scr_passes: u64,
}

impl HwReport {
    /// Total kernel cycles across all stages.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.total()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.dram_bytes.total()
    }

    /// Element-wise accumulation.
    pub fn add(&self, other: &HwReport) -> HwReport {
        HwReport {
            cycles: self.cycles.add(&other.cycles),
            dram_bytes: self.dram_bytes.add(&other.dram_bytes),
            upe_passes: self.upe_passes + other.upe_passes,
            scr_passes: self.scr_passes + other.scr_passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HwReport {
        HwReport {
            cycles: StageCycles {
                ordering: 100,
                reshaping: 50,
                selecting: 30,
                reindexing: 20,
            },
            dram_bytes: StageCycles {
                ordering: 4_000,
                reshaping: 500,
                selecting: 300,
                reindexing: 200,
            },
            upe_passes: 10,
            scr_passes: 5,
        }
    }

    #[test]
    fn totals_accumulate() {
        let r = sample();
        assert_eq!(r.total_cycles(), 200);
        assert_eq!(r.total_dram_bytes(), 5_000);
        let doubled = r.add(&r);
        assert_eq!(doubled.total_cycles(), 400);
        assert_eq!(doubled.upe_passes, 20);
        assert_eq!(doubled.dram_bytes.ordering, 8_000);
    }

    #[test]
    fn stage_pairs_cover_all_stages() {
        let pairs = sample().cycles.as_pairs();
        assert_eq!(pairs.len(), 4);
        let sum: u64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 200);
        assert_eq!(pairs[0].0, "ordering");
    }

    #[test]
    fn zero_report_is_quiet() {
        let r = HwReport::default();
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.total_dram_bytes(), 0);
    }
}

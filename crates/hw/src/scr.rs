//! The Single-Cycle Reducer (SCR).
//!
//! Fig. 13b: an SCR pairs a comparator array — one 32-bit comparator per
//! lane, evaluating every element of the input window against a single
//! target — with a reducer tree. For the *reshaper* the reducer is an adder
//! tree collapsing the 1-bit comparator outputs into a count; for the
//! *reindexer* it is a filter tree of OR gates carrying `value + hit`
//! (32 + 1 bits) so a matching mapping entry survives to the root.
//!
//! Both trees are simulated layer by layer.

/// One SCR slot of a fixed comparator width.
///
/// # Examples
///
/// ```
/// use agnn_hw::scr::Scr;
///
/// let scr = Scr::new(8);
/// assert_eq!(scr.count_less_than(&[1, 4, 9, 4], 5), 3);
/// assert_eq!(scr.filter_lookup(&[(7, 0), (9, 1)], 9), Some(1));
/// assert_eq!(scr.filter_lookup(&[(7, 0), (9, 1)], 8), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scr {
    width: usize,
}

impl Scr {
    /// Creates an SCR slot.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two ≥ 2.
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "SCR width must be a power of two >= 2, got {width}"
        );
        Scr { width }
    }

    /// Comparators per window.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reshaper datapath: count window elements strictly below `target`.
    ///
    /// "The comparator subtracts the target from each element … the reducer,
    /// implemented as an adder tree, aggregates these results into one value
    /// that populates the pointer array" (§IV-C). The paper's comparator
    /// flags `element − target ≥ 0`; counting the complement (strictly
    /// smaller) is the quantity `pointer[v]` needs.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the comparator width.
    pub fn count_less_than(&self, window: &[u32], target: u32) -> u32 {
        assert!(window.len() <= self.width, "window exceeds SCR width");
        // Comparator array: one bit per lane.
        let mut level: Vec<u32> = window.iter().map(|&e| u32::from(e < target)).collect();
        // Adder tree: log2 layers of pairwise sums (width up to log n bits).
        while level.len() > 1 {
            level = level.chunks(2).map(|pair| pair.iter().sum()).collect();
        }
        level.first().copied().unwrap_or(0)
    }

    /// Reindexer datapath: search the `(original, renumbered)` mapping
    /// window for `target`, returning the renumbered VID on a hit.
    ///
    /// "The reducer adopts a filter tree (OR gates) instead of an adder
    /// tree … the filter tree's bit width must match that of each element
    /// being filtered plus one (32+1 bits)" (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the comparator width.
    pub fn filter_lookup(&self, window: &[(u32, u32)], target: u32) -> Option<u32> {
        assert!(window.len() <= self.width, "window exceeds SCR width");
        // Comparator array: lane carries (hit, value) — value gated to 0 on miss.
        let mut level: Vec<(bool, u32)> = window
            .iter()
            .map(|&(original, renumbered)| {
                let hit = original == target;
                (hit, if hit { renumbered } else { 0 })
            })
            .collect();
        // Filter tree: OR both the hit bit and the gated value.
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    pair.iter()
                        .fold((false, 0u32), |(h, v), &(ph, pv)| (h | ph, v | pv))
                })
                .collect();
        }
        match level.first() {
            Some(&(true, value)) => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn count_boundaries() {
        let scr = Scr::new(8);
        assert_eq!(scr.count_less_than(&[], 5), 0);
        assert_eq!(scr.count_less_than(&[5, 5, 5], 5), 0, "strictly less");
        assert_eq!(scr.count_less_than(&[4, 5, 6], 5), 1);
        assert_eq!(scr.count_less_than(&[0; 8], 1), 8);
    }

    #[test]
    fn count_full_width_window() {
        let scr = Scr::new(4);
        assert_eq!(scr.count_less_than(&[1, 2, 3, 4], 10), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds SCR width")]
    fn oversized_window_panics() {
        Scr::new(2).count_less_than(&[1, 2, 3], 4);
    }

    #[test]
    fn lookup_hit_returns_mapped_value() {
        let scr = Scr::new(8);
        let window = [(10, 0), (20, 1), (30, 2)];
        assert_eq!(scr.filter_lookup(&window, 20), Some(1));
        assert_eq!(scr.filter_lookup(&window, 30), Some(2));
        assert_eq!(scr.filter_lookup(&window, 40), None);
        assert_eq!(scr.filter_lookup(&[], 1), None);
    }

    #[test]
    fn lookup_value_zero_is_distinguished_from_miss() {
        // The hit bit, not the value, signals success ("an indication of a
        // search hit", §IV-C).
        let scr = Scr::new(4);
        assert_eq!(scr.filter_lookup(&[(99, 0)], 99), Some(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_width() {
        Scr::new(3);
    }

    proptest! {
        #[test]
        fn prop_adder_tree_equals_filter_count(
            window in proptest::collection::vec(0u32..100, 0..64),
            target in 0u32..100,
        ) {
            let scr = Scr::new(64);
            let expected = window.iter().filter(|&&e| e < target).count() as u32;
            prop_assert_eq!(scr.count_less_than(&window, target), expected);
        }

        #[test]
        fn prop_filter_tree_finds_unique_entry(
            originals in proptest::collection::hash_set(0u32..1000, 0..32),
            target in 0u32..1000,
        ) {
            // Mapping windows hold unique originals by construction (the
            // reindexer only inserts on a miss).
            let window: Vec<(u32, u32)> = originals
                .iter()
                .enumerate()
                .map(|(i, &o)| (o, i as u32))
                .collect();
            let scr = Scr::new(32);
            let expected = window.iter().find(|&&(o, _)| o == target).map(|&(_, r)| r);
            prop_assert_eq!(scr.filter_lookup(&window, target), expected);
        }
    }
}

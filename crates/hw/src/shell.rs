//! The fixed HW-shell: PCIe DMA models, the FPP/ICAP reconfiguration model
//! and device-DRAM graph residency (§IV-B, Fig. 11, §V-B).

/// Graph-delta staging buffers carved out of device DRAM: two, so one
/// delta can land over DMA-main while the previous batch occupies the
/// fabric (§V-B's incremental-read path, double-buffered). Serving layers
/// derive their per-board staging depth (`DELTA_BUFFERS - 1` requests
/// ingested-but-not-computing) from this constant.
pub const DELTA_BUFFERS: usize = 2;

/// PCIe link model shared by DMA-main (descriptor-driven scatter-gather
/// bulk transfers) and DMA-bypass (BAR/MMIO-style small transfers).
/// Uploads and subgraph hand-offs share one DMA engine pair, so a board
/// has a single PCIe transfer in flight at a time; the engine runs
/// independently of the fabric, which is what staged serving pipelines
/// exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective link bandwidth in bytes/second (PCIe 4.0 ×16 ≈ 25 GB/s
    /// after protocol overhead).
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds (descriptor fetch / doorbell).
    pub base_latency: f64,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel {
            bandwidth: 25.0e9,
            base_latency: 10.0e-6,
        }
    }
}

impl PcieModel {
    /// Seconds to move `bytes` across the link.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.base_latency + bytes as f64 / self.bandwidth
    }
}

/// Board-to-board PCIe switch model: the path a graph takes when it
/// migrates between boards' DRAM instead of re-crossing the host link.
///
/// The evaluation chassis hangs every VPK180 off one PCIe switch; the
/// host uplink runs at Gen4 ×16 (≈ 25 GB/s effective, [`PcieModel`]),
/// while peer-to-peer DMA between boards stays inside the Gen5 switch
/// fabric and skips the host-DRAM bounce entirely — roughly twice the
/// effective bandwidth at lower doorbell latency. A cross-board transfer
/// occupies **both** endpoints' DMA engines for its duration (one reads
/// out of device DRAM, one writes in), which is what serving layers price
/// when they stage a migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieSwitchModel {
    /// Effective peer-to-peer bandwidth in bytes/second (Gen5 switch
    /// fabric, no host-memory staging).
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds (peer doorbell + descriptor
    /// exchange, cheaper than a host round trip).
    pub base_latency: f64,
}

impl Default for PcieSwitchModel {
    fn default() -> Self {
        PcieSwitchModel {
            bandwidth: 50.0e9,
            base_latency: 5.0e-6,
        }
    }
}

impl PcieSwitchModel {
    /// Seconds to move `bytes` board-to-board through the switch.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.base_latency + bytes as f64 / self.bandwidth
    }
}

/// Splits a peer-sourced graph ingest into its `(switch_bytes,
/// host_bytes)` legs: of a `total_bytes` graph with `resident_bytes`
/// already on the destination, the prefix the peer holds (`peer_bytes`)
/// crosses the switch and only growth the peer never saw crosses the
/// host link. Locally resident bytes never move, and the two legs
/// partition the growth delta exactly. The single source of this
/// arithmetic — [`HwShell::upload_graph_from_peer`] and pool-level
/// migration accounting must never disagree on it.
pub fn peer_transfer_split(total_bytes: u64, peer_bytes: u64, resident_bytes: u64) -> (u64, u64) {
    let switch_bytes = peer_bytes.min(total_bytes).saturating_sub(resident_bytes);
    let host_bytes = total_bytes.saturating_sub(peer_bytes.max(resident_bytes));
    (switch_bytes, host_bytes)
}

/// Which reconfigurable region(s) a bitstream update touches.
///
/// "Because UPE and SCR reside in separate reconfigurable regions, only the
/// region that needs to change could be reprogrammed, roughly halving the
/// reconfiguration overhead" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigScope {
    /// Nothing changed; no reconfiguration issued.
    None,
    /// Only the UPE region.
    UpeOnly,
    /// Only the SCR region.
    ScrOnly,
    /// Both regions.
    Both,
}

/// FPP/ICAP partial-reconfiguration timing (§V-B): "the reconfiguration
/// process takes ∼230 ms, including 3 ms to load the bitstream from DRAM and
/// 225 ms for FPGA reconfiguration through the Xilinx ICAP IP operating at
/// 100 MHz".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcapModel {
    /// Bitstream load from device DRAM, seconds (per region).
    pub load_secs: f64,
    /// Full-device ICAP reprogram time, seconds (both regions).
    pub reprogram_secs: f64,
}

impl Default for IcapModel {
    fn default() -> Self {
        IcapModel {
            load_secs: 0.003,
            reprogram_secs: 0.225,
        }
    }
}

impl IcapModel {
    /// Seconds to apply a reconfiguration of the given scope.
    pub fn reconfig_secs(&self, scope: ReconfigScope) -> f64 {
        match scope {
            ReconfigScope::None => 0.0,
            // One region is roughly half the reprogram plus its load.
            ReconfigScope::UpeOnly | ReconfigScope::ScrOnly => {
                self.load_secs + self.reprogram_secs / 2.0
            }
            ReconfigScope::Both => 2.0 * self.load_secs + self.reprogram_secs,
        }
    }
}

/// Device DRAM properties and graph residency.
///
/// "Unlike the GPU, which must deallocate the graph datasets during the
/// model inference process, AutoGNN can store the previous graph data within
/// device memory. This enables AutoGNN to only read the updated portions of
/// the graph from the host" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak device-DRAM bandwidth in bytes/second (LPDDR4 class on the
    /// Versal evaluation board).
    pub bandwidth: f64,
    /// Capacity in bytes; bitstream staging (≈ 1 GB for the twenty 50 MB
    /// bitstreams, §V-B) is already carved out.
    pub capacity: u64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            bandwidth: 102.4e9,
            capacity: 15 << 30,
        }
    }
}

/// The HW-shell: PCIe + ICAP + DRAM state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HwShell {
    /// PCIe link model (host uplink).
    pub pcie: PcieModel,
    /// Board-to-board PCIe switch model (peer DMA path).
    pub pcie_switch: PcieSwitchModel,
    /// Reconfiguration timing model.
    pub icap: IcapModel,
    /// Device DRAM model.
    pub dram: DramModel,
    resident_graph_bytes: u64,
}

impl HwShell {
    /// Creates a shell with default models and no resident graph.
    pub fn new() -> Self {
        HwShell::default()
    }

    /// Bytes of graph currently resident in device DRAM.
    pub fn resident_graph_bytes(&self) -> u64 {
        self.resident_graph_bytes
    }

    /// Uploads a graph via DMA-main, transferring only the delta beyond what
    /// is already resident. Returns the transfer time in seconds and the
    /// bytes actually moved.
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds DRAM capacity.
    pub fn upload_graph(&mut self, total_bytes: u64) -> (f64, u64) {
        assert!(
            total_bytes <= self.dram.capacity,
            "graph of {total_bytes} bytes exceeds device DRAM capacity"
        );
        let delta = total_bytes.saturating_sub(self.resident_graph_bytes);
        self.resident_graph_bytes = self.resident_graph_bytes.max(total_bytes);
        (self.pcie.transfer_secs(delta), delta)
    }

    /// Uploads a graph whose first `peer_bytes` live in a **peer board's**
    /// DRAM: that prefix crosses the PCIe switch at peer-to-peer bandwidth
    /// and only the remainder (growth the peer never saw) re-crosses the
    /// host link. Returns `(seconds, switch_bytes, host_bytes)`; like
    /// [`HwShell::upload_graph`], bytes already resident locally are never
    /// moved at all.
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds DRAM capacity.
    pub fn upload_graph_from_peer(&mut self, total_bytes: u64, peer_bytes: u64) -> (f64, u64, u64) {
        assert!(
            total_bytes <= self.dram.capacity,
            "graph of {total_bytes} bytes exceeds device DRAM capacity"
        );
        let resident = self.resident_graph_bytes;
        let (switch_bytes, host_bytes) = peer_transfer_split(total_bytes, peer_bytes, resident);
        self.resident_graph_bytes = resident.max(total_bytes);
        (
            self.pcie_switch.transfer_secs(switch_bytes) + self.pcie.transfer_secs(host_bytes),
            switch_bytes,
            host_bytes,
        )
    }

    /// Drops residency (e.g. switching to an unrelated graph).
    pub fn evict_graph(&mut self) {
        self.resident_graph_bytes = 0;
    }

    /// Sends the preprocessed subgraph to the GPU via DMA-bypass.
    pub fn download_subgraph(&self, bytes: u64) -> f64 {
        self.pcie.transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_zero_bytes_is_free() {
        assert_eq!(PcieModel::default().transfer_secs(0), 0.0);
    }

    #[test]
    fn pcie_time_scales_with_bytes() {
        let pcie = PcieModel::default();
        let one_gb = pcie.transfer_secs(1 << 30);
        // ~43 ms for 1 GiB at 25 GB/s.
        assert!(one_gb > 0.04 && one_gb < 0.05, "got {one_gb}");
    }

    #[test]
    fn icap_matches_paper_230ms() {
        let icap = IcapModel::default();
        let both = icap.reconfig_secs(ReconfigScope::Both);
        assert!((both - 0.231).abs() < 1e-9, "~230 ms total, got {both}");
        let single = icap.reconfig_secs(ReconfigScope::UpeOnly);
        assert!(single < both / 1.9, "single region roughly halves cost");
        assert_eq!(icap.reconfig_secs(ReconfigScope::None), 0.0);
    }

    #[test]
    fn shell_uploads_only_deltas() {
        let mut shell = HwShell::new();
        let (t1, moved1) = shell.upload_graph(1_000_000);
        assert_eq!(moved1, 1_000_000);
        assert!(t1 > 0.0);
        // Growing graph: only the new edges cross PCIe.
        let (_, moved2) = shell.upload_graph(1_100_000);
        assert_eq!(moved2, 100_000);
        // Same size again: nothing to move.
        let (t3, moved3) = shell.upload_graph(1_100_000);
        assert_eq!(moved3, 0);
        assert_eq!(t3, 0.0);
    }

    #[test]
    fn eviction_forces_full_upload() {
        let mut shell = HwShell::new();
        shell.upload_graph(500_000);
        shell.evict_graph();
        let (_, moved) = shell.upload_graph(500_000);
        assert_eq!(moved, 500_000);
    }

    #[test]
    #[should_panic(expected = "exceeds device DRAM capacity")]
    fn oversized_graph_panics() {
        HwShell::new().upload_graph(u64::MAX);
    }

    #[test]
    fn switch_beats_the_host_link_per_byte() {
        let host = PcieModel::default();
        let switch = PcieSwitchModel::default();
        assert_eq!(switch.transfer_secs(0), 0.0);
        let bytes = 1u64 << 30;
        assert!(
            switch.transfer_secs(bytes) < host.transfer_secs(bytes) / 1.8,
            "peer DMA must roughly halve the transfer time"
        );
    }

    #[test]
    fn peer_upload_splits_bytes_between_switch_and_host() {
        let mut shell = HwShell::new();
        // A peer holds 800k of a graph that has since grown to 1M: the
        // warm prefix crosses the switch, only the growth hits the host.
        let (secs, switch_bytes, host_bytes) = shell.upload_graph_from_peer(1_000_000, 800_000);
        assert_eq!(switch_bytes, 800_000);
        assert_eq!(host_bytes, 200_000);
        assert_eq!(shell.resident_graph_bytes(), 1_000_000);
        let expected = shell.pcie_switch.transfer_secs(800_000) + shell.pcie.transfer_secs(200_000);
        assert!((secs - expected).abs() < 1e-15);
        // Fully resident: nothing moves on either path.
        assert_eq!(
            shell.upload_graph_from_peer(1_000_000, 800_000),
            (0.0, 0, 0)
        );
    }

    #[test]
    fn peer_upload_never_removes_locally_resident_bytes() {
        let mut shell = HwShell::new();
        shell.upload_graph(600_000);
        // Peer holds 900k of a 1M graph; the local 600k stay put, the
        // switch tops up to the peer's 900k, the host supplies the rest.
        let (_, switch_bytes, host_bytes) = shell.upload_graph_from_peer(1_000_000, 900_000);
        assert_eq!(switch_bytes, 300_000);
        assert_eq!(host_bytes, 100_000);
        // A peer holding more than the current graph caps at the graph.
        shell.evict_graph();
        let (_, switch_bytes, host_bytes) = shell.upload_graph_from_peer(500_000, 2_000_000);
        assert_eq!(switch_bytes, 500_000);
        assert_eq!(host_bytes, 0);
    }
}

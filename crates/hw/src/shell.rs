//! The fixed HW-shell: PCIe DMA models, the FPP/ICAP reconfiguration model
//! and device-DRAM graph residency (§IV-B, Fig. 11, §V-B).

/// Graph-delta staging buffers carved out of device DRAM: two, so one
/// delta can land over DMA-main while the previous batch occupies the
/// fabric (§V-B's incremental-read path, double-buffered). Serving layers
/// derive their per-board staging depth (`DELTA_BUFFERS - 1` requests
/// ingested-but-not-computing) from this constant.
pub const DELTA_BUFFERS: usize = 2;

/// PCIe link model shared by DMA-main (descriptor-driven scatter-gather
/// bulk transfers) and DMA-bypass (BAR/MMIO-style small transfers).
/// Uploads and subgraph hand-offs share one DMA engine pair, so a board
/// has a single PCIe transfer in flight at a time; the engine runs
/// independently of the fabric, which is what staged serving pipelines
/// exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective link bandwidth in bytes/second (PCIe 4.0 ×16 ≈ 25 GB/s
    /// after protocol overhead).
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds (descriptor fetch / doorbell).
    pub base_latency: f64,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel {
            bandwidth: 25.0e9,
            base_latency: 10.0e-6,
        }
    }
}

impl PcieModel {
    /// Seconds to move `bytes` across the link.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.base_latency + bytes as f64 / self.bandwidth
    }
}

/// Which reconfigurable region(s) a bitstream update touches.
///
/// "Because UPE and SCR reside in separate reconfigurable regions, only the
/// region that needs to change could be reprogrammed, roughly halving the
/// reconfiguration overhead" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigScope {
    /// Nothing changed; no reconfiguration issued.
    None,
    /// Only the UPE region.
    UpeOnly,
    /// Only the SCR region.
    ScrOnly,
    /// Both regions.
    Both,
}

/// FPP/ICAP partial-reconfiguration timing (§V-B): "the reconfiguration
/// process takes ∼230 ms, including 3 ms to load the bitstream from DRAM and
/// 225 ms for FPGA reconfiguration through the Xilinx ICAP IP operating at
/// 100 MHz".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcapModel {
    /// Bitstream load from device DRAM, seconds (per region).
    pub load_secs: f64,
    /// Full-device ICAP reprogram time, seconds (both regions).
    pub reprogram_secs: f64,
}

impl Default for IcapModel {
    fn default() -> Self {
        IcapModel {
            load_secs: 0.003,
            reprogram_secs: 0.225,
        }
    }
}

impl IcapModel {
    /// Seconds to apply a reconfiguration of the given scope.
    pub fn reconfig_secs(&self, scope: ReconfigScope) -> f64 {
        match scope {
            ReconfigScope::None => 0.0,
            // One region is roughly half the reprogram plus its load.
            ReconfigScope::UpeOnly | ReconfigScope::ScrOnly => {
                self.load_secs + self.reprogram_secs / 2.0
            }
            ReconfigScope::Both => 2.0 * self.load_secs + self.reprogram_secs,
        }
    }
}

/// Device DRAM properties and graph residency.
///
/// "Unlike the GPU, which must deallocate the graph datasets during the
/// model inference process, AutoGNN can store the previous graph data within
/// device memory. This enables AutoGNN to only read the updated portions of
/// the graph from the host" (§V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak device-DRAM bandwidth in bytes/second (LPDDR4 class on the
    /// Versal evaluation board).
    pub bandwidth: f64,
    /// Capacity in bytes; bitstream staging (≈ 1 GB for the twenty 50 MB
    /// bitstreams, §V-B) is already carved out.
    pub capacity: u64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            bandwidth: 102.4e9,
            capacity: 15 << 30,
        }
    }
}

/// The HW-shell: PCIe + ICAP + DRAM state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HwShell {
    /// PCIe link model.
    pub pcie: PcieModel,
    /// Reconfiguration timing model.
    pub icap: IcapModel,
    /// Device DRAM model.
    pub dram: DramModel,
    resident_graph_bytes: u64,
}

impl HwShell {
    /// Creates a shell with default models and no resident graph.
    pub fn new() -> Self {
        HwShell::default()
    }

    /// Bytes of graph currently resident in device DRAM.
    pub fn resident_graph_bytes(&self) -> u64 {
        self.resident_graph_bytes
    }

    /// Uploads a graph via DMA-main, transferring only the delta beyond what
    /// is already resident. Returns the transfer time in seconds and the
    /// bytes actually moved.
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds DRAM capacity.
    pub fn upload_graph(&mut self, total_bytes: u64) -> (f64, u64) {
        assert!(
            total_bytes <= self.dram.capacity,
            "graph of {total_bytes} bytes exceeds device DRAM capacity"
        );
        let delta = total_bytes.saturating_sub(self.resident_graph_bytes);
        self.resident_graph_bytes = self.resident_graph_bytes.max(total_bytes);
        (self.pcie.transfer_secs(delta), delta)
    }

    /// Drops residency (e.g. switching to an unrelated graph).
    pub fn evict_graph(&mut self) {
        self.resident_graph_bytes = 0;
    }

    /// Sends the preprocessed subgraph to the GPU via DMA-bypass.
    pub fn download_subgraph(&self, bytes: u64) -> f64 {
        self.pcie.transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_zero_bytes_is_free() {
        assert_eq!(PcieModel::default().transfer_secs(0), 0.0);
    }

    #[test]
    fn pcie_time_scales_with_bytes() {
        let pcie = PcieModel::default();
        let one_gb = pcie.transfer_secs(1 << 30);
        // ~43 ms for 1 GiB at 25 GB/s.
        assert!(one_gb > 0.04 && one_gb < 0.05, "got {one_gb}");
    }

    #[test]
    fn icap_matches_paper_230ms() {
        let icap = IcapModel::default();
        let both = icap.reconfig_secs(ReconfigScope::Both);
        assert!((both - 0.231).abs() < 1e-9, "~230 ms total, got {both}");
        let single = icap.reconfig_secs(ReconfigScope::UpeOnly);
        assert!(single < both / 1.9, "single region roughly halves cost");
        assert_eq!(icap.reconfig_secs(ReconfigScope::None), 0.0);
    }

    #[test]
    fn shell_uploads_only_deltas() {
        let mut shell = HwShell::new();
        let (t1, moved1) = shell.upload_graph(1_000_000);
        assert_eq!(moved1, 1_000_000);
        assert!(t1 > 0.0);
        // Growing graph: only the new edges cross PCIe.
        let (_, moved2) = shell.upload_graph(1_100_000);
        assert_eq!(moved2, 100_000);
        // Same size again: nothing to move.
        let (t3, moved3) = shell.upload_graph(1_100_000);
        assert_eq!(moved3, 0);
        assert_eq!(t3, 0.0);
    }

    #[test]
    fn eviction_forces_full_upload() {
        let mut shell = HwShell::new();
        shell.upload_graph(500_000);
        shell.evict_graph();
        let (_, moved) = shell.upload_graph(500_000);
        assert_eq!(moved, 500_000);
    }

    #[test]
    #[should_panic(expected = "exceeds device DRAM capacity")]
    fn oversized_graph_panics() {
        HwShell::new().upload_graph(u64::MAX);
    }
}

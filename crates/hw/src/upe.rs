//! The Unified Processing Element (UPE).
//!
//! Fig. 12: each UPE integrates a *prefix-sum logic* — a hierarchical adder
//! network producing the displacement array in `O(log n)` layers — an
//! AND-gate mask clearing condition-failing elements, and a *relocation
//! logic* of `O(log n)` routing layers whose 2:1 muxes shift elements
//! leftward by power-of-two distances. Composed, these execute one
//! set-partitioning pass per cycle, which §IV-C builds radix sort, merging
//! and uni-random extraction on.
//!
//! The simulation is structural: every layer of every network is evaluated
//! explicitly, and the router asserts the paper's implicit claim that
//! compaction displacements never make two elements contend for one mux.

/// One UPE instance of a fixed width (a power of two).
///
/// # Examples
///
/// ```
/// use agnn_hw::upe::Upe;
///
/// let upe = Upe::new(8);
/// let values = [10, 11, 12, 13, 14, 15, 16, 17];
/// let cond = [false, true, false, false, true, true, false, false];
/// assert_eq!(upe.set_partition(&values, &cond), vec![11, 14, 15]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upe {
    width: usize,
}

impl Upe {
    /// Creates a UPE.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two ≥ 2.
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "UPE width must be a power of two >= 2, got {width}"
        );
        Upe { width }
    }

    /// Elements processed per pass.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of adder / routing layers (`log2(width)`).
    pub fn depth(&self) -> u32 {
        self.width.trailing_zeros()
    }

    /// The prefix-sum logic (Fig. 12b): inclusive prefix sums of the boolean
    /// condition array, evaluated as `log2(w)` explicit adder layers
    /// (Hillis–Steele: layer `j` adds the value `2^j` lanes to the left).
    ///
    /// # Panics
    ///
    /// Panics if `cond` exceeds the UPE width.
    pub fn prefix_sum_network(&self, cond: &[bool]) -> Vec<u32> {
        assert!(cond.len() <= self.width, "input exceeds UPE width");
        let mut sums: Vec<u32> = cond.iter().map(|&c| u32::from(c)).collect();
        let mut stride = 1;
        while stride < self.width {
            let prev = sums.clone();
            for lane in stride..sums.len() {
                sums[lane] = prev[lane] + prev[lane - stride];
            }
            stride <<= 1;
        }
        sums
    }

    /// The full set-partition pass: prefix-sum network → AND mask →
    /// relocation router. Returns the condition-true elements compacted to
    /// the front, in input order.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or exceed the UPE width.
    pub fn set_partition(&self, values: &[u64], cond: &[bool]) -> Vec<u64> {
        assert_eq!(values.len(), cond.len(), "condition array length mismatch");
        let inclusive = self.prefix_sum_network(cond);
        let kept = inclusive.last().copied().unwrap_or(0) as usize;

        // AND-gate mask + displacement per lane: a kept element at lane `i`
        // with rank `inclusive[i] - 1` must shift left by `i - rank`.
        let mut lanes: Vec<Option<(u64, usize)>> = values
            .iter()
            .zip(cond)
            .enumerate()
            .map(|(lane, (&value, &keep))| {
                keep.then(|| (value, lane - (inclusive[lane] as usize - 1)))
            })
            .collect();

        // Relocation router (Fig. 12c): one layer per displacement bit, LSB
        // first; each mux lane accepts at most one element per layer.
        for layer in 0..self.depth() {
            let shift = 1usize << layer;
            let mut next: Vec<Option<(u64, usize)>> = vec![None; lanes.len()];
            for (lane, slot) in lanes.iter().enumerate() {
                if let Some((value, disp)) = *slot {
                    let (target, rest) = if disp & shift != 0 {
                        (lane - shift, disp & !shift)
                    } else {
                        (lane, disp)
                    };
                    assert!(
                        next[target].is_none(),
                        "relocation mux contention at lane {target}"
                    );
                    next[target] = Some((value, rest));
                }
            }
            lanes = next;
        }

        lanes[..kept]
            .iter()
            .map(|lane| lane.expect("compacted lane populated").0)
            .collect()
    }

    /// Extracts the single element at `position` via a one-hot condition —
    /// the uni-random selection datapath ("draws a new random index … to
    /// create a one-hot condition for that index, and let the UPEs run
    /// set-partitioning to extract the chosen element in a single cycle",
    /// §V-A, Fig. 16).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds.
    pub fn extract_one_hot(&self, values: &[u64], position: usize) -> u64 {
        assert!(position < values.len(), "one-hot position out of bounds");
        let cond: Vec<bool> = (0..values.len()).map(|lane| lane == position).collect();
        let extracted = self.set_partition(values, &cond);
        extracted[0]
    }

    /// Sorts one chunk (≤ width elements) by binary LSD radix using one
    /// set-partition pass per significant key bit: zeros are compacted to
    /// the front and ones appended, preserving stability (§IV-A: radix
    /// sort's "digit-wise passes are precisely set-partitioning").
    ///
    /// Returns the sorted chunk and the number of partition passes (cycles).
    pub fn radix_sort_chunk(&self, chunk: &[u64]) -> (Vec<u64>, u64) {
        assert!(chunk.len() <= self.width, "chunk exceeds UPE width");
        if chunk.len() <= 1 {
            return (chunk.to_vec(), 0);
        }
        let max = chunk.iter().copied().max().expect("non-empty");
        let significant_bits = 64 - max.leading_zeros();
        let mut keys = chunk.to_vec();
        let mut passes = 0u64;
        for bit in 0..significant_bits {
            let zero_cond: Vec<bool> = keys.iter().map(|k| (k >> bit) & 1 == 0).collect();
            let one_cond: Vec<bool> = zero_cond.iter().map(|&z| !z).collect();
            let mut next = self.set_partition(&keys, &zero_cond);
            next.extend(self.set_partition(&keys, &one_cond));
            keys = next;
            passes += 1;
        }
        (keys, passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_network_equals_scan() {
        let upe = Upe::new(16);
        let cond = [
            true, false, true, true, false, false, true, false, true, true, true, false, false,
            true, false, true,
        ];
        let flags: Vec<u32> = cond.iter().map(|&c| u32::from(c)).collect();
        assert_eq!(
            upe.prefix_sum_network(&cond),
            agnn_algo::scan::inclusive_prefix_sum(&flags)
        );
    }

    #[test]
    fn prefix_network_handles_partial_input() {
        let upe = Upe::new(8);
        assert_eq!(upe.prefix_sum_network(&[true, true, false]), vec![1, 2, 2]);
        assert!(upe.prefix_sum_network(&[]).is_empty());
    }

    #[test]
    fn partition_all_and_none() {
        let upe = Upe::new(4);
        let values = [7, 8, 9, 10];
        assert_eq!(upe.set_partition(&values, &[true; 4]), vec![7, 8, 9, 10]);
        assert!(upe.set_partition(&values, &[false; 4]).is_empty());
    }

    #[test]
    fn one_hot_extraction_returns_each_position() {
        let upe = Upe::new(8);
        let values = [50, 51, 52, 53, 54];
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(upe.extract_one_hot(&values, i), v);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn one_hot_out_of_bounds_panics() {
        Upe::new(4).extract_one_hot(&[1, 2], 2);
    }

    #[test]
    fn radix_chunk_sorts_and_counts_passes() {
        let upe = Upe::new(8);
        let chunk = [6u64, 1, 7, 3, 0, 5, 2, 4];
        let (sorted, passes) = upe.radix_sort_chunk(&chunk);
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(passes, 3, "max key 7 has 3 significant bits");
    }

    #[test]
    fn radix_chunk_trivial_inputs() {
        let upe = Upe::new(8);
        assert_eq!(upe.radix_sort_chunk(&[]), (vec![], 0));
        assert_eq!(upe.radix_sort_chunk(&[9]), (vec![9], 0));
        assert_eq!(upe.radix_sort_chunk(&[0, 0, 0]), (vec![0, 0, 0], 0));
    }

    #[test]
    fn radix_chunk_is_stable_on_equal_keys() {
        // Stability is what makes LSD radix correct; equal keys cannot be
        // distinguished in the output, but the multi-bit path must still
        // sort correctly with duplicates present.
        let upe = Upe::new(8);
        let chunk = [5u64, 3, 5, 3, 1];
        let (sorted, _) = upe.radix_sort_chunk(&chunk);
        assert_eq!(sorted, vec![1, 3, 3, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_width() {
        Upe::new(12);
    }

    #[test]
    #[should_panic(expected = "exceeds UPE width")]
    fn rejects_oversized_chunk() {
        Upe::new(4).radix_sort_chunk(&[1, 2, 3, 4, 5]);
    }

    proptest! {
        #[test]
        fn prop_partition_network_equals_software_filter(
            values in proptest::collection::vec(any::<u64>(), 0..64),
            mask in any::<u64>(),
        ) {
            let upe = Upe::new(64);
            let cond: Vec<bool> = (0..values.len()).map(|i| mask >> i & 1 == 1).collect();
            let expected: Vec<u64> = values
                .iter()
                .zip(&cond)
                .filter(|(_, &c)| c)
                .map(|(&v, _)| v)
                .collect();
            prop_assert_eq!(upe.set_partition(&values, &cond), expected);
        }

        #[test]
        fn prop_radix_chunk_equals_std_sort(
            chunk in proptest::collection::vec(any::<u64>(), 0..32),
        ) {
            let upe = Upe::new(32);
            let (sorted, _) = upe.radix_sort_chunk(&chunk);
            let mut expected = chunk.clone();
            expected.sort_unstable();
            prop_assert_eq!(sorted, expected);
        }

        #[test]
        fn prop_prefix_network_matches_scan(
            cond in proptest::collection::vec(any::<bool>(), 0..128),
        ) {
            let upe = Upe::new(128);
            let flags: Vec<u32> = cond.iter().map(|&c| u32::from(c)).collect();
            prop_assert_eq!(
                upe.prefix_sum_network(&cond),
                agnn_algo::scan::inclusive_prefix_sum(&flags)
            );
        }
    }
}

//! The subgraph result cache: delta-driven invalidation and in-flight
//! request coalescing.
//!
//! The cost model prices every request as if its sampled subgraph had to
//! be rebuilt from scratch, yet serving traffic is heavily repetitive:
//! inside one drift bucket a tenant's requests are *identical* — same
//! graph snapshot, same sampling parameters, same batch — so the
//! preprocessing work (and for a warm graph, the whole board visit) can
//! be reused. This module turns that static per-request pricing into an
//! online recompute-vs-reuse decision at the scheduler seam:
//!
//! - **Key.** A cached result is keyed on request identity — `(tenant,
//!   workload drift bucket, deployment seed)`. The simulator runs one
//!   seed per [`ResultCache`], so the cache keys on `(tenant, bucket)`
//!   with one live entry per tenant (a tenant's buckets are monotone;
//!   an older bucket can never be requested again).
//! - **Freshness.** An entry is validated against the *graph it was
//!   sampled from*, not the bucket counter: invalidation is driven by
//!   the graph-delta bytes accumulated since the entry was built.
//!   [`CacheKind::Exact`] demands the identical bucket (zero delta);
//!   [`CacheKind::Delta`] tolerates staleness up to `max_delta_frac` of
//!   the entry's graph size, so slow drift keeps serving from cache
//!   while fast drift (the `migration_drift` shape) blows the budget
//!   immediately and drives the hit rate to zero.
//! - **Full vs partial hits.** A fresh entry is a **full hit** only when
//!   [`crate::pool::BoardPool::resident_boards`] shows the source graph
//!   still warm on some board — the cached subgraph can be returned at
//!   [`CACHE_LOOKUP_SECS`] without occupying a board slot. A fresh entry
//!   whose graph has been evicted everywhere degrades to a **partial
//!   hit**: the request queues and pays its ingest, but skips the fabric
//!   preprocessing pass (and the reconfiguration the pass would force).
//! - **Coalescing (hit-under-miss).** While a tenant's request is in
//!   flight, duplicate arrivals of the same bucket park on the primary
//!   instead of queueing: they complete off the primary's `ServiceDone`
//!   event, the same multi-request event plumbing `MigrationDone` uses.
//!
//! [`CacheKind::Off`] (the default) disables every code path above; an
//! `Off` run replays the pre-cache schedule bit-for-bit — every golden
//! trace digest and CI baseline row is pinned through it.
//!
//! The cache is wired into [`crate::sim`] at three points: admission
//! (full hit / coalesce, before the request ever reaches
//! [`crate::sched::SchedPolicy::admit`]), dispatch (partial-hit
//! classification) and completion (entry fill + waiter drain). Counters
//! surface in [`crate::metrics::TrafficReport::cache`] and per tenant in
//! [`crate::metrics::TenantStats`].

/// Simulated seconds a full cache hit costs end to end: the lookup plus
/// returning the cached subgraph from host memory. Deliberately orders of
/// magnitude below any board visit — a full hit never touches a board.
pub const CACHE_LOOKUP_SECS: f64 = 100e-6;

/// Result-cache policy, gated exactly like
/// [`crate::sched::SchedKind`] / [`crate::pool::MigratePolicy`]:
/// [`CacheKind::Off`] is the default and reproduces the pre-cache
/// schedules bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CacheKind {
    /// No caching: every request recomputes. The golden-digest default.
    #[default]
    Off,
    /// Serve a cached result only for the *identical* drift bucket the
    /// entry was built in — exact workload identity, zero tolerated
    /// graph delta.
    Exact,
    /// Serve a cached result while the graph-delta bytes accumulated
    /// since the entry was built stay within `max_delta_frac` of the
    /// entry's graph size — bounded-staleness reuse across drift
    /// buckets. `0.0` behaves like [`CacheKind::Exact`].
    Delta {
        /// Tolerated accumulated delta, as a fraction of the entry's
        /// source-graph size (e.g. `0.05` = 5 % of the graph may have
        /// changed before the entry is invalidated).
        max_delta_frac: f64,
    },
}

impl CacheKind {
    /// The delta-invalidation preset: entries survive up to 5 % of
    /// accumulated graph change.
    pub fn delta() -> Self {
        CacheKind::Delta {
            max_delta_frac: 0.05,
        }
    }

    /// `true` unless the cache is [`CacheKind::Off`].
    pub fn enabled(&self) -> bool {
        *self != CacheKind::Off
    }

    /// Stable lowercase identifier (CLI flags, report rows).
    pub fn name(&self) -> &'static str {
        match self {
            CacheKind::Off => "off",
            CacheKind::Exact => "exact",
            CacheKind::Delta { .. } => "delta",
        }
    }

    /// The tolerated delta fraction: 0 for [`CacheKind::Exact`] (and
    /// [`CacheKind::Off`], which never serves), the configured budget
    /// for [`CacheKind::Delta`].
    pub fn max_delta_frac(&self) -> f64 {
        match *self {
            CacheKind::Off | CacheKind::Exact => 0.0,
            CacheKind::Delta { max_delta_frac } => max_delta_frac,
        }
    }
}

/// Aggregate cache counters of one run, reported in
/// [`crate::metrics::TrafficReport::cache`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Requests served entirely from cache at admission
    /// ([`CACHE_LOOKUP_SECS`], no board slot).
    pub hits: u64,
    /// Dispatched requests that skipped preprocessing against a fresh
    /// entry whose graph was no longer board-resident.
    pub partial_hits: u64,
    /// Dispatched requests that recomputed in full.
    pub misses: u64,
    /// Entries discarded because their accumulated graph delta outgrew
    /// the freshness budget.
    pub invalidations: u64,
    /// Duplicate in-flight arrivals parked on a primary request and
    /// completed off its `ServiceDone` (hit-under-miss).
    pub coalesced: u64,
    /// Board + inference seconds reuse avoided: full service time for
    /// every full hit and coalesced request, the preprocessing pass for
    /// every partial hit.
    pub recompute_secs_saved: f64,
    /// The largest accumulated-delta fraction any served (full or
    /// partial) hit carried — by construction never above the configured
    /// `max_delta_frac`, which is what the no-stale-serve property test
    /// asserts.
    pub max_served_delta_frac: f64,
}

impl CacheStats {
    /// Cache decisions taken: every request classified at the cache
    /// (full hits, partial hits, misses). Coalesced requests parked on a
    /// primary before reaching a decision and are excluded.
    pub fn lookups(&self) -> u64 {
        self.hits + self.partial_hits + self.misses
    }

    /// `(hits + partial_hits) / lookups`, 0 when the cache saw no
    /// traffic.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.hits + self.partial_hits) as f64 / lookups as f64
        }
    }

    /// Merges per-request counters (aggregation across runs).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.partial_hits += other.partial_hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.coalesced += other.coalesced;
        self.recompute_secs_saved += other.recompute_secs_saved;
        self.max_served_delta_frac = self.max_served_delta_frac.max(other.max_served_delta_frac);
    }
}

/// One cached result: what was computed, from which graph snapshot, and
/// what recomputing it would cost.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Drift bucket the entry was built in ([`CacheKind::Exact`]'s key).
    bucket: u64,
    /// Source-graph size (COO bytes) at build — the denominator of the
    /// delta-fraction freshness check.
    graph_bytes: u64,
    /// The tenant's accumulated delta counter when the subgraph was
    /// sampled (at dispatch of the filling request).
    cum_delta: u64,
    /// The fabric pass a partial hit skips.
    preprocess_secs: f64,
    /// The board + inference seconds a full hit (or coalesced waiter)
    /// avoids.
    service_secs: f64,
}

/// A primary request in flight between admission and `ServiceDone`,
/// identified by its arrival time (arrival streams never repeat a
/// timestamp within a tenant). Duplicate arrivals of the same bucket
/// park in `waiters`.
#[derive(Debug)]
struct Pending {
    arrival_bits: u64,
    bucket: u64,
    waiters: Vec<f64>,
}

/// Per-tenant cache state.
#[derive(Debug, Default)]
struct TenantCache {
    entry: Option<Entry>,
    /// Graph-delta bytes accumulated across every observed bucket
    /// transition since the run started.
    cum_delta: u64,
    /// Last observed `(bucket, coo_bytes)` — the reference point the
    /// next transition's delta is measured against.
    last: Option<(u64, u64)>,
    /// In-flight primaries, oldest first (a bucket change mid-flight can
    /// leave more than one outstanding).
    pending: Vec<Pending>,
}

/// The per-run subgraph result cache (see the [module docs](self) for
/// the lifecycle). All counters live in [`CacheStats`]; the simulator
/// mirrors the per-tenant ones into
/// [`crate::metrics::TenantStats`].
#[derive(Debug)]
pub struct ResultCache {
    kind: CacheKind,
    rows: Vec<TenantCache>,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache for `tenant_count` tenants under `kind`.
    pub fn new(kind: CacheKind, tenant_count: usize) -> Self {
        ResultCache {
            kind,
            rows: (0..tenant_count).map(|_| TenantCache::default()).collect(),
            stats: CacheStats::default(),
        }
    }

    /// `true` unless the policy is [`CacheKind::Off`].
    pub fn enabled(&self) -> bool {
        self.kind.enabled()
    }

    /// The run's aggregate counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Records the tenant's current graph size: a bucket transition
    /// accumulates `|coo_bytes − previous|` into the tenant's delta
    /// counter. Deterministic — the sizes come from the drift model, not
    /// the schedule. Call on every cache touch so the counter tracks the
    /// drift the traffic actually exposes.
    pub fn observe(&mut self, tenant: usize, bucket: u64, coo_bytes: u64) {
        let row = &mut self.rows[tenant];
        match row.last {
            Some((last_bucket, last_bytes)) if last_bucket != bucket => {
                row.cum_delta += coo_bytes.abs_diff(last_bytes);
                row.last = Some((bucket, coo_bytes));
            }
            None => row.last = Some((bucket, coo_bytes)),
            _ => {}
        }
    }

    /// The tenant's accumulated delta counter (snapshotted into the
    /// completion record at dispatch, so the filled entry's freshness is
    /// measured from the graph the subgraph was actually sampled from).
    pub fn cum_delta(&self, tenant: usize) -> u64 {
        self.rows[tenant].cum_delta
    }

    /// The freshness check: `Some(delta_frac)` when the tenant's entry
    /// may still be served at `bucket`, `None` otherwise. A stale entry
    /// is discarded here (counted once as an invalidation).
    fn freshness(&mut self, tenant: usize, bucket: u64) -> Option<f64> {
        let cum_delta = self.rows[tenant].cum_delta;
        let entry = self.rows[tenant].entry.as_ref()?;
        let fresh = match self.kind {
            CacheKind::Off => false,
            CacheKind::Exact => entry.bucket == bucket,
            CacheKind::Delta { .. } => {
                cum_delta - entry.cum_delta
                    <= (self.kind.max_delta_frac() * entry.graph_bytes as f64) as u64
            }
        };
        if fresh {
            let delta = cum_delta - entry.cum_delta;
            Some(delta as f64 / entry.graph_bytes.max(1) as f64)
        } else {
            self.rows[tenant].entry = None;
            self.stats.invalidations += 1;
            None
        }
    }

    /// Admission-time full-hit check: `Some(service_secs_saved)` when a
    /// fresh entry exists **and** the source graph is still resident on
    /// some board, so the request completes at [`CACHE_LOOKUP_SECS`]
    /// without queueing. A fresh-but-evicted entry returns `None` and is
    /// kept for the partial-hit path at dispatch.
    pub fn full_hit(&mut self, tenant: usize, bucket: u64, resident: bool) -> Option<f64> {
        let frac = self.freshness(tenant, bucket)?;
        if !resident {
            return None;
        }
        let saved = self.rows[tenant].entry.as_ref().map(|e| e.service_secs)?;
        self.stats.hits += 1;
        self.stats.recompute_secs_saved += saved;
        self.stats.max_served_delta_frac = self.stats.max_served_delta_frac.max(frac);
        Some(saved)
    }

    /// Parks a duplicate arrival on the oldest in-flight primary of the
    /// same bucket (hit-under-miss). `true` when parked — the request
    /// never queues and completes off the primary's `ServiceDone`.
    pub fn park(&mut self, tenant: usize, bucket: u64, arrival_secs: f64) -> bool {
        let row = &mut self.rows[tenant];
        let Some(primary) = row.pending.iter_mut().find(|p| p.bucket == bucket) else {
            return false;
        };
        primary.waiters.push(arrival_secs);
        self.stats.coalesced += 1;
        true
    }

    /// Registers an admitted request as an in-flight primary — duplicate
    /// arrivals of the same bucket can now [`park`](Self::park) on it
    /// until its completion [`fill`](Self::fill)s the cache. Only
    /// admitted requests register: a dropped arrival must never orphan
    /// waiters.
    pub fn register(&mut self, tenant: usize, bucket: u64, arrival_secs: f64) {
        self.rows[tenant].pending.push(Pending {
            arrival_bits: arrival_secs.to_bits(),
            bucket,
            waiters: Vec::new(),
        });
    }

    /// Dispatch-time classification: `Some(preprocess_secs_saved)` when
    /// a fresh entry lets this board visit skip the fabric pass (a
    /// partial hit), `None` on a full recompute (a miss). Freshness is
    /// re-checked *here*, at serve time — drift while the request was
    /// queued invalidates, so a stale result is never served.
    pub fn serve_partial(&mut self, tenant: usize, bucket: u64) -> Option<f64> {
        match self.freshness(tenant, bucket) {
            Some(frac) => {
                let saved = self.rows[tenant]
                    .entry
                    .as_ref()
                    .map(|e| e.preprocess_secs)?;
                self.stats.partial_hits += 1;
                self.stats.recompute_secs_saved += saved;
                self.stats.max_served_delta_frac = self.stats.max_served_delta_frac.max(frac);
                Some(saved)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Completion-time fill: (re)builds the tenant's entry from the
    /// completed request and drains every waiter parked on it, returning
    /// their arrival times (the simulator completes each at the
    /// primary's `ServiceDone` instant). `cum_delta` is the counter
    /// snapshotted at the filling request's dispatch — the graph its
    /// subgraph was sampled from.
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &mut self,
        tenant: usize,
        bucket: u64,
        graph_bytes: u64,
        cum_delta: u64,
        preprocess_secs: f64,
        service_secs: f64,
        arrival_secs: f64,
    ) -> Vec<f64> {
        let row = &mut self.rows[tenant];
        row.entry = Some(Entry {
            bucket,
            graph_bytes,
            cum_delta,
            preprocess_secs,
            service_secs,
        });
        let arrival_bits = arrival_secs.to_bits();
        let waiters = match row
            .pending
            .iter()
            .position(|p| p.arrival_bits == arrival_bits)
        {
            Some(i) => row.pending.remove(i).waiters,
            None => Vec::new(),
        };
        self.stats.recompute_secs_saved += service_secs * waiters.len() as f64;
        waiters
    }

    /// Cancellation-time drain: removes the in-flight primary registered
    /// at `arrival_secs` — its request expired in queue or was aborted,
    /// so no completion will ever [`fill`](Self::fill) from it — and
    /// returns the arrival times of every waiter parked on it. The
    /// simulator expires those waiters alongside their primary (they
    /// were admitted as coalesced duplicates of a request that died, and
    /// nothing else will complete them). No-op `Vec::new()` when the
    /// primary is unknown.
    pub fn cancel(&mut self, tenant: usize, arrival_secs: f64) -> Vec<f64> {
        let row = &mut self.rows[tenant];
        let arrival_bits = arrival_secs.to_bits();
        match row
            .pending
            .iter()
            .position(|p| p.arrival_bits == arrival_bits)
        {
            Some(i) => row.pending.remove(i).waiters,
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_disabled() {
        assert_eq!(CacheKind::default(), CacheKind::Off);
        assert!(!CacheKind::Off.enabled());
        assert!(CacheKind::Exact.enabled());
        assert!(CacheKind::delta().enabled());
        assert_eq!(CacheKind::Off.name(), "off");
        assert_eq!(CacheKind::Exact.name(), "exact");
        assert_eq!(CacheKind::delta().name(), "delta");
        assert_eq!(CacheKind::Exact.max_delta_frac(), 0.0);
        assert_eq!(CacheKind::delta().max_delta_frac(), 0.05);
        assert!(!ResultCache::new(CacheKind::Off, 1).enabled());
    }

    #[test]
    fn exact_entries_serve_their_bucket_and_die_on_the_next() {
        let mut cache = ResultCache::new(CacheKind::Exact, 1);
        cache.observe(0, 7, 1_000);
        assert!(cache.full_hit(0, 7, true).is_none(), "nothing cached yet");
        cache.fill(0, 7, 1_000, 0, 2.0, 5.0, 0.5);
        assert_eq!(cache.full_hit(0, 7, true), Some(5.0), "same bucket hits");
        assert_eq!(
            cache.full_hit(0, 7, false),
            None,
            "evicted graph degrades the hit"
        );
        assert_eq!(cache.serve_partial(0, 7), Some(2.0), "…to a partial");
        cache.observe(0, 8, 1_100);
        assert!(cache.full_hit(0, 8, true).is_none(), "bucket moved: stale");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.partial_hits, 1);
        assert_eq!(stats.invalidations, 1);
        assert!((stats.recompute_secs_saved - 7.0).abs() < 1e-12);
    }

    #[test]
    fn delta_budget_tolerates_slow_drift_and_kills_fast_drift() {
        let mut cache = ResultCache::new(
            CacheKind::Delta {
                max_delta_frac: 0.10,
            },
            1,
        );
        cache.observe(0, 0, 10_000);
        cache.fill(0, 0, 10_000, 0, 2.0, 5.0, 0.5);
        // 5 % drift: inside the 10 % budget, still served across buckets.
        cache.observe(0, 1, 10_500);
        assert_eq!(cache.full_hit(0, 1, true), Some(5.0));
        let frac = cache.stats().max_served_delta_frac;
        assert!((frac - 0.05).abs() < 1e-12, "served at 5 % delta: {frac}");
        // Another 10 %: the accumulated 15 % blows the budget.
        cache.observe(0, 2, 11_500);
        assert!(cache.full_hit(0, 2, true).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.serve_partial(0, 2).is_none(), "stays dead once gone");
        assert_eq!(cache.stats().misses, 1);
        assert!(
            cache.stats().max_served_delta_frac <= 0.10,
            "no served hit ever exceeded the budget"
        );
    }

    #[test]
    fn coalescing_parks_on_the_primary_and_drains_at_fill() {
        let mut cache = ResultCache::new(CacheKind::Exact, 2);
        assert!(
            !cache.park(0, 3, 1.0),
            "no in-flight primary: nothing to park on"
        );
        cache.register(0, 3, 0.5);
        assert!(cache.park(0, 3, 1.0));
        assert!(cache.park(0, 3, 1.5));
        assert!(!cache.park(0, 4, 2.0), "a different bucket never coalesces");
        assert!(!cache.park(1, 3, 2.0), "tenants never share primaries");
        assert_eq!(cache.stats().coalesced, 2);
        let waiters = cache.fill(0, 3, 1_000, 0, 2.0, 5.0, 0.5);
        assert_eq!(waiters, vec![1.0, 1.5]);
        assert!((cache.stats().recompute_secs_saved - 10.0).abs() < 1e-12);
        assert!(
            cache.fill(0, 3, 1_000, 0, 2.0, 5.0, 0.5).is_empty(),
            "a drained primary is gone"
        );
    }

    #[test]
    fn cancel_drains_the_primary_and_its_waiters() {
        let mut cache = ResultCache::new(CacheKind::Exact, 1);
        cache.register(0, 3, 0.5);
        assert!(cache.park(0, 3, 1.0));
        assert!(cache.park(0, 3, 1.5));
        assert_eq!(cache.cancel(0, 0.5), vec![1.0, 1.5]);
        assert!(
            !cache.park(0, 3, 2.0),
            "a cancelled primary no longer coalesces"
        );
        assert!(
            cache.fill(0, 3, 1_000, 0, 2.0, 5.0, 0.5).is_empty(),
            "a cancelled primary cannot be drained again"
        );
        assert!(cache.cancel(0, 9.0).is_empty(), "unknown primary: no-op");
    }

    #[test]
    fn observe_accumulates_transition_deltas() {
        let mut cache = ResultCache::new(CacheKind::delta(), 1);
        cache.observe(0, 0, 1_000);
        cache.observe(0, 0, 1_000); // same bucket: no delta
        assert_eq!(cache.cum_delta(0), 0);
        cache.observe(0, 1, 1_300);
        cache.observe(0, 3, 1_200); // shrink still counts as change
        assert_eq!(cache.cum_delta(0), 400);
    }

    #[test]
    fn stats_accumulate_and_rate_is_guarded() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let mut total = CacheStats::default();
        total.accumulate(&CacheStats {
            hits: 3,
            partial_hits: 1,
            misses: 4,
            coalesced: 2,
            recompute_secs_saved: 1.5,
            max_served_delta_frac: 0.02,
            ..CacheStats::default()
        });
        total.accumulate(&CacheStats {
            hits: 1,
            max_served_delta_frac: 0.01,
            ..CacheStats::default()
        });
        assert_eq!(total.lookups(), 9);
        assert!((total.hit_rate() - 5.0 / 9.0).abs() < 1e-12);
        assert_eq!(total.max_served_delta_frac, 0.02);
    }
}

//! Batched per-tenant arrival generation.
//!
//! Arrival streams are **schedule-independent**: tenant `i`'s stream is
//! `t₀ = next_after(0, rngᵢ)`, `tₖ₊₁ = next_after(tₖ, rngᵢ)` with
//! `rngᵢ` derived only from the deployment seed
//! ([`TenantSpec::arrival_rng`]) — nothing the scheduler or the boards
//! do can perturb it. That independence is what lets this source
//! pre-generate arrivals in batches: the inner event loop consumes a
//! buffered `f64` instead of running the Lewis–Shedler thinning loop
//! (and its RNG draws) inline, and the generated sequence is
//! *identical* to the on-demand one — the golden digests do not move.

use rand::rngs::StdRng;

use crate::engine::Component;
use crate::tenant::{ArrivalProcess, TenantSpec};

/// Arrivals pre-generated per refill. Large enough to amortize the
/// refill call, small enough that a drained queue never sits on much
/// speculative work.
const BATCH: usize = 64;

/// One tenant's buffered arrival stream.
#[derive(Debug)]
struct Stream {
    arrival: ArrivalProcess,
    rng: StdRng,
    /// The next `BATCH` arrival times, consumed front to back.
    buffer: Vec<f64>,
    cursor: usize,
    /// Last generated arrival time — the chain point for the next refill.
    last: f64,
}

impl Stream {
    fn refill(&mut self) {
        self.buffer.clear();
        self.cursor = 0;
        for _ in 0..BATCH {
            self.last = self.arrival.next_after(self.last, &mut self.rng);
            self.buffer.push(self.last);
        }
    }

    #[inline]
    fn peek(&self) -> f64 {
        self.buffer[self.cursor]
    }

    #[inline]
    fn next(&mut self) -> f64 {
        let at = self.buffer[self.cursor];
        self.cursor += 1;
        if self.cursor == self.buffer.len() {
            self.refill();
        }
        at
    }
}

/// The pool of per-tenant arrival streams backing a simulation run —
/// the [`Component`] generating the load every other component reacts
/// to.
#[derive(Debug)]
pub struct ArrivalSource {
    streams: Vec<Stream>,
    /// Simulated time of the last [`tick`](Component::tick) (observability
    /// only — generation is driven by [`next`](ArrivalSource::next)).
    now: f64,
}

impl ArrivalSource {
    /// Builds one buffered stream per tenant from the deployment seed,
    /// pre-generating each tenant's first batch.
    pub fn new(tenants: &[TenantSpec], seed: u64) -> Self {
        let streams = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut s = Stream {
                    arrival: t.arrival,
                    rng: t.arrival_rng(seed, i),
                    buffer: Vec::with_capacity(BATCH),
                    cursor: 0,
                    last: 0.0,
                };
                s.refill();
                s
            })
            .collect();
        ArrivalSource { streams, now: 0.0 }
    }

    /// Consumes and returns `tenant`'s next arrival time. Infinite
    /// stream — the caller (the event loop's offered-load counter)
    /// decides when to stop consuming.
    #[inline]
    pub fn next(&mut self, tenant: usize) -> f64 {
        self.streams[tenant].next()
    }

    /// `tenant`'s next arrival time without consuming it.
    pub fn peek(&self, tenant: usize) -> f64 {
        self.streams[tenant].peek()
    }
}

impl Component for ArrivalSource {
    /// The earliest pending arrival across every tenant.
    fn next_tick(&self) -> Option<f64> {
        self.streams
            .iter()
            .map(Stream::peek)
            .min_by(|a, b| a.total_cmp(b))
    }

    fn tick(&mut self, now: f64) {
        debug_assert!(now >= self.now, "time runs forward");
        self.now = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::datasets::Dataset;

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("a", Dataset::Movie, 3.0),
            TenantSpec::new("b", Dataset::Arxiv, 1.0),
        ]
    }

    /// The digest-preserving property: batching changes *when* arrival
    /// times are generated, never *which* — the buffered stream equals
    /// the on-demand chain draw for draw.
    #[test]
    fn batched_stream_equals_on_demand_generation() {
        let ts = tenants();
        let mut src = ArrivalSource::new(&ts, 42);
        for (i, t) in ts.iter().enumerate() {
            let mut rng = t.arrival_rng(42, i);
            let mut at = 0.0;
            for k in 0..(BATCH * 3 + 7) {
                at = t.arrival.next_after(at, &mut rng);
                let got = src.next(i);
                assert_eq!(got.to_bits(), at.to_bits(), "tenant {i} draw {k}");
            }
        }
    }

    #[test]
    fn peek_does_not_consume_and_next_tick_is_the_min() {
        let ts = tenants();
        let mut src = ArrivalSource::new(&ts, 7);
        let (a, b) = (src.peek(0), src.peek(1));
        assert_eq!(src.next_tick(), Some(a.min(b)));
        assert_eq!(src.peek(0).to_bits(), a.to_bits(), "peek is idempotent");
        assert_eq!(src.next(0).to_bits(), a.to_bits());
        assert!(src.peek(0) > a, "arrivals strictly increase");
        src.tick(a);
    }
}

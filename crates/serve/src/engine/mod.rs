//! The simulation engine: the event queue, the slab arena and the
//! component model the event loop drives.
//!
//! `sim.rs` owns the *semantics* of a serving simulation — what an
//! arrival, an ingest or a migration means. This module owns the
//! *mechanics* that make replaying millions of them cheap:
//!
//! - [`queue::EventQueue`] — a calendar-queue priority queue replacing
//!   the original `BinaryHeap`, popping events in exact global
//!   `(time, push-order)` order (the same-timestamp contract every
//!   golden trace digest depends on) with amortized `O(1)` bucket
//!   operations instead of `O(log n)` sifts.
//! - [`slab::Slab`] — a `u32`-handle arena for in-flight request state,
//!   so queue nodes carry 4-byte handles instead of ~120-byte payloads
//!   and the steady-state loop recycles slots instead of allocating.
//! - [`arrivals::ArrivalSource`] — per-tenant batched arrival
//!   generation; the inner loop consumes a buffered `f64` instead of
//!   running the thinning sampler inline.
//!
//! # The component model
//!
//! Everything the simulator advances — boards (DMA engine, fabric,
//! ICAP), and the arrival processes feeding them — shares one surface:
//!
//! - [`Component::next_tick`] — the next simulated time the component
//!   will act on its own (a busy horizon expiring, the next buffered
//!   arrival), or `None` when it is idle;
//! - [`Component::tick`] — observe the event loop's clock reaching a
//!   new time.
//!
//! The simulator is **analytic**: a stage's duration is priced in
//! closed form when it starts, so components do not step cycle by cycle
//! — they schedule their completion into the [`queue::EventQueue`] and
//! `next_tick` exposes that horizon uniformly (the discrete-event half
//! of a discrete-event/cycle-box split; a future cycle-accurate
//! component would implement the same trait and be driven between
//! events). The event loop in `sim.rs` stays a thin driver: pop the
//! next event, apply its semantics to the components, push the events
//! they schedule. See `docs/ARCHITECTURE.md` for the full narrative.

pub mod arrivals;
pub mod queue;
pub mod slab;

pub use arrivals::ArrivalSource;
pub use queue::EventQueue;
pub use slab::{Handle, Slab};

/// The uniform surface of everything the event loop advances (boards,
/// DMA engines, ICAP, arrival processes) — see the [module docs](self).
pub trait Component {
    /// The next simulated time this component acts on its own, or
    /// `None` when it is idle (nothing scheduled, nothing buffered).
    fn next_tick(&self) -> Option<f64>;

    /// Observes the simulation clock reaching `now`. Analytic components
    /// need no work here beyond bookkeeping — their state changes are
    /// the events they scheduled.
    fn tick(&mut self, now: f64);
}

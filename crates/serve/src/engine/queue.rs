//! The calendar-queue event queue.
//!
//! The simulator's original event core was a `BinaryHeap<Event>` with a
//! reversed `Ord`: pop the earliest `(time, seq)` pair, where `seq` is a
//! monotone counter assigned at push so same-timestamp events replay in
//! push order and every trace digest is bit-stable. That contract is the
//! load-bearing one — this queue keeps it exactly (proptested below
//! against the reference heap) while replacing the heap's `O(log n)`
//! sift-up/sift-down per event with amortized `O(1)` bucket operations.
//!
//! # Design
//!
//! A classic calendar queue (Brown 1988) specialised for a simulator
//! whose pushes never precede the event currently being processed:
//!
//! - Simulated time is divided into fixed-width slots of `width`
//!   seconds; slot index `abs = floor(time / width)` (a `u64`).
//! - `NUM_BUCKETS` = 256 physical buckets hold the **current year** of
//!   the calendar — the window `[cursor, cursor + 256)` of absolute
//!   slots, mapped by `abs & 255`. A 4×`u64` occupancy bitmap finds the
//!   next non-empty bucket with a couple of `trailing_zeros`.
//! - Events beyond the window land in an unsorted **overflow** rung.
//!   Whenever the cursor advances, overflow events whose slot entered
//!   the window are flushed into their buckets; when the whole window
//!   drains, the cursor jumps straight to the earliest overflow slot.
//! - A bucket is sorted **lazily**, only when the cursor reaches it
//!   (descending `(time, seq)`, so popping is a `Vec::pop` from the
//!   tail). Events pushed into the already-sorted cursor bucket are
//!   placed by binary search, preserving the sorted order.
//!
//! # Ordering invariants (why pop order is exact)
//!
//! 1. Every bucketed event's slot lies in `[cursor, cursor + 256)`, and
//!    all events sharing a physical bucket share one absolute slot — so
//!    sorting a bucket by `(time, seq)` totally orders it, and bucket
//!    order equals time order across buckets.
//! 2. The overflow rung always holds slots `>= cursor + 256` (flushed on
//!    every cursor change), so the bitmap scan never skips an earlier
//!    overflow event.
//! 3. An event pushed at or after the current pop time with a slot the
//!    cursor already passed (possible only through float truncation at a
//!    slot boundary) is clamped **into** the cursor bucket with its true
//!    timestamp — position 1's sort still orders it exactly.
//!
//! The same-timestamp contract — equal `time`, lower `seq` pops first —
//! is pinned by `tests::same_timestamp_events_pop_in_push_order` and
//! the reference-heap proptest.

/// Number of physical buckets (one "year" of the calendar). A power of
/// two so the slot-to-bucket map is a mask.
const NUM_BUCKETS: usize = 256;
const BUCKET_MASK: u64 = (NUM_BUCKETS - 1) as u64;
/// Occupancy-bitmap words (`NUM_BUCKETS / 64`).
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// Default bucket width in simulated seconds. The serving scenarios run
/// tens to hundreds of events per simulated second, so 1/16 s keeps
/// buckets a handful of events deep; [`EventQueue::with_width`] tunes it
/// when the caller knows the event rate.
pub const DEFAULT_WIDTH_SECS: f64 = 1.0 / 16.0;

/// One scheduled event: a timestamp, the push-order tie-breaker, and the
/// caller's payload.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    time: f64,
    seq: u64,
    kind: K,
}

/// A calendar-queue priority queue popping events in exact global
/// `(time, seq)` order, where `seq` is assigned monotonically at
/// [`push`](EventQueue::push) — the drop-in replacement for the
/// simulator's former `BinaryHeap` core (see the [module docs](self)).
#[derive(Debug)]
pub struct EventQueue<K> {
    /// The current calendar year: bucket `i` holds the unique in-window
    /// slot `abs` with `abs & 255 == i`.
    buckets: Vec<Vec<Entry<K>>>,
    /// One bit per non-empty bucket.
    occupied: [u64; OCC_WORDS],
    /// Events in slots at or beyond `cursor + NUM_BUCKETS`, unsorted.
    overflow: Vec<Entry<K>>,
    /// Smallest slot present in `overflow` (meaningless when empty).
    overflow_min_slot: u64,
    /// Absolute slot the queue is currently draining.
    cursor: u64,
    /// Whether the cursor bucket has been sorted (descending
    /// `(time, seq)`) since the cursor arrived at it.
    cursor_sorted: bool,
    /// Slot width in simulated seconds.
    width: f64,
    /// Next sequence number (total pushes so far).
    seq: u64,
    /// Events currently queued.
    len: usize,
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> EventQueue<K> {
    /// An empty queue with the [default bucket width](DEFAULT_WIDTH_SECS).
    pub fn new() -> Self {
        Self::with_width(DEFAULT_WIDTH_SECS)
    }

    /// An empty queue with `width`-second buckets. Correct for any
    /// positive finite width — width only moves the constant factor
    /// (too coarse: long sorted buckets; too fine: long bitmap walks).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    pub fn with_width(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bucket width must be positive and finite"
        );
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; OCC_WORDS],
            overflow: Vec::new(),
            overflow_min_slot: 0,
            cursor: 0,
            cursor_sorted: false,
            width,
            seq: 0,
            len: 0,
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Schedules `kind` at `time`, assigning the next sequence number —
    /// among equal timestamps, earlier pushes pop earlier.
    ///
    /// `time` must be finite and non-negative (simulated seconds).
    pub fn push(&mut self, time: f64, kind: K) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, kind };
        let slot = self.slot_of(time);
        if self.len == 0 {
            // Empty queue: re-anchor the calendar at the push.
            debug_assert!(self.overflow.is_empty());
            self.cursor = slot;
            self.cursor_sorted = false;
        }
        // Invariant 3: a slot the cursor passed (float truncation at a
        // boundary) clamps into the cursor bucket; the true timestamp
        // still sorts it exactly.
        let slot = slot.max(self.cursor);
        if slot >= self.cursor + NUM_BUCKETS as u64 {
            if self.overflow.is_empty() || slot < self.overflow_min_slot {
                self.overflow_min_slot = slot;
            }
            self.overflow.push(entry);
        } else {
            let idx = (slot & BUCKET_MASK) as usize;
            let bucket = &mut self.buckets[idx];
            if bucket.is_empty() {
                self.occupied[idx >> 6] |= 1u64 << (idx & 63);
            }
            if slot == self.cursor && self.cursor_sorted {
                // Keep the drained-from bucket sorted: descending
                // (time, seq), and this entry holds the largest seq, so
                // it belongs *before* equal-time entries (pops after
                // them — push order preserved).
                let at = bucket.partition_point(|e| {
                    e.time
                        .total_cmp(&entry.time)
                        .then(e.seq.cmp(&entry.seq))
                        .is_gt()
                });
                bucket.insert(at, entry);
            } else {
                bucket.push(entry);
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event as `(time, kind)` — exact
    /// global `(time, seq)` order, ties in push order.
    pub fn pop(&mut self) -> Option<(f64, K)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cursor & BUCKET_MASK) as usize;
            if !self.buckets[idx].is_empty() {
                break;
            }
            self.advance_cursor(idx);
        }
        let idx = (self.cursor & BUCKET_MASK) as usize;
        let bucket = &mut self.buckets[idx];
        if !self.cursor_sorted {
            bucket.sort_unstable_by(|a, b| b.time.total_cmp(&a.time).then(b.seq.cmp(&a.seq)));
            self.cursor_sorted = true;
        }
        let entry = bucket.pop().expect("cursor bucket is non-empty");
        if bucket.is_empty() {
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.len -= 1;
        Some((entry.time, entry.kind))
    }

    /// Moves the cursor to the next non-empty slot: the nearest occupied
    /// bucket in window order, else the earliest overflow slot. Flushes
    /// newly in-window overflow events on every move (invariant 2).
    /// Only called while events remain somewhere.
    fn advance_cursor(&mut self, from_idx: usize) {
        match self.next_occupied(from_idx) {
            Some(idx) => {
                let delta = (idx as u64).wrapping_sub(from_idx as u64) & BUCKET_MASK;
                // `from_idx`'s bit is clear (its bucket just drained), so
                // delta == 0 means a full wrap of 256 slots.
                let delta = if delta == 0 {
                    NUM_BUCKETS as u64
                } else {
                    delta
                };
                self.cursor += delta;
            }
            None => {
                debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing queued");
                self.cursor = self.overflow_min_slot;
            }
        }
        self.cursor_sorted = false;
        self.flush_overflow();
    }

    /// First occupied bucket index at or after `from` in circular window
    /// order, or `None` when every bucket is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let word = from >> 6;
        let bit = from & 63;
        let masked = self.occupied[word] & (!0u64 << bit);
        if masked != 0 {
            return Some((word << 6) + masked.trailing_zeros() as usize);
        }
        for offset in 1..=OCC_WORDS {
            let w = (word + offset) % OCC_WORDS;
            let bits = if w == word {
                self.occupied[w] & !(!0u64 << bit)
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Drops overflow events whose slot entered the window into their
    /// buckets, maintaining invariant 2 (`overflow ⊆ [cursor + 256, ∞)`).
    fn flush_overflow(&mut self) {
        if self.overflow.is_empty() || self.overflow_min_slot >= self.cursor + NUM_BUCKETS as u64 {
            return;
        }
        let mut min_slot = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let slot = self.slot_of(self.overflow[i].time).max(self.cursor);
            if slot < self.cursor + NUM_BUCKETS as u64 {
                // swap-extract keeps the pass O(overflow); bucket order
                // does not matter, the lazy sort restores (time, seq).
                // The swapped-in tail element lands at `i` — re-examine.
                let entry = self.overflow.swap_remove(i);
                let idx = (slot & BUCKET_MASK) as usize;
                if self.buckets[idx].is_empty() {
                    self.occupied[idx >> 6] |= 1u64 << (idx & 63);
                }
                self.buckets[idx].push(entry);
            } else {
                min_slot = min_slot.min(slot);
                i += 1;
            }
        }
        self.overflow_min_slot = min_slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// The simulator's former event core, kept as the ordering oracle: a
    /// max-`BinaryHeap` whose reversed `Ord` pops the earliest
    /// `(time, seq)` pair — `seq` assigned monotonically at push.
    struct ReferenceHeap<K> {
        heap: BinaryHeap<RefEntry<K>>,
        seq: u64,
    }

    struct RefEntry<K> {
        time: f64,
        seq: u64,
        kind: K,
    }

    impl<K> PartialEq for RefEntry<K> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl<K> Eq for RefEntry<K> {}
    impl<K> PartialOrd for RefEntry<K> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K> Ord for RefEntry<K> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .total_cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl<K> ReferenceHeap<K> {
        fn new() -> Self {
            ReferenceHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, time: f64, kind: K) {
            self.heap.push(RefEntry {
                time,
                seq: self.seq,
                kind,
            });
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(f64, K)> {
            self.heap.pop().map(|e| (e.time, e.kind))
        }
    }

    /// One simulated-push step: the next event lands `delta` seconds
    /// after the current pop time (0 = a same-timestamp tie).
    fn drive<F: FnMut(usize) -> f64>(n: usize, width: f64, pops_per_push: f64, mut delta: F) {
        let mut q = EventQueue::with_width(width);
        let mut r = ReferenceHeap::new();
        let mut now = 0.0f64;
        let mut rng = StdRng::seed_from_u64(7);
        let mut popped = 0usize;
        for i in 0..n {
            let t = now + delta(i);
            q.push(t, i);
            r.push(t, i);
            if rng.gen::<f64>() < pops_per_push {
                let got = q.pop();
                let want = r.pop();
                assert_eq!(
                    got.map(|(t, k)| (t.to_bits(), k)),
                    want.map(|(t, k)| (t.to_bits(), k)),
                    "pop #{popped} diverged"
                );
                if let Some((t, _)) = want {
                    now = now.max(t);
                }
                popped += 1;
            }
        }
        loop {
            let got = q.pop();
            let want = r.pop();
            assert_eq!(
                got.map(|(t, k)| (t.to_bits(), k)),
                want.map(|(t, k)| (t.to_bits(), k)),
                "drain pop #{popped} diverged"
            );
            popped += 1;
            match want {
                Some((t, _)) => now = now.max(t),
                None => break,
            }
        }
        assert!(q.is_empty());
    }

    /// The satellite regression test: a seeded 100k-event stream (bursty
    /// ties, Poisson-ish gaps, occasional far-future jumps into the
    /// overflow rung) drains in exactly the reference heap's order.
    #[test]
    fn drains_a_seeded_100k_stream_in_reference_heap_order() {
        let mut rng = StdRng::seed_from_u64(0xCA1E_04A8);
        drive(100_000, DEFAULT_WIDTH_SECS, 0.9, move |_| {
            match rng.gen_range(0..10u32) {
                0..=2 => 0.0,                         // same-timestamp tie
                3..=8 => rng.gen::<f64>() * 0.5,      // in-window gap
                _ => 20.0 + rng.gen::<f64>() * 100.0, // overflow rung
            }
        });
    }

    #[test]
    fn same_timestamp_events_pop_in_push_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "a");
        q.push(1.0, "b");
        q.push(0.5, "early");
        q.push(1.0, "c");
        assert_eq!(q.pop(), Some((0.5, "early")));
        // Pushing a tie *while draining* the sorted cursor bucket must
        // still land in push order.
        q.push(1.0, "d");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((1.0, "b")));
        assert_eq!(q.pop(), Some((1.0, "c")));
        assert_eq!(q.pop(), Some((1.0, "d")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_re_anchors_after_a_long_idle_gap() {
        let mut q = EventQueue::new();
        q.push(0.0, 0);
        assert_eq!(q.pop(), Some((0.0, 0)));
        // A push years past the drained window must not walk the bitmap.
        q.push(1.0e7, 1);
        q.push(1.0e7 + 0.001, 2);
        assert_eq!(q.pop(), Some((1.0e7, 1)));
        assert_eq!(q.pop(), Some((1.0e7 + 0.001, 2)));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::<u32>::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(i as f64 * 3.0, i); // spans many windows
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop();
        }
        assert_eq!(q.len(), 60);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_is_rejected() {
        EventQueue::<u32>::with_width(0.0);
    }

    proptest! {
        /// The tentpole's ordering pin: on random event streams — heavy
        /// same-timestamp ties, slot-boundary times, far-future overflow
        /// pushes, extreme widths — the calendar queue pops bit-for-bit
        /// the reference heap's `(time, seq)` order.
        #[test]
        fn matches_reference_heap_on_random_streams(
            seed in proptest::any::<u64>(),
            width_pick in 0usize..4,
            pops_permille in 100usize..1500,
            n in 1usize..400,
        ) {
            let width = [1e-4, 1.0 / 16.0, 1.0, 64.0][width_pick];
            let pops_per_push = pops_permille as f64 / 1000.0;
            let mut rng = StdRng::seed_from_u64(seed);
            drive(n, width, pops_per_push, move |_| {
                match rng.gen_range(0..12u32) {
                    0..=3 => 0.0,                            // tie
                    4 => width * rng.gen_range(1..5u32) as f64, // exact slot boundary
                    5..=9 => rng.gen::<f64>() * width * 8.0, // near window
                    10 => rng.gen::<f64>() * width * 1_000.0, // deep overflow
                    _ => rng.gen::<f64>() * 1e-9,            // sub-slot jitter
                }
            });
        }
    }
}

//! A slab arena with `u32` handles — the allocation-free home for
//! in-flight request state.
//!
//! The hot event loop used to carry ~120-byte pipeline payloads and
//! ~100-byte completion payloads *inside* queue nodes, copying them at
//! every push, pop and staging transition. The slab moves each payload
//! to a stable slot the moment it is created and threads a 4-byte
//! [`Handle`] through the queues instead; slots are recycled through an
//! intrusive free list, so after warm-up the steady state performs no
//! heap allocation at all (see `docs/ARCHITECTURE.md`, "the slab/handle
//! lifecycle").

/// Index of a live slab slot. Plain data — copying a handle does not
/// copy the payload, and the slab does not check stale handles beyond
/// the occupied/vacant state (this is an engine-internal arena, not a
/// generational map).
pub type Handle = u32;

#[derive(Debug)]
enum Slot<T> {
    /// A live payload.
    Occupied(T),
    /// A recycled slot; `next` chains the free list (`u32::MAX` ends it).
    Vacant { next: u32 },
}

/// End-of-free-list sentinel.
const NIL: u32 = u32::MAX;

/// A `Vec`-backed arena: `O(1)` insert/remove, stable [`Handle`]s,
/// recycled slots, no per-item allocation.
#[derive(Debug, Default)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty slab with room for `capacity` payloads before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Live payloads currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no payload is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its handle — a recycled slot when one
    /// is free, a fresh one otherwise.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at a live slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab outgrew u32 handles");
            self.slots.push(Slot::Occupied(value));
            idx
        }
    }

    /// Removes and returns the payload at `handle`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `handle` does not name a live payload.
    pub fn remove(&mut self, handle: Handle) -> T {
        let slot = std::mem::replace(
            &mut self.slots[handle as usize],
            Slot::Vacant {
                next: self.free_head,
            },
        );
        match slot {
            Slot::Occupied(value) => {
                self.free_head = handle;
                self.len -= 1;
                value
            }
            Slot::Vacant { .. } => panic!("slab handle {handle} is vacant"),
        }
    }

    /// The payload at `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` does not name a live payload.
    pub fn get(&self, handle: Handle) -> &T {
        match &self.slots[handle as usize] {
            Slot::Occupied(value) => value,
            Slot::Vacant { .. } => panic!("slab handle {handle} is vacant"),
        }
    }

    /// The payload at `handle`, or `None` when the slot is vacant or the
    /// handle was never issued. Deferred events that may outlive their
    /// payload (the simulator's tag-guarded deadline aborts) use this
    /// instead of [`get`](Self::get): slots recycle, so by the time such
    /// an event pops its handle may be dead or name a different payload.
    pub fn try_get(&self, handle: Handle) -> Option<&T> {
        match self.slots.get(handle as usize) {
            Some(Slot::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the payload at `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` does not name a live payload.
    pub fn get_mut(&mut self, handle: Handle) -> &mut T {
        match &mut self.slots[handle as usize] {
            Slot::Occupied(value) => value,
            Slot::Vacant { .. } => panic!("slab handle {handle} is vacant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get(a), "a");
        *slab.get_mut(b) = "B";
        assert_eq!(slab.remove(b), "B");
        assert_eq!(slab.remove(a), "a");
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo_without_growth() {
        let mut slab = Slab::with_capacity(4);
        let handles: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        assert_eq!(handles, vec![0, 1, 2, 3]);
        slab.remove(1);
        slab.remove(3);
        // LIFO recycling: the most recently freed slot is reused first.
        assert_eq!(slab.insert(30), 3);
        assert_eq!(slab.insert(10), 1);
        // Slab is full again; the next insert grows.
        assert_eq!(slab.insert(40), 4);
        assert_eq!(slab.len(), 5);
    }

    #[test]
    fn try_get_tolerates_dead_and_unissued_handles() {
        let mut slab = Slab::new();
        let h = slab.insert(7);
        assert_eq!(slab.try_get(h), Some(&7));
        assert_eq!(slab.try_get(99), None, "never issued");
        slab.remove(h);
        assert_eq!(slab.try_get(h), None, "recycled slot");
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn stale_handle_panics() {
        let mut slab = Slab::new();
        let h = slab.insert(1);
        slab.remove(h);
        slab.get(h);
    }
}

//! Discrete-event, multi-tenant traffic scheduling for the AutoGNN runtime.
//!
//! The paper's runtime ([`agnn_core::runtime::AutoGnn`]) serves one request
//! at a time; a production deployment sees sustained, mixed, time-varying
//! load from many applications sharing one accelerator. This crate closes
//! that gap with a fully simulated serving layer:
//!
//! - [`tenant`] — tenants bind a Table II dataset, sampling parameters and
//!   a GNN spec to a seeded arrival process (homogeneous Poisson or a
//!   diurnal sinusoid via Lewis–Shedler thinning), with optional
//!   Table II-rate workload drift;
//! - [`pool`] — a [`pool::BoardPool`] of N simulated accelerators, each a
//!   forked [`agnn_core::runtime::AutoGnn`] with its own bitstream state,
//!   reconfiguration clock, capacity-bounded resident-graph memory (LRU
//!   eviction at the §V-B DRAM budget) and **two in-flight slots** — the
//!   PCIe DMA engine and the reconfigurable fabric — fed by the shared
//!   admission queue through a pluggable [`pool::PlacementPolicy`]
//!   (`TenantAffine`, `LeastLoaded`, `BitstreamAffine`). A
//!   [`pool::MigratePolicy`] additionally lets graphs move **between**
//!   boards over the PCIe switch
//!   ([`agnn_hw::shell::PcieSwitchModel`]): DRAM-evicted tenants
//!   rehydrate from a peer still holding their graph instead of
//!   re-crossing the host link, and hot tenants split onto idle boards
//!   once their affine board's queue outgrows a threshold;
//! - [`sched`] — the pluggable admission/dispatch scheduler: a
//!   [`sched::SchedPolicy`] trait owning enqueue/drop/pick and
//!   reconfiguration-gating decisions, with [`sched::Fifo`] (the bounded
//!   arrival-order queue, bit-for-bit the pre-refactor schedules — every
//!   golden digest holds), [`sched::WeightedFair`] (deficit round robin
//!   over per-tenant queues with [`tenant::TenantSpec::weight`] shares
//!   and per-tenant quotas, so one bursty aggressor can no longer starve
//!   the other tenants) and [`sched::SloAware`] (a per-tenant latency
//!   EWMA gates bitstream reconfiguration on predicted p99 vs the
//!   tenant's SLO budget — stalls nobody's tail needs stop being paid);
//! - [`engine`] — the simulation mechanics: a calendar-queue
//!   [`engine::EventQueue`] (O(1) push/pop at serving densities,
//!   bit-for-bit the binary-heap `(time, push-order)` contract it
//!   replaced), a [`engine::Slab`] arena holding in-flight request state
//!   behind 4-byte handles, batched pre-generated arrival streams
//!   ([`engine::ArrivalSource`]) and the [`engine::Component`]
//!   `next_tick`/`tick` clock abstraction — see `docs/ARCHITECTURE.md`;
//! - [`sim`] — the discrete-event scheduler itself, with drop
//!   accounting and pluggable [`sim::DispatchPolicy`] — strict FIFO
//!   versus a *reconfig-aware* policy that serves same-bitstream requests
//!   together to amortize `ReconfigEvent` stalls (§V-B's cost-model
//!   decision, lifted from one request to a traffic stream). With
//!   [`sim::ServeConfig::overlap`] the request lifecycle is
//!   **pipelined**: a board ingests the next request's graph delta
//!   (double-buffered, [`agnn_hw::shell::DELTA_BUFFERS`]) and streams
//!   finished subgraphs out while its fabric preprocesses — upload time
//!   leaves the dispatch critical path. Requests can carry **deadlines**
//!   ([`tenant::TenantSpec::deadline_secs`],
//!   [`sim::ServeConfig::default_deadline_secs`]): dead requests expire
//!   at the queue scan, a dispatched-but-not-started stage aborts and
//!   releases its board slot, and [`sim::HedgeKind::Latency`] re-offers
//!   a stalled queue-front request to a second board and cancels the
//!   loser — all assembled through the validating
//!   [`sim::ServeConfig::builder`];
//! - [`cache`] — the subgraph result cache: entries keyed on request
//!   identity `(tenant, drift bucket, seed)`, invalidated by accumulated
//!   graph-delta bytes ([`cache::CacheKind::Delta`]) and degraded to
//!   partial hits when the source graph is no longer board-resident;
//!   duplicate in-flight requests coalesce onto one primary and complete
//!   off its `ServiceDone` (hit-under-miss). [`cache::CacheKind::Off`]
//!   is the default and replays the uncached schedule bit-for-bit;
//! - [`par`] — multi-core fan-out of independent seeded runs
//!   ([`par::par_runs`] / [`par::par_map`] over the vendored
//!   `scoped_threadpool` stand-in): jobs are distributed from a shared
//!   injector but results merge in **input order**, so for any job count
//!   the batch is byte-identical to the `jobs = 1` serial loop — the
//!   contract CI's parallel scenario sweep rides on;
//! - [`metrics`] — deterministic latency histograms (p50/p95/p99/max),
//!   per-lifecycle-stage breakdowns ([`metrics::StageHistograms`]),
//!   per-tenant queue-wait distributions, drop and SLO-violation
//!   counters, a pipeline-overlap ratio, throughput, queue-depth
//!   timelines, per-board breakdowns, an order-sensitive event-trace
//!   digest for reproducibility checks, an exact five-way stall
//!   attribution of every completed request's latency
//!   ([`metrics::StallBreakdown`]), the simulator's own speed
//!   ([`metrics::SimPerf`]) and a byte-stable JSON rendering
//!   ([`metrics::TrafficReport::to_json`]);
//! - [`trace`] — flight-recorder tracing: the event loop narrates
//!   per-request lifecycle spans, board-resource occupancy and counter
//!   samples into a [`trace::TraceSink`]
//!   ([`sim::TrafficSim::run_traced`]), with a zero-cost
//!   [`trace::NullSink`] default (bit-for-bit the untraced run), a
//!   bounded [`trace::FlightRecorder`] ring for post-mortem queries, and
//!   a [`trace::ChromeTraceWriter`] exporting Perfetto /
//!   `chrome://tracing` JSON with per-board resource tracks and
//!   per-request flow arrows.
//!
//! Every price the scheduler pays — upload delta, per-stage preprocessing,
//! subgraph hand-off, ICAP stall, GPU inference tail — comes from the same
//! calibrated models the runtime uses, through the analytic staged path
//! ([`agnn_core::runtime::AutoGnn::analytic_service_secs`]), so a hundred
//! thousand requests replay in well under a second.
//!
//! # CI perf gate
//!
//! The serving numbers are kept honest by CI (`.github/workflows/ci.yml`,
//! job `bench-smoke`): every push replays a small seeded scenario sweep
//! through `cargo run -p agnn-bench --bin bench_smoke`, uploads the
//! resulting `BENCH_serving.json` artifact (built from
//! [`metrics::TrafficReport::to_json`]), and fails the job if any gated
//! scenario's p99, reconfiguration count or host-upload bytes regresses
//! more than 20 % past the checked-in baseline
//! `ci/bench_serving_baseline.json` — including `migration_drift`, whose
//! host-byte saving is the point of cross-board migration. The simulator
//! also gates **itself**: each scenario row carries `sim_events_per_sec`
//! ([`metrics::SimPerf`]), failed only on a much more generous 40 %
//! slowdown because wall-clock rows ride CI-runner noise. A
//! baseline-vs-run delta table lands in the job summary. Intentional
//! regressions update the baseline in the same PR:
//!
//! ```text
//! cargo run --release -p agnn-bench --bin bench_smoke -- \
//!     --write-baseline ci/bench_serving_baseline.json
//! ```
//!
//! # Examples
//!
//! ```
//! use agnn_graph::datasets::Dataset;
//! use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
//! use agnn_serve::tenant::TenantSpec;
//!
//! let tenants = vec![
//!     TenantSpec::new("feed", Dataset::Movie, 40.0),
//!     TenantSpec::new("ads", Dataset::StackOverflow, 40.0),
//! ];
//! let config = ServeConfig::builder()
//!     .seed(7)
//!     .total_requests(500)
//!     .policy(DispatchPolicy::reconfig_aware())
//!     .build()
//!     .expect("a valid serving config");
//! let report = simulate(tenants, config);
//! assert_eq!(report.completed() + report.dropped(), 500);
//! assert!(report.throughput_rps() > 0.0);
//! ```
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod sched;
pub mod sim;
pub mod tenant;
pub mod trace;

pub use cache::{CacheKind, CacheStats, ResultCache};
pub use engine::{ArrivalSource, Component, EventQueue, Slab};
pub use metrics::{
    BoardStats, CompletedRequest, LatencyHistogram, OutcomeCounts, RequestLatency, RequestOutcome,
    SimPerf, StageHistograms, StallBreakdown, TenantStats, TrafficReport,
};
pub use par::{default_jobs, par_map, par_runs};
pub use pool::{BoardPool, MigratePolicy, MigrationTransfer, PlacementPolicy};
pub use sched::{LatencyPredictor, SchedKind, SchedPolicy, Scheduler};
pub use sim::{
    simulate, ConfigError, DispatchPolicy, HedgeKind, ServeConfig, ServeConfigBuilder, TrafficSim,
};
pub use tenant::{ArrivalProcess, Drift, TenantSpec};
pub use trace::{ChromeTraceWriter, FlightRecorder, NullSink, TraceSink};

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::datasets::Dataset;

    fn mixed_tenants(rate: f64) -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("feed", Dataset::Movie, rate),
            TenantSpec::new("search", Dataset::StackOverflow, rate),
            TenantSpec::new("papers", Dataset::Arxiv, rate),
        ]
    }

    #[test]
    fn same_seed_produces_identical_reports() {
        let cfg = ServeConfig::builder()
            .seed(42)
            .total_requests(2_000)
            .build()
            .unwrap();
        let a = simulate(mixed_tenants(25.0), cfg);
        let b = simulate(mixed_tenants(25.0), cfg);
        assert_eq!(a.trace_digest, b.trace_digest, "identical event traces");
        assert_eq!(a, b, "identical full reports");
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let mk = |seed| {
            let cfg = ServeConfig::builder()
                .seed(seed)
                .total_requests(1_000)
                .build()
                .unwrap();
            simulate(mixed_tenants(25.0), cfg)
        };
        assert_ne!(mk(1).trace_digest, mk(2).trace_digest);
    }

    #[test]
    fn every_offered_request_is_completed_or_dropped() {
        let cfg = ServeConfig::builder()
            .seed(3)
            .total_requests(3_000)
            .queue_capacity(4) // tiny queue under heavy load: forces drops
            .build()
            .unwrap();
        let report = simulate(mixed_tenants(200.0), cfg);
        assert_eq!(
            report.completed() + report.dropped(),
            3_000,
            "no request silently lost"
        );
        let outcomes = report.outcomes();
        assert_eq!(
            outcomes.arrival_terminal(),
            3_000,
            "every arrival reaches exactly one terminal outcome"
        );
        assert_eq!(
            outcomes.served,
            report.completed(),
            "no deadline: all on time"
        );
        assert_eq!(outcomes.served_late, 0);
        assert_eq!(outcomes.expired_in_queue, 0);
        assert_eq!(outcomes.aborted, 0);
        assert_eq!(outcomes.hedge_loser, 0, "hedging is off by default");
        assert!(report.dropped() > 0, "overload must surface as drops");
        assert!(report.queue_depth.max_depth() <= 4, "queue bound respected");
    }

    #[test]
    fn light_load_drops_nothing() {
        let cfg = ServeConfig::builder()
            .seed(4)
            .total_requests(300)
            .build()
            .unwrap();
        let report = simulate(mixed_tenants(0.5), cfg);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.completed(), 300);
        for t in &report.tenants {
            assert!(t.completed > 0, "{} saw no traffic", t.name);
            assert!(t.latency.quantile(0.5) > 0.0);
        }
    }

    #[test]
    fn reconfig_aware_reconfigures_strictly_less_on_mixed_traffic() {
        // Interaction (MV) vs social (SO) tenants prefer different
        // bitstreams; interleaved arrivals make FIFO thrash the ICAP.
        let mk = |policy| {
            let cfg = ServeConfig::builder()
                .seed(11)
                .total_requests(2_000)
                .policy(policy)
                .build()
                .unwrap();
            simulate(mixed_tenants(30.0), cfg)
        };
        let fifo = mk(DispatchPolicy::Fifo);
        let aware = mk(DispatchPolicy::reconfig_aware());
        assert!(
            fifo.reconfigs > 0,
            "mixed tenants must trigger reconfigurations under FIFO"
        );
        assert!(
            aware.reconfigs < fifo.reconfigs,
            "batching same-bitstream requests must save reconfigurations: \
             aware {} vs fifo {}",
            aware.reconfigs,
            fifo.reconfigs
        );
        assert_eq!(
            aware.completed() + aware.dropped(),
            fifo.completed() + fifo.dropped(),
            "both policies face the same offered load"
        );
    }

    #[test]
    fn single_tenant_reconfigures_at_most_once() {
        let tenants = vec![TenantSpec::new("only", Dataset::Movie, 10.0)];
        let report = simulate(
            tenants,
            ServeConfig::builder()
                .seed(5)
                .total_requests(500)
                .build()
                .unwrap(),
        );
        assert!(
            report.reconfigs <= 1,
            "a stable workload settles after one switch, saw {}",
            report.reconfigs
        );
        assert_eq!(report.completed(), 500);
    }

    #[test]
    fn report_printing_is_well_formed() {
        let report = simulate(
            mixed_tenants(5.0),
            ServeConfig::builder()
                .seed(6)
                .total_requests(200)
                .build()
                .unwrap(),
        );
        let text = report.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("throughput"));
        for t in &report.tenants {
            assert!(text.contains(&t.name));
        }
    }

    #[test]
    fn pool_report_prints_per_board_lines() {
        let report = simulate(
            mixed_tenants(30.0),
            ServeConfig::builder()
                .seed(6)
                .total_requests(400)
                .boards(3)
                .build()
                .unwrap(),
        );
        let text = report.to_string();
        assert!(text.contains("board 0:"));
        assert!(text.contains("board 2:"));
        assert_eq!(report.boards.len(), 3);
    }

    #[test]
    fn board_completions_sum_to_total_for_every_placement() {
        for placement in [
            PlacementPolicy::TenantAffine,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::BitstreamAffine,
        ] {
            let report = simulate(
                mixed_tenants(60.0),
                ServeConfig::builder()
                    .seed(12)
                    .total_requests(1_500)
                    .boards(4)
                    .placement(placement)
                    .policy(DispatchPolicy::reconfig_aware())
                    .build()
                    .unwrap(),
            );
            let per_board: u64 = report.boards.iter().map(|b| b.completed).sum();
            assert_eq!(
                per_board,
                report.completed(),
                "{}: board counts must sum to the total",
                placement.name()
            );
            let per_board_reconfigs: u64 = report.boards.iter().map(|b| b.reconfigs).sum();
            assert_eq!(per_board_reconfigs, report.reconfigs);
        }
    }

    #[test]
    fn more_boards_never_serve_fewer_requests() {
        // Heavy load over a small queue: extra boards drain faster, so
        // completions are monotone in pool size on the same arrival trace.
        let mk = |boards| {
            let cfg = ServeConfig::builder()
                .seed(9)
                .total_requests(2_000)
                .queue_capacity(16)
                .boards(boards)
                .policy(DispatchPolicy::reconfig_aware())
                .placement(PlacementPolicy::BitstreamAffine)
                .build()
                .unwrap();
            simulate(mixed_tenants(120.0), cfg)
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(one.completed() + one.dropped(), 2_000);
        assert_eq!(four.completed() + four.dropped(), 2_000);
        assert!(
            four.completed() >= one.completed(),
            "4 boards {} vs 1 board {}",
            four.completed(),
            one.completed()
        );
    }

    #[test]
    fn tenant_affine_pins_every_tenant_to_its_home_board() {
        // 3 tenants on 3 boards: each board only ever sees one tenant's
        // bitstream, so after the initial switch no board reconfigures.
        let report = simulate(
            mixed_tenants(20.0),
            ServeConfig::builder()
                .seed(21)
                .total_requests(1_200)
                .boards(3)
                .placement(PlacementPolicy::TenantAffine)
                .build()
                .unwrap(),
        );
        assert_eq!(report.completed() + report.dropped(), 1_200);
        for (i, board) in report.boards.iter().enumerate() {
            assert!(
                board.reconfigs <= 1,
                "board {i} serves one tenant, saw {} reconfigs",
                board.reconfigs
            );
            assert_eq!(
                board.completed, report.tenants[i].completed,
                "board {i} serves exactly tenant {i}'s load"
            );
        }
    }

    #[test]
    fn serve_config_presets_share_one_base() {
        // The satellite fix: `Default` and the named presets delegate to
        // one base constructor, so knobs cannot silently diverge.
        assert_eq!(ServeConfig::default(), ServeConfig::base());
        let aware = ServeConfig::reconfig_aware();
        assert_eq!(aware.policy, DispatchPolicy::reconfig_aware());
        assert_eq!(
            ServeConfig {
                policy: ServeConfig::base().policy,
                ..aware
            },
            ServeConfig::base(),
            "reconfig_aware differs from base only in the dispatch policy"
        );
        let pipelined = ServeConfig::pipelined();
        assert!(pipelined.overlap);
        assert_eq!(
            ServeConfig {
                overlap: false,
                ..pipelined
            },
            aware,
            "pipelined differs from reconfig_aware only in overlap"
        );
        assert!(!ServeConfig::base().overlap, "serial is the default");
        assert_eq!(
            ServeConfig::builder().build().unwrap(),
            ServeConfig::default(),
            "an untouched builder produces the base config"
        );
        assert_eq!(
            pipelined.to_builder().build().unwrap(),
            pipelined,
            "to_builder round-trips a preset"
        );
    }

    #[test]
    fn builder_rejects_documented_incompatible_combos() {
        // Hedging re-offers work to a *second* board: a pool of one has
        // nowhere to hedge.
        assert_eq!(
            ServeConfig::builder().hedge(HedgeKind::latency()).build(),
            Err(ConfigError::HedgeNeedsPool { boards: 1 }),
        );
        // Hedging prices both legs at dispatch, which only the serial
        // lifecycle exposes.
        assert_eq!(
            ServeConfig::builder()
                .boards(2)
                .overlap(true)
                .hedge(HedgeKind::latency())
                .build(),
            Err(ConfigError::HedgeNeedsSerial),
        );
        assert_eq!(
            ServeConfig::builder().default_deadline_secs(0.0).build(),
            Err(ConfigError::NonPositiveDeadline { secs: 0.0 }),
        );
        assert_eq!(
            ServeConfig::builder()
                .boards(2)
                .hedge(HedgeKind::Latency { factor: -1.0 })
                .build(),
            Err(ConfigError::NonPositiveHedgeFactor { factor: -1.0 }),
        );
        // Each error renders a human-readable explanation.
        let err = ServeConfig::builder()
            .hedge(HedgeKind::latency())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("2 boards"), "{err}");
        // The valid combo builds.
        let cfg = ServeConfig::builder()
            .boards(2)
            .hedge(HedgeKind::latency())
            .default_deadline_secs(2.0)
            .build()
            .unwrap();
        assert_eq!(cfg.hedge, HedgeKind::Latency { factor: 1.0 });
        assert_eq!(cfg.default_deadline_secs, Some(2.0));
    }

    #[test]
    fn pipelined_mode_conserves_requests_and_overlaps() {
        let mk = |overlap| {
            let cfg = ServeConfig::reconfig_aware()
                .to_builder()
                .seed(14)
                .total_requests(2_000)
                .boards(2)
                .overlap(overlap)
                .build()
                .unwrap();
            simulate(mixed_tenants(60.0), cfg)
        };
        let serial = mk(false);
        let pipelined = mk(true);
        assert_eq!(
            pipelined.completed() + pipelined.dropped(),
            2_000,
            "pipelined mode loses no request"
        );
        assert_eq!(serial.completed() + serial.dropped(), 2_000);
        assert_eq!(serial.overlap_secs, 0.0, "serial never overlaps");
        assert_eq!(serial.dma_secs(), 0.0, "serial folds DMA into busy time");
        assert!(
            pipelined.dma_secs() > 0.0,
            "pipelined runs charge the DMA clock"
        );
        assert!(pipelined.overlap_secs >= 0.0);
        assert!(pipelined.pipeline_overlap_ratio() <= 1.0);
        // Per-stage histograms cover every completion in both modes.
        for r in [&serial, &pipelined] {
            assert_eq!(r.stages.ingest.count(), r.completed());
            assert_eq!(r.stages.preprocess.count(), r.completed());
            assert_eq!(r.stages.compute.count(), r.completed());
        }
    }

    #[test]
    fn request_log_is_off_by_default_and_complete_when_on() {
        let cfg = ServeConfig::builder()
            .seed(8)
            .total_requests(400)
            .build()
            .unwrap();
        let silent = simulate(mixed_tenants(10.0), cfg);
        assert!(silent.requests.is_empty(), "logging is opt-in");
        let logged = simulate(
            mixed_tenants(10.0),
            cfg.to_builder().log_requests(true).build().unwrap(),
        );
        assert_eq!(logged.requests.len() as u64, logged.completed());
        for r in &logged.requests {
            assert!(r.latency.total() > 0.0);
        }
    }

    #[test]
    fn rerunning_one_simulator_is_deterministic() {
        let cfg = ServeConfig::builder()
            .seed(33)
            .total_requests(800)
            .boards(2)
            .placement(PlacementPolicy::BitstreamAffine)
            .policy(DispatchPolicy::reconfig_aware())
            .build()
            .unwrap();
        let mut sim = TrafficSim::new(mixed_tenants(40.0), cfg);
        let a = sim.run();
        let b = sim.run();
        assert_eq!(a, b, "the pool resets between runs");
    }
}

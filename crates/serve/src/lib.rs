//! Discrete-event, multi-tenant traffic scheduling for the AutoGNN runtime.
//!
//! The paper's runtime ([`agnn_core::runtime::AutoGnn`]) serves one request
//! at a time; a production deployment sees sustained, mixed, time-varying
//! load from many applications sharing one accelerator. This crate closes
//! that gap with a fully simulated serving layer:
//!
//! - [`tenant`] — tenants bind a Table II dataset, sampling parameters and
//!   a GNN spec to a seeded arrival process (homogeneous Poisson or a
//!   diurnal sinusoid via Lewis–Shedler thinning), with optional
//!   Table II-rate workload drift;
//! - [`sim`] — a binary-heap discrete-event scheduler with a bounded
//!   admission queue, drop accounting and pluggable [`sim::DispatchPolicy`]
//!   — strict FIFO versus a *reconfig-aware* policy that serves
//!   same-bitstream requests together to amortize `ReconfigEvent` stalls
//!   (§V-B's cost-model decision, lifted from one request to a traffic
//!   stream);
//! - [`metrics`] — deterministic latency histograms (p50/p95/p99/max),
//!   throughput, queue-depth timelines, per-tenant breakdowns and an
//!   order-sensitive event-trace digest for reproducibility checks.
//!
//! Every price the scheduler pays — upload delta, per-stage preprocessing,
//! subgraph download, ICAP stall, GPU inference tail — comes from the same
//! calibrated models the runtime uses, through the analytic path, so a
//! hundred thousand requests replay in well under a second.
//!
//! # Examples
//!
//! ```
//! use agnn_graph::datasets::Dataset;
//! use agnn_serve::sim::{simulate, DispatchPolicy, ServeConfig};
//! use agnn_serve::tenant::TenantSpec;
//!
//! let tenants = vec![
//!     TenantSpec::new("feed", Dataset::Movie, 40.0),
//!     TenantSpec::new("ads", Dataset::StackOverflow, 40.0),
//! ];
//! let report = simulate(
//!     tenants,
//!     ServeConfig {
//!         seed: 7,
//!         total_requests: 500,
//!         policy: DispatchPolicy::reconfig_aware(),
//!         ..ServeConfig::default()
//!     },
//! );
//! assert_eq!(report.completed() + report.dropped(), 500);
//! assert!(report.throughput_rps() > 0.0);
//! ```

pub mod metrics;
pub mod sim;
pub mod tenant;

pub use metrics::{LatencyHistogram, RequestLatency, TenantStats, TrafficReport};
pub use sim::{simulate, DispatchPolicy, ServeConfig, TrafficSim};
pub use tenant::{ArrivalProcess, Drift, TenantSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::datasets::Dataset;

    fn mixed_tenants(rate: f64) -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("feed", Dataset::Movie, rate),
            TenantSpec::new("search", Dataset::StackOverflow, rate),
            TenantSpec::new("papers", Dataset::Arxiv, rate),
        ]
    }

    #[test]
    fn same_seed_produces_identical_reports() {
        let cfg = ServeConfig {
            seed: 42,
            total_requests: 2_000,
            ..ServeConfig::default()
        };
        let a = simulate(mixed_tenants(25.0), cfg);
        let b = simulate(mixed_tenants(25.0), cfg);
        assert_eq!(a.trace_digest, b.trace_digest, "identical event traces");
        assert_eq!(a, b, "identical full reports");
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let mk = |seed| {
            simulate(
                mixed_tenants(25.0),
                ServeConfig {
                    seed,
                    total_requests: 1_000,
                    ..ServeConfig::default()
                },
            )
        };
        assert_ne!(mk(1).trace_digest, mk(2).trace_digest);
    }

    #[test]
    fn every_offered_request_is_completed_or_dropped() {
        let cfg = ServeConfig {
            seed: 3,
            total_requests: 3_000,
            queue_capacity: 4, // tiny queue under heavy load: forces drops
            ..ServeConfig::default()
        };
        let report = simulate(mixed_tenants(200.0), cfg);
        assert_eq!(
            report.completed() + report.dropped(),
            3_000,
            "no request silently lost"
        );
        assert!(report.dropped() > 0, "overload must surface as drops");
        assert!(report.queue_depth.max_depth() <= 4, "queue bound respected");
    }

    #[test]
    fn light_load_drops_nothing() {
        let cfg = ServeConfig {
            seed: 4,
            total_requests: 300,
            ..ServeConfig::default()
        };
        let report = simulate(mixed_tenants(0.5), cfg);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.completed(), 300);
        for t in &report.tenants {
            assert!(t.completed > 0, "{} saw no traffic", t.name);
            assert!(t.latency.quantile(0.5) > 0.0);
        }
    }

    #[test]
    fn reconfig_aware_reconfigures_strictly_less_on_mixed_traffic() {
        // Interaction (MV) vs social (SO) tenants prefer different
        // bitstreams; interleaved arrivals make FIFO thrash the ICAP.
        let mk = |policy| {
            simulate(
                mixed_tenants(30.0),
                ServeConfig {
                    seed: 11,
                    total_requests: 2_000,
                    policy,
                    ..ServeConfig::default()
                },
            )
        };
        let fifo = mk(DispatchPolicy::Fifo);
        let aware = mk(DispatchPolicy::reconfig_aware());
        assert!(
            fifo.reconfigs > 0,
            "mixed tenants must trigger reconfigurations under FIFO"
        );
        assert!(
            aware.reconfigs < fifo.reconfigs,
            "batching same-bitstream requests must save reconfigurations: \
             aware {} vs fifo {}",
            aware.reconfigs,
            fifo.reconfigs
        );
        assert_eq!(
            aware.completed() + aware.dropped(),
            fifo.completed() + fifo.dropped(),
            "both policies face the same offered load"
        );
    }

    #[test]
    fn single_tenant_reconfigures_at_most_once() {
        let tenants = vec![TenantSpec::new("only", Dataset::Movie, 10.0)];
        let report = simulate(
            tenants,
            ServeConfig {
                seed: 5,
                total_requests: 500,
                ..ServeConfig::default()
            },
        );
        assert!(
            report.reconfigs <= 1,
            "a stable workload settles after one switch, saw {}",
            report.reconfigs
        );
        assert_eq!(report.completed(), 500);
    }

    #[test]
    fn report_printing_is_well_formed() {
        let report = simulate(
            mixed_tenants(5.0),
            ServeConfig {
                seed: 6,
                total_requests: 200,
                ..ServeConfig::default()
            },
        );
        let text = report.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("throughput"));
        for t in &report.tenants {
            assert!(text.contains(&t.name));
        }
    }
}

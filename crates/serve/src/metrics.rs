//! Deterministic serving metrics: latency histograms, throughput, queue
//! depth, drop and reconfiguration accounting.
//!
//! Percentiles come from a fixed geometric bucket ladder, so two runs with
//! the same seed report byte-identical numbers — no sampling, no clocks.

use crate::cache::CacheStats;
use std::fmt;

/// Smallest representable latency bucket (1 µs).
const HIST_FLOOR_SECS: f64 = 1e-6;
/// Buckets per factor-of-two of latency.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// Total buckets: covers 1 µs to 2^36 µs ≈ 6.9e4 s (~19 hours) at
/// 8/octave; anything beyond lands in the exact-max overflow bucket.
const NUM_BUCKETS: usize = 288;

/// A fixed-ladder geometric latency histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_secs: f64,
    sum_secs: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS + 1],
            total: 0,
            max_secs: 0.0,
            sum_secs: 0.0,
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(secs: f64) -> usize {
        if secs <= HIST_FLOOR_SECS {
            return 0;
        }
        let octaves = (secs / HIST_FLOOR_SECS).log2();
        ((octaves * BUCKETS_PER_OCTAVE) as usize).min(NUM_BUCKETS)
    }

    /// Upper bound of bucket `i` in seconds.
    fn bucket_upper(i: usize) -> f64 {
        HIST_FLOOR_SECS * 2f64.powf((i + 1) as f64 / BUCKETS_PER_OCTAVE)
    }

    /// Records one latency observation.
    pub fn record(&mut self, secs: f64) {
        self.counts[Self::bucket_of(secs)] += 1;
        self.total += 1;
        self.sum_secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_secs / self.total as f64
        }
    }

    /// Exact maximum observed latency in seconds.
    pub fn max(&self) -> f64 {
        self.max_secs
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the bucket
    /// holding the `⌈q·total⌉`-th observation — deterministic, within one
    /// bucket ratio (~9 %) of the exact order statistic. Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q={q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The overflow bucket reports the exact max instead of an
                // unbounded upper edge.
                return if i == NUM_BUCKETS {
                    self.max_secs
                } else {
                    Self::bucket_upper(i).min(self.max_secs)
                };
            }
        }
        self.max_secs
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_secs += other.sum_secs;
        self.max_secs = self.max_secs.max(other.max_secs);
    }
}

/// Latency components of one served request, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestLatency {
    /// Simulated seconds spent queued before dispatch.
    pub queue_secs: f64,
    /// Reconfiguration stall charged to this request, if any.
    pub reconfig_secs: f64,
    /// Host→device graph (delta) upload.
    pub upload_secs: f64,
    /// Seconds waiting *inside* the board pipeline: ingested-but-waiting
    /// for the fabric, or preprocessed-but-waiting for the DMA engine.
    /// Always 0 in serial mode (the stages run back to back).
    pub stage_wait_secs: f64,
    /// Accelerator preprocessing.
    pub preprocess_secs: f64,
    /// Device→GPU subgraph download.
    pub download_secs: f64,
    /// GPU inference tail (off the accelerator's critical path).
    pub inference_secs: f64,
    /// Result-cache service time: the lookup cost of a full hit, or — for
    /// a coalesced request — the wait parked on its primary. 0 for every
    /// request that reached a board ([`crate::cache::CacheKind::Off`]
    /// runs never set it).
    pub cache_secs: f64,
}

impl RequestLatency {
    /// End-to-end seconds from arrival to inference completion.
    pub fn total(&self) -> f64 {
        self.queue_secs
            + self.reconfig_secs
            + self.upload_secs
            + self.stage_wait_secs
            + self.preprocess_secs
            + self.download_secs
            + self.inference_secs
            + self.cache_secs
    }

    /// Seconds the request occupies board resources (excludes queueing,
    /// in-pipeline waits and the GPU inference tail).
    pub fn board_secs(&self) -> f64 {
        self.reconfig_secs + self.upload_secs + self.preprocess_secs + self.download_secs
    }
}

/// Aggregate stall attribution: every completed request's end-to-end
/// latency, partitioned **exactly** into six components (the partition
/// is a regrouping of [`RequestLatency`]'s fields, so the six sum to
/// [`RequestLatency::total`] by construction — the conservation the
/// property tests pin). "Where did the p99 go" becomes a report field:
///
/// - **queue** — waiting for the scheduler (admission queue + in-pipeline
///   staging/hand-off waits: the time nobody was working on the request);
/// - **reconfig** — ICAP reconfiguration stalls charged to the request;
/// - **dma** — the host/switch→board graph upload leg;
/// - **fabric** — accelerator preprocessing;
/// - **handoff** — the board→GPU subgraph download plus the GPU
///   inference tail;
/// - **cache** — result-cache service (full-hit lookups and coalesced
///   waits; see [`RequestLatency::cache_secs`]). Always 0 with the
///   cache off, so pre-cache attributions are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallBreakdown {
    /// Seconds waiting for service (queue + pipeline stage waits).
    pub queue_secs: f64,
    /// Seconds stalled on ICAP reconfiguration.
    pub reconfig_secs: f64,
    /// Seconds on the DMA upload leg.
    pub dma_secs: f64,
    /// Seconds preprocessing on the fabric.
    pub fabric_secs: f64,
    /// Seconds handing the subgraph off (download + inference tail).
    pub handoff_secs: f64,
    /// Seconds served by the result cache (lookups + coalesced waits).
    pub cache_secs: f64,
}

impl StallBreakdown {
    /// One request's latency partitioned into the six components.
    ///
    /// ```
    /// use agnn_serve::{RequestLatency, StallBreakdown};
    ///
    /// let latency = RequestLatency {
    ///     queue_secs: 1.0,
    ///     stage_wait_secs: 0.5,
    ///     reconfig_secs: 0.25,
    ///     upload_secs: 2.0,
    ///     preprocess_secs: 4.0,
    ///     download_secs: 0.5,
    ///     inference_secs: 1.5,
    ///     cache_secs: 0.0,
    /// };
    /// let stalls = StallBreakdown::of(&latency);
    /// // Admission queueing and in-pipeline waits both count as "queue":
    /// // the time nobody was working on the request.
    /// assert_eq!(stalls.queue_secs, 1.5);
    /// // Hand-off = subgraph download + the GPU inference tail.
    /// assert_eq!(stalls.handoff_secs, 2.0);
    /// // The six components are a partition of the end-to-end latency.
    /// assert_eq!(stalls.total(), latency.total());
    /// ```
    pub fn of(latency: &RequestLatency) -> Self {
        StallBreakdown {
            queue_secs: latency.queue_secs + latency.stage_wait_secs,
            reconfig_secs: latency.reconfig_secs,
            dma_secs: latency.upload_secs,
            fabric_secs: latency.preprocess_secs,
            handoff_secs: latency.download_secs + latency.inference_secs,
            cache_secs: latency.cache_secs,
        }
    }

    /// Sum of the six components — equals [`RequestLatency::total`] for
    /// a breakdown built by [`StallBreakdown::of`].
    pub fn total(&self) -> f64 {
        self.queue_secs
            + self.reconfig_secs
            + self.dma_secs
            + self.fabric_secs
            + self.handoff_secs
            + self.cache_secs
    }

    /// Adds another breakdown (aggregation across requests).
    pub fn accumulate(&mut self, other: &StallBreakdown) {
        self.queue_secs += other.queue_secs;
        self.reconfig_secs += other.reconfig_secs;
        self.dma_secs += other.dma_secs;
        self.fabric_secs += other.fabric_secs;
        self.handoff_secs += other.handoff_secs;
        self.cache_secs += other.cache_secs;
    }
}

/// The simulator measuring itself: wall-clock runtime and event count of
/// the run that produced a report.
///
/// These numbers describe the **measurement**, not the simulated system —
/// they vary run to run and machine to machine while the simulated
/// schedule stays bit-identical. `PartialEq` therefore ignores them
/// (two reports of the same simulated run compare equal regardless of
/// host speed), and byte-compare tests zero the field before rendering;
/// [`TrafficReport::to_json`] is where they surface for the CI sim-speed
/// gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimPerf {
    /// Wall-clock seconds the event loop ran.
    pub wall_secs: f64,
    /// Heap events processed.
    pub events: u64,
}

impl SimPerf {
    /// Events processed per wall-clock second (0 when the clock did not
    /// advance — sub-resolution runs cannot claim infinite speed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

impl PartialEq for SimPerf {
    /// Always equal: self-metrics are properties of the host, not the
    /// simulated run (see the type docs) — determinism tests assert full
    /// report equality across replays whose wall clocks necessarily
    /// differ.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Per-lifecycle-stage latency distributions across all served requests:
/// ingest (graph-delta upload), preprocess (fabric), compute (subgraph
/// hand-off + GPU inference tail). Recorded in both serial and pipelined
/// modes, so the two can be compared stage by stage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageHistograms {
    /// Host→device graph-delta uploads.
    pub ingest: LatencyHistogram,
    /// Fabric preprocessing.
    pub preprocess: LatencyHistogram,
    /// Subgraph hand-off plus inference tail.
    pub compute: LatencyHistogram,
}

impl StageHistograms {
    /// Records one request's stage breakdown.
    pub fn record(&mut self, latency: &RequestLatency) {
        self.ingest.record(latency.upload_secs);
        self.preprocess.record(latency.preprocess_secs);
        self.compute
            .record(latency.download_secs + latency.inference_secs);
    }
}

/// How one request's lifecycle ended — the typed replacement for the
/// informal completed/dropped split.
///
/// Every **arrival** ends in exactly one of the five *arrival-terminal*
/// outcomes (`Served`, `ServedLate`, `ExpiredInQueue`, `Aborted`,
/// `DroppedAtAdmission`): that partition is the conservation law the
/// proptests pin (Σ arrival-terminal outcomes == arrivals).
/// [`RequestOutcome::HedgeLoser`] is different in kind — it counts the
/// *cancelled second leg* of a hedged dispatch, which always pairs with
/// the same request's served winner leg, so hedge losers sit outside the
/// arrival partition and instead equal the number of hedges launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestOutcome {
    /// Completed within the request's deadline (or with no deadline set —
    /// every completion of a deadline-free run is `Served`).
    Served,
    /// Completed, but past the deadline: the client had already given up,
    /// so the board work counts as wasted, not goodput.
    ServedLate,
    /// Expired in the admission queue before dispatch — removed at scan
    /// time, no board work spent.
    ExpiredInQueue,
    /// Dispatched, then cancelled before its remaining pipeline stage
    /// started (the deadline passed mid-flight); partial board work is
    /// written off.
    Aborted,
    /// The losing second leg of a hedged dispatch, cancelled when the
    /// winner finished (pairs with a `Served`/`ServedLate` winner of the
    /// same request — not an arrival-terminal outcome).
    HedgeLoser,
    /// Refused at admission (queue or per-tenant quota full).
    DroppedAtAdmission,
}

impl RequestOutcome {
    /// Stable lowercase identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RequestOutcome::Served => "served",
            RequestOutcome::ServedLate => "served_late",
            RequestOutcome::ExpiredInQueue => "expired_in_queue",
            RequestOutcome::Aborted => "aborted",
            RequestOutcome::HedgeLoser => "hedge_loser",
            RequestOutcome::DroppedAtAdmission => "dropped_at_admission",
        }
    }
}

/// Per-outcome request counts (one [`RequestOutcome`] bucket each).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OutcomeCounts {
    /// Completions within deadline (all completions when no deadline).
    pub served: u64,
    /// Completions past the deadline.
    pub served_late: u64,
    /// In-queue expiries.
    pub expired_in_queue: u64,
    /// Post-dispatch stage aborts.
    pub aborted: u64,
    /// Cancelled hedge legs (pairs with served winners; not
    /// arrival-terminal).
    pub hedge_loser: u64,
    /// Admission refusals.
    pub dropped_at_admission: u64,
}

impl OutcomeCounts {
    /// Increments the bucket for `outcome`.
    pub fn record(&mut self, outcome: RequestOutcome) {
        match outcome {
            RequestOutcome::Served => self.served += 1,
            RequestOutcome::ServedLate => self.served_late += 1,
            RequestOutcome::ExpiredInQueue => self.expired_in_queue += 1,
            RequestOutcome::Aborted => self.aborted += 1,
            RequestOutcome::HedgeLoser => self.hedge_loser += 1,
            RequestOutcome::DroppedAtAdmission => self.dropped_at_admission += 1,
        }
    }

    /// Sum of the five arrival-terminal outcomes — equals the number of
    /// arrivals (the conservation law; excludes `hedge_loser`, which
    /// double-books a served request's cancelled second leg).
    pub fn arrival_terminal(&self) -> u64 {
        self.served
            + self.served_late
            + self.expired_in_queue
            + self.aborted
            + self.dropped_at_admission
    }

    /// Adds another set of counts (aggregation across tenants).
    pub fn accumulate(&mut self, other: &OutcomeCounts) {
        self.served += other.served;
        self.served_late += other.served_late;
        self.expired_in_queue += other.expired_in_queue;
        self.aborted += other.aborted;
        self.hedge_loser += other.hedge_loser;
        self.dropped_at_admission += other.dropped_at_admission;
    }
}

/// One completed request, kept only when
/// [`crate::sim::ServeConfig::log_requests`] is set — the per-request
/// ground truth equivalence tests compare across scheduling modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// Tenant index (declaration order).
    pub tenant: usize,
    /// Arrival time in simulated seconds (identifies the request: arrival
    /// streams are independent of scheduling).
    pub arrival_secs: f64,
    /// Full latency breakdown.
    pub latency: RequestLatency,
    /// Graph bytes this request's ingest moved over the host link.
    pub host_bytes: u64,
    /// Graph bytes this request's ingest pulled from a peer board over
    /// the PCIe switch. Together with `host_bytes` this partitions the
    /// ingest: every byte arrived from exactly one source (both 0 for a
    /// warm graph).
    pub switch_bytes: u64,
    /// How the lifecycle ended — [`RequestOutcome::Served`] or
    /// [`RequestOutcome::ServedLate`] here (the log holds completions;
    /// expiries and aborts never produce a record).
    pub outcome: RequestOutcome,
}

/// Per-tenant serving statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Requests admitted and completed.
    pub completed: u64,
    /// Requests refused at admission (shared queue full, or — under
    /// [`crate::sched::SchedKind::WeightedFair`] — the tenant's own quota
    /// exhausted). The report-wide [`TrafficReport::dropped`] aggregate
    /// is exactly the sum of these per-tenant counts, which is what makes
    /// fair-queueing drop isolation observable per tenant.
    pub dropped: u64,
    /// End-to-end latency distribution.
    pub latency: LatencyHistogram,
    /// Queue-wait distribution (arrival → dispatch): the share of latency
    /// the *scheduler* controls, which is where fair queueing shows up.
    pub queue_wait: LatencyHistogram,
    /// Completions whose end-to-end latency exceeded the tenant's
    /// [`crate::tenant::TenantSpec::slo_secs`] budget. Always 0 for
    /// tenants without a declared SLO; counted under every scheduler, so
    /// SLO attainment is comparable across policies.
    pub slo_violations: u64,
    /// Total accelerator-busy seconds consumed.
    pub board_secs: f64,
    /// Reconfigurations performed to serve this tenant's requests.
    pub reconfigs: u64,
    /// Requests served entirely from the result cache at admission.
    pub cache_hits: u64,
    /// Dispatched requests that skipped preprocessing against a fresh
    /// cache entry (partial hits).
    pub cache_partial_hits: u64,
    /// Dispatched requests that recomputed in full (cache misses; 0 with
    /// the cache off — uncached requests are unclassified, not misses).
    pub cache_misses: u64,
    /// Duplicate in-flight requests coalesced onto a primary.
    pub cache_coalesced: u64,
    /// Typed outcome counters ([`RequestOutcome`] buckets). Invariants:
    /// `outcomes.served + outcomes.served_late == completed` and
    /// `outcomes.dropped_at_admission == dropped`; with deadlines off
    /// every non-`served` bucket except `dropped_at_admission` is 0.
    pub outcomes: OutcomeCounts,
    /// Latency distribution of **on-time** completions only (the goodput
    /// split of `latency`). Identical to `latency` when the tenant has no
    /// deadline — everything served counts as goodput then.
    pub goodput_latency: LatencyHistogram,
}

impl TenantStats {
    /// Drop rate in `[0, 1]`.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.completed + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Requests this tenant arrived with that reached a terminal outcome
    /// — completed, dropped, expired or aborted (the conservation total).
    pub fn arrivals(&self) -> u64 {
        self.completed + self.dropped + self.outcomes.expired_in_queue + self.outcomes.aborted
    }
}

/// Per-board serving statistics — the sharding breakdown of a pool run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoardStats {
    /// Requests this board completed.
    pub completed: u64,
    /// Reconfigurations this board paid.
    pub reconfigs: u64,
    /// Seconds this board spent reprogramming.
    pub reconfig_secs: f64,
    /// Seconds the board's fabric slot was occupied (serial mode folds the
    /// PCIe legs in too, as PR 2 did).
    pub busy_secs: f64,
    /// Seconds the board's DMA engine was occupied (pipelined mode folds
    /// every transfer in; serial runs charge only outbound migration legs
    /// here — host transfers live inside `busy_secs` there).
    pub dma_secs: f64,
    /// Tenants evicted from this board's DRAM to fit the working set.
    pub evictions: u64,
    /// Requests this board served by pulling the graph from a peer
    /// board's DRAM over the PCIe switch.
    pub migrations: u64,
    /// Bytes this board pulled in over the PCIe switch.
    pub switch_bytes: u64,
    /// Bytes this board ingested from the host link.
    pub host_bytes: u64,
}

impl BoardStats {
    /// Fraction of `[0, duration_secs]` the board was occupied.
    pub fn utilization(&self, duration_secs: f64) -> f64 {
        if duration_secs <= 0.0 {
            0.0
        } else {
            self.busy_secs / duration_secs
        }
    }
}

/// One sample of the queue-depth timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthSample {
    /// Simulated seconds.
    pub time_secs: f64,
    /// Admission-queue depth after the transition.
    pub depth: usize,
}

/// Bounded, deterministic queue-depth recorder: keeps every `stride`-th
/// transition plus the running maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthTimeline {
    samples: Vec<DepthSample>,
    stride: u64,
    transitions: u64,
    max_depth: usize,
    area: f64,
    last_time: f64,
    last_depth: usize,
}

impl DepthTimeline {
    /// A timeline keeping roughly one sample per `stride` transitions.
    pub fn with_stride(stride: u64) -> Self {
        DepthTimeline {
            samples: Vec::new(),
            stride: stride.max(1),
            transitions: 0,
            max_depth: 0,
            area: 0.0,
            last_time: 0.0,
            last_depth: 0,
        }
    }

    /// Records a depth transition at `time_secs`.
    pub fn record(&mut self, time_secs: f64, depth: usize) {
        self.area += self.last_depth as f64 * (time_secs - self.last_time).max(0.0);
        self.last_time = time_secs;
        self.last_depth = depth;
        self.max_depth = self.max_depth.max(depth);
        if self.transitions.is_multiple_of(self.stride) {
            self.samples.push(DepthSample { time_secs, depth });
        }
        self.transitions += 1;
    }

    /// The retained samples, in time order.
    pub fn samples(&self) -> &[DepthSample] {
        &self.samples
    }

    /// Maximum observed depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Time-weighted mean depth over `[0, horizon_secs]`.
    pub fn mean_depth(&self, horizon_secs: f64) -> f64 {
        if horizon_secs <= 0.0 {
            return 0.0;
        }
        let tail = self.last_depth as f64 * (horizon_secs - self.last_time).max(0.0);
        (self.area + tail) / horizon_secs
    }
}

impl Default for DepthTimeline {
    fn default() -> Self {
        DepthTimeline::with_stride(64)
    }
}

/// The full report of one traffic simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Per-tenant statistics, in tenant declaration order.
    pub tenants: Vec<TenantStats>,
    /// Simulated seconds from start to the last completion.
    pub duration_secs: f64,
    /// Total reconfigurations performed.
    pub reconfigs: u64,
    /// Total seconds the accelerator spent reprogramming.
    pub reconfig_secs: f64,
    /// Queue-depth timeline. The depth recorded at each transition is the
    /// **aggregate** number of queued requests across the scheduler's
    /// admission queues ([`crate::sched::SchedPolicy::len`]): one shared
    /// pool-wide queue under [`crate::sched::Fifo`], the sum over the
    /// per-tenant queues under [`crate::sched::WeightedFair`] — there is
    /// no single shared queue there, so only the aggregate is meaningful
    /// on one timeline.
    pub queue_depth: DepthTimeline,
    /// Per-board breakdown, in board order. Always at least one entry;
    /// single-board runs report the one board's totals.
    pub boards: Vec<BoardStats>,
    /// Per-lifecycle-stage latency distributions.
    pub stages: StageHistograms,
    /// Seconds a DMA transfer ran concurrently with fabric compute on the
    /// same board — the pipelining the staged scheduler buys. 0 in serial
    /// mode.
    pub overlap_secs: f64,
    /// Completed-request log (empty unless
    /// [`crate::sim::ServeConfig::log_requests`] was set).
    pub requests: Vec<CompletedRequest>,
    /// Aggregate stall attribution summed over every completed request
    /// (each request's six components sum to its end-to-end latency).
    pub stall: StallBreakdown,
    /// Graph bytes moved for work that never became goodput: aborted
    /// stages' transfers, hedge-loser legs, and the full transfer of
    /// every past-deadline completion. 0 whenever deadlines and hedging
    /// are off.
    pub wasted_work_bytes: u64,
    /// Board-seconds written off for the same non-goodput work (the time
    /// half of the wasted ledger).
    pub wasted_secs: f64,
    /// Result-cache counters for the run — all zero (and absent from the
    /// rendered report's effect on behavior) when
    /// [`crate::sim::ServeConfig::cache`] is [`crate::cache::CacheKind::Off`].
    pub cache: CacheStats,
    /// The simulator's own speed (wall clock + events). The **only**
    /// non-deterministic report field: excluded from `PartialEq` (see
    /// [`SimPerf`]) and from [`fmt::Display`], included in
    /// [`TrafficReport::to_json`] for the CI sim-speed gate.
    pub sim: SimPerf,
    /// Order-sensitive digest of the full event trace; equal digests mean
    /// identical schedules, completions and latencies.
    pub trace_digest: u64,
}

impl TrafficReport {
    /// Total completed requests across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total dropped requests across tenants.
    pub fn dropped(&self) -> u64 {
        self.tenants.iter().map(|t| t.dropped).sum()
    }

    /// Typed outcome counters summed across tenants.
    pub fn outcomes(&self) -> OutcomeCounts {
        let mut total = OutcomeCounts::default();
        for t in &self.tenants {
            total.accumulate(&t.outcomes);
        }
        total
    }

    /// Total on-time completions — the goodput half of
    /// [`TrafficReport::completed`]. Equal to it when no tenant carries
    /// a deadline.
    pub fn goodput(&self) -> u64 {
        self.tenants.iter().map(|t| t.outcomes.served).sum()
    }

    /// The merged latency distribution of on-time completions only.
    pub fn goodput_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for t in &self.tenants {
            merged.merge(&t.goodput_latency);
        }
        merged
    }

    /// Requests expired in the admission queue across tenants.
    pub fn expired_in_queue(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.outcomes.expired_in_queue)
            .sum()
    }

    /// Dispatched requests aborted before their next stage started.
    pub fn aborted(&self) -> u64 {
        self.tenants.iter().map(|t| t.outcomes.aborted).sum()
    }

    /// Hedged dispatches launched. Every hedge cancels exactly one
    /// losing leg, so this equals the summed `hedge_loser` counters.
    pub fn hedges(&self) -> u64 {
        self.tenants.iter().map(|t| t.outcomes.hedge_loser).sum()
    }

    /// Completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / self.duration_secs
        }
    }

    /// The merged latency distribution across tenants.
    pub fn overall_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for t in &self.tenants {
            merged.merge(&t.latency);
        }
        merged
    }

    /// Number of boards that served this run.
    pub fn pool_size(&self) -> usize {
        self.boards.len().max(1)
    }

    /// Total seconds the boards' DMA engines were occupied (pipelined
    /// runs; 0 in serial mode, where transfers fold into `busy_secs`).
    pub fn dma_secs(&self) -> f64 {
        self.boards.iter().map(|b| b.dma_secs).sum()
    }

    /// Total DRAM evictions across the pool.
    pub fn evictions(&self) -> u64 {
        self.boards.iter().map(|b| b.evictions).sum()
    }

    /// Total requests served by pulling a graph from a peer board's DRAM
    /// over the PCIe switch instead of re-uploading from the host.
    pub fn migrations(&self) -> u64 {
        self.boards.iter().map(|b| b.migrations).sum()
    }

    /// Total bytes moved board-to-board over the PCIe switch.
    pub fn switch_bytes(&self) -> u64 {
        self.boards.iter().map(|b| b.switch_bytes).sum()
    }

    /// Total bytes uploaded from the host across the pool.
    pub fn host_upload_bytes(&self) -> u64 {
        self.boards.iter().map(|b| b.host_bytes).sum()
    }

    /// Host-link bytes migration saved, against the **per-dispatch**
    /// counterfactual: had each migrated ingest sourced from the host
    /// instead (same request, same board), every switch byte would have
    /// crossed the host link — so the saving is the switch traffic.
    ///
    /// This is *not* a comparison against a [`MigratePolicy::Off`] run:
    /// a `SplitHot` overflow dispatch only exists because migration does
    /// (under `Off` the request waits for its warm affine board and
    /// uploads nothing), so cross-policy savings must be computed by
    /// diffing two runs' [`TrafficReport::host_upload_bytes`] — as the
    /// example and the CI `migration_drift` gate do.
    ///
    /// [`MigratePolicy::Off`]: crate::pool::MigratePolicy::Off
    pub fn host_bytes_saved(&self) -> u64 {
        self.switch_bytes()
    }

    /// The fraction of DMA-engine time that ran concurrently with fabric
    /// compute — 1.0 means every PCIe byte moved behind a preprocessing
    /// pass, 0 means the pipeline never overlapped (always the case in
    /// serial mode).
    pub fn pipeline_overlap_ratio(&self) -> f64 {
        let dma = self.dma_secs();
        if dma <= 0.0 {
            0.0
        } else {
            (self.overlap_secs / dma).clamp(0.0, 1.0)
        }
    }

    /// Renders the report as deterministic JSON: fixed key order, Rust's
    /// shortest-roundtrip float formatting, the trace digest as a hex
    /// string (JSON numbers cannot carry a full `u64`). Two runs with the
    /// same seed produce byte-identical documents — which is what the CI
    /// `bench-smoke` artifact and perf gate compare — **except** the
    /// `sim_*` self-metric fields, which report the host's wall clock and
    /// are the document's only non-deterministic bytes (byte-compare
    /// tests zero [`TrafficReport::sim`] before rendering).
    pub fn to_json(&self) -> String {
        let overall = self.overall_latency();
        let goodput = self.goodput_latency();
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_field(&mut out, "schema", &json_str("agnn-serve-report/v7"));
        push_field(&mut out, "pool_size", &self.pool_size().to_string());
        push_field(&mut out, "completed", &self.completed().to_string());
        push_field(&mut out, "dropped", &self.dropped().to_string());
        push_field(&mut out, "goodput", &self.goodput().to_string());
        push_field(
            &mut out,
            "goodput_p99_secs",
            &json_f64(goodput.quantile(0.99)),
        );
        push_field(
            &mut out,
            "expired_in_queue",
            &self.expired_in_queue().to_string(),
        );
        push_field(&mut out, "aborted", &self.aborted().to_string());
        push_field(&mut out, "hedges", &self.hedges().to_string());
        push_field(
            &mut out,
            "wasted_work_bytes",
            &self.wasted_work_bytes.to_string(),
        );
        push_field(&mut out, "wasted_secs", &json_f64(self.wasted_secs));
        push_field(&mut out, "reconfigs", &self.reconfigs.to_string());
        push_field(&mut out, "reconfig_secs", &json_f64(self.reconfig_secs));
        push_field(&mut out, "duration_secs", &json_f64(self.duration_secs));
        push_field(&mut out, "throughput_rps", &json_f64(self.throughput_rps()));
        push_field(&mut out, "p50_secs", &json_f64(overall.quantile(0.50)));
        push_field(&mut out, "p95_secs", &json_f64(overall.quantile(0.95)));
        push_field(&mut out, "p99_secs", &json_f64(overall.quantile(0.99)));
        push_field(&mut out, "max_secs", &json_f64(overall.max()));
        push_field(&mut out, "mean_secs", &json_f64(overall.mean()));
        push_field(
            &mut out,
            "queue_depth_max",
            &self.queue_depth.max_depth().to_string(),
        );
        let stages: Vec<String> = [
            ("ingest", &self.stages.ingest),
            ("preprocess", &self.stages.preprocess),
            ("compute", &self.stages.compute),
        ]
        .into_iter()
        .map(|(name, h)| {
            let mut obj = String::new();
            obj.push('{');
            push_field(&mut obj, "stage", &json_str(name));
            push_field(&mut obj, "p50_secs", &json_f64(h.quantile(0.50)));
            push_field(&mut obj, "p99_secs", &json_f64(h.quantile(0.99)));
            push_field(&mut obj, "mean_secs", &json_f64(h.mean()));
            close_obj(&mut obj);
            obj
        })
        .collect();
        push_field(&mut out, "stages", &format!("[{}]", stages.join(",")));
        let mut stall = String::new();
        stall.push('{');
        push_field(&mut stall, "queue_secs", &json_f64(self.stall.queue_secs));
        push_field(
            &mut stall,
            "reconfig_secs",
            &json_f64(self.stall.reconfig_secs),
        );
        push_field(&mut stall, "dma_secs", &json_f64(self.stall.dma_secs));
        push_field(&mut stall, "fabric_secs", &json_f64(self.stall.fabric_secs));
        push_field(
            &mut stall,
            "handoff_secs",
            &json_f64(self.stall.handoff_secs),
        );
        push_field(&mut stall, "cache_secs", &json_f64(self.stall.cache_secs));
        close_obj(&mut stall);
        push_field(&mut out, "stall_attribution", &stall);
        push_field(&mut out, "sim_wall_secs", &json_f64(self.sim.wall_secs));
        push_field(&mut out, "sim_events", &self.sim.events.to_string());
        push_field(
            &mut out,
            "sim_events_per_sec",
            &json_f64(self.sim.events_per_sec()),
        );
        push_field(&mut out, "overlap_secs", &json_f64(self.overlap_secs));
        push_field(
            &mut out,
            "pipeline_overlap_ratio",
            &json_f64(self.pipeline_overlap_ratio()),
        );
        push_field(&mut out, "evictions", &self.evictions().to_string());
        push_field(&mut out, "migrations", &self.migrations().to_string());
        push_field(&mut out, "switch_bytes", &self.switch_bytes().to_string());
        push_field(
            &mut out,
            "host_upload_bytes",
            &self.host_upload_bytes().to_string(),
        );
        push_field(
            &mut out,
            "host_bytes_saved",
            &self.host_bytes_saved().to_string(),
        );
        let mut cache = String::new();
        cache.push('{');
        push_field(&mut cache, "hits", &self.cache.hits.to_string());
        push_field(
            &mut cache,
            "partial_hits",
            &self.cache.partial_hits.to_string(),
        );
        push_field(&mut cache, "misses", &self.cache.misses.to_string());
        push_field(
            &mut cache,
            "invalidations",
            &self.cache.invalidations.to_string(),
        );
        push_field(&mut cache, "coalesced", &self.cache.coalesced.to_string());
        push_field(&mut cache, "hit_rate", &json_f64(self.cache.hit_rate()));
        push_field(
            &mut cache,
            "recompute_secs_saved",
            &json_f64(self.cache.recompute_secs_saved),
        );
        push_field(
            &mut cache,
            "max_served_delta_frac",
            &json_f64(self.cache.max_served_delta_frac),
        );
        close_obj(&mut cache);
        push_field(&mut out, "cache", &cache);
        push_field(
            &mut out,
            "trace_digest",
            &json_str(&format!("{:#018x}", self.trace_digest)),
        );
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                let mut obj = String::new();
                obj.push('{');
                push_field(&mut obj, "name", &json_str(&t.name));
                push_field(&mut obj, "completed", &t.completed.to_string());
                push_field(&mut obj, "dropped", &t.dropped.to_string());
                push_field(&mut obj, "reconfigs", &t.reconfigs.to_string());
                push_field(&mut obj, "board_secs", &json_f64(t.board_secs));
                push_field(&mut obj, "p50_secs", &json_f64(t.latency.quantile(0.50)));
                push_field(&mut obj, "p99_secs", &json_f64(t.latency.quantile(0.99)));
                push_field(
                    &mut obj,
                    "queue_wait_p50_secs",
                    &json_f64(t.queue_wait.quantile(0.50)),
                );
                push_field(
                    &mut obj,
                    "queue_wait_p99_secs",
                    &json_f64(t.queue_wait.quantile(0.99)),
                );
                push_field(&mut obj, "slo_violations", &t.slo_violations.to_string());
                push_field(&mut obj, "cache_hits", &t.cache_hits.to_string());
                push_field(
                    &mut obj,
                    "cache_partial_hits",
                    &t.cache_partial_hits.to_string(),
                );
                push_field(&mut obj, "cache_misses", &t.cache_misses.to_string());
                push_field(&mut obj, "cache_coalesced", &t.cache_coalesced.to_string());
                push_field(&mut obj, "served", &t.outcomes.served.to_string());
                push_field(&mut obj, "served_late", &t.outcomes.served_late.to_string());
                push_field(
                    &mut obj,
                    "expired_in_queue",
                    &t.outcomes.expired_in_queue.to_string(),
                );
                push_field(&mut obj, "aborted", &t.outcomes.aborted.to_string());
                push_field(&mut obj, "hedge_loser", &t.outcomes.hedge_loser.to_string());
                push_field(
                    &mut obj,
                    "goodput_p99_secs",
                    &json_f64(t.goodput_latency.quantile(0.99)),
                );
                close_obj(&mut obj);
                obj
            })
            .collect();
        push_field(&mut out, "tenants", &format!("[{}]", tenants.join(",")));
        let boards: Vec<String> = self
            .boards
            .iter()
            .map(|b| {
                let mut obj = String::new();
                obj.push('{');
                push_field(&mut obj, "completed", &b.completed.to_string());
                push_field(&mut obj, "reconfigs", &b.reconfigs.to_string());
                push_field(&mut obj, "reconfig_secs", &json_f64(b.reconfig_secs));
                push_field(&mut obj, "busy_secs", &json_f64(b.busy_secs));
                push_field(&mut obj, "dma_secs", &json_f64(b.dma_secs));
                push_field(&mut obj, "evictions", &b.evictions.to_string());
                push_field(&mut obj, "migrations", &b.migrations.to_string());
                push_field(&mut obj, "switch_bytes", &b.switch_bytes.to_string());
                push_field(&mut obj, "host_bytes", &b.host_bytes.to_string());
                push_field(
                    &mut obj,
                    "utilization",
                    &json_f64(b.utilization(self.duration_secs)),
                );
                close_obj(&mut obj);
                obj
            })
            .collect();
        push_field(&mut out, "boards", &format!("[{}]", boards.join(",")));
        close_obj(&mut out);
        out
    }
}

/// Appends `"key":value,` (the trailing comma is trimmed by [`close_obj`]).
fn push_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
    out.push(',');
}

/// Replaces a trailing comma with the closing brace.
fn close_obj(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

/// A string as a JSON literal, with `"`/`\`/control characters escaped.
/// Public so downstream report composers (e.g. the CI `bench-smoke`
/// artifact) share one encoder instead of hand-rolling escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite `f64` as a JSON number (non-finite values become `null` —
/// bare `{}` formatting of a NaN would corrupt the document). Public for
/// the same reason as [`json_str`].
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>9} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9}",
            "tenant", "completed", "dropped", "drop%", "p50(ms)", "p99(ms)", "max(ms)", "reconfig"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{:<14} {:>9} {:>8} {:>7.2}% {:>10.2} {:>10.2} {:>10.2} {:>9}",
                t.name,
                t.completed,
                t.dropped,
                t.drop_rate() * 100.0,
                t.latency.quantile(0.50) * 1e3,
                t.latency.quantile(0.99) * 1e3,
                t.latency.max() * 1e3,
                t.reconfigs,
            )?;
        }
        let overall = self.overall_latency();
        writeln!(
            f,
            "{:<14} {:>9} {:>8} {:>7.2}% {:>10.2} {:>10.2} {:>10.2} {:>9}",
            "TOTAL",
            self.completed(),
            self.dropped(),
            if self.completed() + self.dropped() == 0 {
                0.0
            } else {
                self.dropped() as f64 / (self.completed() + self.dropped()) as f64 * 100.0
            },
            overall.quantile(0.50) * 1e3,
            overall.quantile(0.99) * 1e3,
            overall.max() * 1e3,
            self.reconfigs,
        )?;
        writeln!(
            f,
            "throughput {:.1} req/s over {:.1} sim-s | queue depth max {} mean {:.1} | reconfig stall {:.2} s",
            self.throughput_rps(),
            self.duration_secs,
            self.queue_depth.max_depth(),
            self.queue_depth.mean_depth(self.duration_secs),
            self.reconfig_secs,
        )?;
        writeln!(
            f,
            "stages p99 (ms): ingest {:.3} | preprocess {:.3} | compute {:.3}",
            self.stages.ingest.quantile(0.99) * 1e3,
            self.stages.preprocess.quantile(0.99) * 1e3,
            self.stages.compute.quantile(0.99) * 1e3,
        )?;
        let total = self.stall.total();
        if total > 0.0 {
            writeln!(
                f,
                "stall attribution: queue {:.1}% | reconfig {:.1}% | dma {:.1}% | \
                 fabric {:.1}% | handoff {:.1}% | cache {:.1}% of {:.1} request-s",
                self.stall.queue_secs / total * 100.0,
                self.stall.reconfig_secs / total * 100.0,
                self.stall.dma_secs / total * 100.0,
                self.stall.fabric_secs / total * 100.0,
                self.stall.handoff_secs / total * 100.0,
                self.stall.cache_secs / total * 100.0,
                total,
            )?;
        }
        if self.cache.lookups() + self.cache.coalesced > 0 {
            writeln!(
                f,
                "cache: hit-rate {:.1}% ({} full, {} partial, {} miss) | {} coalesced | \
                 {} invalidations | {:.1} s recompute saved",
                self.cache.hit_rate() * 100.0,
                self.cache.hits,
                self.cache.partial_hits,
                self.cache.misses,
                self.cache.coalesced,
                self.cache.invalidations,
                self.cache.recompute_secs_saved,
            )?;
        }
        let lifecycle_cuts =
            self.expired_in_queue() + self.aborted() + self.hedges() + self.outcomes().served_late;
        if lifecycle_cuts > 0 || self.wasted_work_bytes > 0 {
            writeln!(
                f,
                "deadline: goodput {}/{} on-time | {} expired | {} aborted | {} late | \
                 {} hedges | wasted {:.2} GB / {:.1} board-s",
                self.goodput(),
                self.completed(),
                self.expired_in_queue(),
                self.aborted(),
                self.outcomes().served_late,
                self.hedges(),
                self.wasted_work_bytes as f64 / 1e9,
                self.wasted_secs,
            )?;
        }
        if self.dma_secs() > 0.0 {
            writeln!(
                f,
                "pipeline: {:.1}% of DMA time overlapped fabric compute ({:.2} s) | {} evictions",
                self.pipeline_overlap_ratio() * 100.0,
                self.overlap_secs,
                self.evictions(),
            )?;
        }
        if self.migrations() > 0 {
            writeln!(
                f,
                "migration: {} peer pulls | {:.2} GB over the switch | {:.2} GB from the host ({:.2} GB saved)",
                self.migrations(),
                self.switch_bytes() as f64 / 1e9,
                self.host_upload_bytes() as f64 / 1e9,
                self.host_bytes_saved() as f64 / 1e9,
            )?;
        }
        if self.boards.len() > 1 {
            for (i, b) in self.boards.iter().enumerate() {
                writeln!(
                    f,
                    "board {i}: {} completed | util {:>5.1}% | {} reconfigs ({:.2} s stall)",
                    b.completed,
                    b.utilization(self.duration_secs) * 100.0,
                    b.reconfigs,
                    b.reconfig_secs,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1_000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((0.45..0.60).contains(&p50), "p50 {p50}");
        assert!((0.9..1.05).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.count(), 1_000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut h = LatencyHistogram::default();
        for i in 0..500 {
            h.record(1e-5 * (1 + i % 97) as f64);
        }
        let mut last = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn overflow_latencies_report_the_exact_max() {
        let mut h = LatencyHistogram::default();
        h.record(1e9); // far beyond the ladder
        assert_eq!(h.quantile(0.99), 1e9);
        assert_eq!(h.max(), 1e9);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(0.010);
        b.record(0.500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 0.500);
    }

    #[test]
    fn depth_timeline_tracks_max_and_mean() {
        let mut d = DepthTimeline::with_stride(1);
        d.record(0.0, 1);
        d.record(10.0, 3);
        d.record(20.0, 0);
        assert_eq!(d.max_depth(), 3);
        // depth 1 over [0,10), 3 over [10,20), 0 after => (10+30)/40.
        assert!((d.mean_depth(40.0) - 1.0).abs() < 1e-9);
        assert_eq!(d.samples().len(), 3);
    }

    #[test]
    fn depth_timeline_stride_bounds_samples() {
        let mut d = DepthTimeline::with_stride(100);
        for i in 0..1_000 {
            d.record(i as f64, i % 7);
        }
        assert_eq!(d.samples().len(), 10);
        assert_eq!(d.max_depth(), 6);
    }

    #[test]
    fn board_stats_utilization_is_bounded_and_guarded() {
        let b = BoardStats {
            completed: 10,
            reconfigs: 2,
            reconfig_secs: 0.5,
            busy_secs: 25.0,
            ..BoardStats::default()
        };
        assert!((b.utilization(100.0) - 0.25).abs() < 1e-12);
        assert_eq!(b.utilization(0.0), 0.0, "zero horizon cannot divide");
    }

    #[test]
    fn json_report_is_deterministic_and_structurally_sound() {
        let mut tenant = TenantStats {
            name: "feed \"a\"\\".to_string(),
            ..TenantStats::default()
        };
        tenant.completed = 3;
        tenant.latency.record(0.010);
        let report = TrafficReport {
            tenants: vec![tenant],
            duration_secs: 12.5,
            reconfigs: 1,
            reconfig_secs: 0.23,
            queue_depth: DepthTimeline::default(),
            boards: vec![BoardStats::default(), BoardStats::default()],
            stages: StageHistograms::default(),
            overlap_secs: 0.0,
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            wasted_work_bytes: 0,
            wasted_secs: 0.0,
            cache: CacheStats::default(),
            sim: SimPerf::default(),
            trace_digest: 0xDEAD_BEEF,
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "byte-identical renders");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"pool_size\":2"));
        assert!(a.contains("\"p99_secs\":"));
        assert!(a.contains("\"stages\":[{\"stage\":\"ingest\""));
        assert!(a.contains("\"pipeline_overlap_ratio\":"));
        assert!(a.contains("\"dma_secs\":"));
        assert!(a.contains("\"migrations\":0"));
        assert!(a.contains("\"switch_bytes\":0"));
        assert!(a.contains("\"host_upload_bytes\":0"));
        assert!(a.contains("\"host_bytes_saved\":0"));
        assert!(a.contains("\"schema\":\"agnn-serve-report/v7\""));
        assert!(a.contains("\"goodput\":0"));
        assert!(a.contains("\"goodput_p99_secs\":"));
        assert!(a.contains("\"expired_in_queue\":0"));
        assert!(a.contains("\"aborted\":0"));
        assert!(a.contains("\"hedges\":0"));
        assert!(a.contains("\"wasted_work_bytes\":0"));
        assert!(a.contains("\"wasted_secs\":0"));
        assert!(a.contains("\"served\":0"));
        assert!(a.contains("\"served_late\":0"));
        assert!(a.contains("\"hedge_loser\":0"));
        assert!(a.contains("\"stall_attribution\":{\"queue_secs\":"));
        assert!(a.contains("\"handoff_secs\":"));
        assert!(a.contains("\"cache_secs\":"));
        assert!(a.contains("\"cache\":{\"hits\":0"));
        assert!(a.contains("\"hit_rate\":0"));
        assert!(a.contains("\"recompute_secs_saved\":0"));
        assert!(a.contains("\"max_served_delta_frac\":0"));
        assert!(a.contains("\"cache_hits\":0"));
        assert!(a.contains("\"cache_partial_hits\":0"));
        assert!(a.contains("\"cache_misses\":0"));
        assert!(a.contains("\"cache_coalesced\":0"));
        assert!(a.contains("\"sim_wall_secs\":"));
        assert!(a.contains("\"sim_events\":0"));
        assert!(a.contains("\"sim_events_per_sec\":"));
        assert!(a.contains("\"queue_wait_p99_secs\":"));
        assert!(a.contains("\"slo_violations\":0"));
        assert!(a.contains("\"trace_digest\":\"0x00000000deadbeef\""));
        assert!(
            a.contains("feed \\\"a\\\"\\\\"),
            "quotes and backslashes escaped"
        );
        assert!(!a.contains(",}"), "no trailing commas: {a}");
        assert!(!a.contains(",]"), "no trailing commas: {a}");
    }

    #[test]
    fn json_f64_guards_non_finite_values() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn request_latency_totals_are_consistent() {
        let lat = RequestLatency {
            queue_secs: 1.0,
            reconfig_secs: 0.23,
            upload_secs: 0.1,
            stage_wait_secs: 0.0,
            preprocess_secs: 0.5,
            download_secs: 0.05,
            inference_secs: 0.2,
            cache_secs: 0.0,
        };
        assert!((lat.total() - 2.08).abs() < 1e-12);
        assert!((lat.board_secs() - 0.88).abs() < 1e-12);
        // Pipeline waits count toward the end-to-end total but not toward
        // board occupancy.
        let waited = RequestLatency {
            stage_wait_secs: 0.3,
            ..lat
        };
        assert!((waited.total() - 2.38).abs() < 1e-12);
        assert!((waited.board_secs() - lat.board_secs()).abs() < 1e-15);
        // Cache service counts toward the end-to-end total but never
        // toward board occupancy — a full hit occupies no board slot.
        let cached = RequestLatency {
            cache_secs: 0.01,
            ..lat
        };
        assert!((cached.total() - 2.09).abs() < 1e-12);
        assert!((cached.board_secs() - lat.board_secs()).abs() < 1e-15);
    }

    #[test]
    fn stall_breakdown_partitions_the_latency_exactly() {
        let lat = RequestLatency {
            queue_secs: 1.0,
            reconfig_secs: 0.23,
            upload_secs: 0.1,
            stage_wait_secs: 0.3,
            preprocess_secs: 0.5,
            download_secs: 0.05,
            inference_secs: 0.2,
            cache_secs: 0.02,
        };
        let stall = StallBreakdown::of(&lat);
        assert!((stall.queue_secs - 1.3).abs() < 1e-12, "queue + stage wait");
        assert!((stall.reconfig_secs - 0.23).abs() < 1e-12);
        assert!((stall.dma_secs - 0.1).abs() < 1e-12);
        assert!((stall.fabric_secs - 0.5).abs() < 1e-12);
        assert!(
            (stall.handoff_secs - 0.25).abs() < 1e-12,
            "download + inference"
        );
        assert!((stall.cache_secs - 0.02).abs() < 1e-12);
        assert!(
            (stall.total() - lat.total()).abs() < 1e-12,
            "the six components partition the end-to-end latency"
        );
        let mut agg = StallBreakdown::default();
        agg.accumulate(&stall);
        agg.accumulate(&stall);
        assert!((agg.total() - 2.0 * lat.total()).abs() < 1e-12);
    }

    #[test]
    fn sim_perf_compares_equal_and_guards_zero_wall_time() {
        let fast = SimPerf {
            wall_secs: 0.5,
            events: 1_000,
        };
        let slow = SimPerf {
            wall_secs: 2.0,
            events: 1_000,
        };
        assert!((fast.events_per_sec() - 2_000.0).abs() < 1e-9);
        assert_eq!(
            SimPerf::default().events_per_sec(),
            0.0,
            "no clock, no speed claim"
        );
        // Self-metrics describe the host, not the simulated run: reports
        // differing only in SimPerf must still compare equal.
        assert_eq!(fast, slow);
    }

    #[test]
    fn stage_histograms_split_the_lifecycle() {
        let mut stages = StageHistograms::default();
        stages.record(&RequestLatency {
            upload_secs: 0.010,
            preprocess_secs: 0.040,
            download_secs: 0.002,
            inference_secs: 0.003,
            ..RequestLatency::default()
        });
        assert_eq!(stages.ingest.count(), 1);
        assert!((stages.ingest.mean() - 0.010).abs() < 1e-12);
        assert!((stages.preprocess.mean() - 0.040).abs() < 1e-12);
        assert!((stages.compute.mean() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_is_guarded_and_bounded() {
        let mut report = TrafficReport {
            tenants: Vec::new(),
            duration_secs: 10.0,
            reconfigs: 0,
            reconfig_secs: 0.0,
            queue_depth: DepthTimeline::default(),
            boards: vec![BoardStats::default()],
            stages: StageHistograms::default(),
            overlap_secs: 0.0,
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            wasted_work_bytes: 0,
            wasted_secs: 0.0,
            cache: CacheStats::default(),
            sim: SimPerf::default(),
            trace_digest: 0,
        };
        assert_eq!(report.pipeline_overlap_ratio(), 0.0, "serial: no DMA clock");
        report.boards[0].dma_secs = 4.0;
        report.overlap_secs = 3.0;
        assert!((report.pipeline_overlap_ratio() - 0.75).abs() < 1e-12);
        report.overlap_secs = 100.0;
        assert_eq!(report.pipeline_overlap_ratio(), 1.0, "clamped");
    }

    #[test]
    fn migration_aggregates_sum_across_boards() {
        let mut report = TrafficReport {
            tenants: Vec::new(),
            duration_secs: 10.0,
            reconfigs: 0,
            reconfig_secs: 0.0,
            queue_depth: DepthTimeline::default(),
            boards: vec![BoardStats::default(), BoardStats::default()],
            stages: StageHistograms::default(),
            overlap_secs: 0.0,
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            wasted_work_bytes: 0,
            wasted_secs: 0.0,
            cache: CacheStats::default(),
            sim: SimPerf::default(),
            trace_digest: 0,
        };
        assert_eq!(report.migrations(), 0);
        assert!(!report.to_string().contains("migration:"), "quiet when off");
        report.boards[0].migrations = 2;
        report.boards[0].switch_bytes = 3_000_000_000;
        report.boards[0].host_bytes = 1_000_000_000;
        report.boards[1].migrations = 1;
        report.boards[1].switch_bytes = 1_000_000_000;
        report.boards[1].host_bytes = 500_000_000;
        assert_eq!(report.migrations(), 3);
        assert_eq!(report.switch_bytes(), 4_000_000_000);
        assert_eq!(report.host_upload_bytes(), 1_500_000_000);
        assert_eq!(report.host_bytes_saved(), report.switch_bytes());
        let text = report.to_string();
        assert!(text.contains("migration: 3 peer pulls"), "{text}");
        assert!(text.contains("4.00 GB over the switch"), "{text}");
    }

    #[test]
    fn outcome_counts_partition_arrivals() {
        let mut c = OutcomeCounts::default();
        for outcome in [
            RequestOutcome::Served,
            RequestOutcome::Served,
            RequestOutcome::ServedLate,
            RequestOutcome::ExpiredInQueue,
            RequestOutcome::Aborted,
            RequestOutcome::DroppedAtAdmission,
            RequestOutcome::HedgeLoser,
        ] {
            c.record(outcome);
        }
        assert_eq!(c.served, 2);
        assert_eq!(c.served_late, 1);
        // Hedge losers sit outside the arrival partition.
        assert_eq!(c.arrival_terminal(), 6);
        assert_eq!(c.hedge_loser, 1);
        let mut agg = OutcomeCounts::default();
        agg.accumulate(&c);
        agg.accumulate(&c);
        assert_eq!(agg.arrival_terminal(), 12);
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(RequestOutcome::Served.name(), "served");
        assert_eq!(RequestOutcome::ServedLate.name(), "served_late");
        assert_eq!(RequestOutcome::ExpiredInQueue.name(), "expired_in_queue");
        assert_eq!(RequestOutcome::Aborted.name(), "aborted");
        assert_eq!(RequestOutcome::HedgeLoser.name(), "hedge_loser");
        assert_eq!(
            RequestOutcome::DroppedAtAdmission.name(),
            "dropped_at_admission"
        );
    }

    #[test]
    fn deadline_line_is_silent_without_lifecycle_cuts() {
        let report = TrafficReport {
            tenants: Vec::new(),
            duration_secs: 1.0,
            reconfigs: 0,
            reconfig_secs: 0.0,
            queue_depth: DepthTimeline::default(),
            boards: vec![BoardStats::default()],
            stages: StageHistograms::default(),
            overlap_secs: 0.0,
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            wasted_work_bytes: 0,
            wasted_secs: 0.0,
            cache: CacheStats::default(),
            sim: SimPerf::default(),
            trace_digest: 0,
        };
        assert!(!report.to_string().contains("deadline:"), "quiet when off");
        let mut noisy = report.clone();
        noisy.wasted_work_bytes = 1_000;
        assert!(noisy.to_string().contains("deadline:"));
    }
}

//! Parallel fan-out of independent seeded simulations.
//!
//! Every [`TrafficSim`] run is an independent, seeded, byte-stable
//! computation: it owns its tenants, its board pool and its RNG streams,
//! and shares **no mutable state** with any other run (the `Send` audit
//! below is compile-checked). That makes a batch of runs — a CI sweep, a
//! pool-size × scheduler grid, a multi-seed replay — embarrassingly
//! parallel, and this module is the one place the workspace scatters them
//! across OS threads.
//!
//! # The fixed-order merge contract
//!
//! Parallelism must never show in the artifacts. [`par_map`] hands out
//! jobs from a shared injector (completion order is scheduling noise) but
//! writes each result into the slot of its *input index* and returns the
//! slots in input order — so for any job count, including the `jobs = 1`
//! degenerate case that never spawns a thread, the output `Vec` is
//! element-for-element the serial loop's. Byte-identity of the rendered
//! sweep artifacts across job counts is proptested in
//! `agnn-bench::serving_smoke`.
//!
//! # Self-metrics under contention
//!
//! Each run's [`SimPerf`](crate::metrics::SimPerf) wall clock is measured
//! *inside* [`TrafficSim::run`], on whatever worker thread executes that
//! run, around only that run's event loop — a parallel sweep never bills
//! one run for time spent simulating another. Concurrent runs do still
//! slow each other down through shared cores, caches and SMT siblings,
//! which is (part of) why the CI sim-speed gate compares
//! `sim_events_per_sec` at the deliberately generous
//! `agnn_bench::perfgate::SIM_SPEED_TOLERANCE` instead of the simulated
//! metrics' tolerance.

use crate::metrics::TrafficReport;
use crate::sim::{ServeConfig, TrafficSim};
use crate::tenant::TenantSpec;

/// The default fan-out: every core the OS will give us, `1` when the
/// query fails (serial — always correct, never faster).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Compile-time `Send` audit of everything a worker thread moves or
/// returns: the simulator (tenants + config + board pool), its inputs and
/// its report. A non-`Send` field added anywhere in that object graph
/// (an `Rc`, a raw pointer, a thread-local handle) fails compilation
/// here, not at a distant `par_map` call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TenantSpec>();
    assert_send::<ServeConfig>();
    assert_send::<TrafficSim>();
    assert_send::<TrafficReport>();
};

/// Applies `f` to every item across up to `jobs` worker OS threads and
/// returns the results **in input order** (the fixed-order merge
/// contract — see the [module docs](self)).
///
/// `f` receives `(index, item)` so position-dependent work needs no
/// shared counter. With `jobs <= 1` or fewer than two items the map runs
/// in the calling thread without touching a pool: the serial degenerate
/// case is the identity baseline parallel runs are byte-compared against,
/// not a separate code path to keep honest.
///
/// ```
/// use agnn_serve::par::par_map;
///
/// let squares = par_map(4, (0u64..10).collect(), |_, x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut pool = scoped_threadpool::Pool::new(jobs.min(n) as u32);
    pool.scoped(|scope| {
        for (i, (item, slot)) in items.into_iter().zip(slots.iter_mut()).enumerate() {
            let f = &f;
            scope.execute(move || *slot = Some(f(i, item)));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("pool.scoped joined every job"))
        .collect()
}

/// Runs every `(tenants, config)` simulation across up to `jobs` worker
/// threads and returns the reports in input order. Each run is a fresh
/// [`TrafficSim`] — seeded arrivals, private board pool, no shared
/// mutable state — executed wholly on one worker, so its
/// [`SimPerf`](crate::metrics::SimPerf) wall clock covers exactly that
/// run (see the [module docs](self)).
///
/// `jobs = 1` is the serial schedule bit-for-bit; any other job count
/// produces byte-identical reports (proptested at the sweep level in
/// `agnn-bench`).
///
/// ```
/// use agnn_graph::datasets::Dataset;
/// use agnn_serve::par::par_runs;
/// use agnn_serve::sim::ServeConfig;
/// use agnn_serve::tenant::TenantSpec;
///
/// let case = |seed: u64| {
///     (
///         vec![TenantSpec::new("feed", Dataset::Movie, 20.0)],
///         ServeConfig::builder()
///             .seed(seed)
///             .total_requests(200)
///             .build()
///             .expect("valid config"),
///     )
/// };
/// let reports = par_runs(2, vec![case(1), case(2)]);
/// assert_eq!(reports.len(), 2);
/// assert_ne!(reports[0].trace_digest, reports[1].trace_digest);
/// ```
pub fn par_runs(jobs: usize, runs: Vec<(Vec<TenantSpec>, ServeConfig)>) -> Vec<TrafficReport> {
    par_map(jobs, runs, |_, (tenants, config)| {
        TrafficSim::new(tenants, config).run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::datasets::Dataset;
    use proptest::prelude::*;

    fn case(seed: u64, requests: u64) -> (Vec<TenantSpec>, ServeConfig) {
        (
            vec![
                TenantSpec::new("feed", Dataset::Movie, 30.0),
                TenantSpec::new("search", Dataset::StackOverflow, 30.0),
            ],
            ServeConfig::reconfig_aware()
                .to_builder()
                .seed(seed)
                .total_requests(requests)
                .boards(2)
                .build()
                .expect("valid config"),
        )
    }

    #[test]
    fn par_map_merges_in_input_order_for_every_job_count() {
        let input: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_map(jobs, input.clone(), |_, x| x * 3 + 1),
                expect,
                "jobs={jobs}"
            );
        }
        // The index argument is the input position, not a claim order.
        let indexed = par_map(4, vec!['a', 'b', 'c'], |i, c| (i, c));
        assert_eq!(indexed, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn par_map_handles_empty_and_single_item_batches() {
        assert_eq!(par_map(8, Vec::<u64>::new(), |_, x| x), Vec::<u64>::new());
        assert_eq!(par_map(8, vec![5u64], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_runs_equal_the_serial_loop_report_for_report() {
        let cases: Vec<_> = (0..6).map(|s| case(s, 400)).collect();
        let serial: Vec<TrafficReport> = cases
            .iter()
            .map(|(t, c)| TrafficSim::new(t.clone(), *c).run())
            .collect();
        for jobs in [1, 2, 5] {
            let parallel = par_runs(jobs, cases.clone());
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.trace_digest, s.trace_digest, "jobs={jobs}");
                assert_eq!(p, s, "jobs={jobs}");
                // Full byte identity once the host-wall self-metrics
                // (legitimately different per run) are scrubbed.
                let scrub = |r: &TrafficReport| {
                    let mut r = r.clone();
                    r.sim = Default::default();
                    r.to_json()
                };
                assert_eq!(scrub(p), scrub(s), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn each_run_measures_its_own_wall_clock() {
        for report in par_runs(3, (0..3).map(|s| case(s, 600)).collect()) {
            assert!(report.sim.events > 0);
            assert!(
                report.sim.wall_secs > 0.0,
                "SimPerf is measured inside the worker, around only its run"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The fixed-order merge contract, property-level: any job count
        /// and any batch of seeds produces the serial loop's digests.
        fn par_runs_is_jobs_invariant(jobs in 1usize..=8, seed in 0u64..1000) {
            let cases: Vec<_> = (seed..seed + 3).map(|s| case(s, 150)).collect();
            let serial: Vec<u64> = cases
                .iter()
                .map(|(t, c)| TrafficSim::new(t.clone(), *c).run().trace_digest)
                .collect();
            let parallel: Vec<u64> = par_runs(jobs, cases)
                .iter()
                .map(|r| r.trace_digest)
                .collect();
            prop_assert_eq!(parallel, serial);
        }
    }
}

//! A pool of simulated accelerator boards behind one admission queue.
//!
//! PR 1's `agnn-serve` time-multiplexed a single VPK180, so every shift in
//! the tenant mix forced an ICAP stall. A [`BoardPool`] holds N boards,
//! each with its **own** bitstream state, reconfiguration clock, resident
//! graph memory and — since the staged-lifecycle refactor — **two
//! in-flight slots** mirroring the board's independent resources:
//!
//! - the **DMA slot** (PCIe engine pair): at most one transfer in flight —
//!   a graph-delta ingest or a subgraph hand-off;
//! - the **fabric slot** (UPE + SCR regions): at most one request
//!   preprocessing (reconfiguration stalls are charged here, at fabric
//!   acquisition).
//!
//! A serial scheduler occupies both slots for the whole request
//! ([`BoardPool::occupy`] / [`BoardPool::release`] — exactly the PR 2
//! board, bit-for-bit); a pipelined scheduler drives the slots separately
//! so one request's ingest lands while another computes (the staging depth
//! comes from [`agnn_hw::shell::DELTA_BUFFERS`]: one request may sit
//! ingested-but-waiting per board).
//!
//! Residency is **capacity-bounded**: each board's DRAM holds at most
//! [`AutoGnn::dram_graph_capacity`] bytes of resident graphs (§V-B — the
//! 15 GB left after bitstream staging). When a tenant mix outgrows that,
//! the least-recently-served tenant is evicted and its next request pays a
//! full re-upload — which is exactly the recurring ingest traffic that
//! staged pipelining hides behind fabric compute.
//!
//! The admission queue — owned by the pluggable scheduler
//! ([`crate::sched::SchedPolicy`]), which decides admission, offer order
//! and reconfiguration gating — feeds the pool through a pluggable
//! [`PlacementPolicy`]. Placement scans the scheduler's offer order, so a
//! fair-queueing scheduler's preference arrives here as a hint: the same
//! scan that used to be "earliest arrival first" becomes "most underserved
//! tenant first" without the policies below changing:
//!
//! - [`PlacementPolicy::TenantAffine`] — each tenant has a home board
//!   (pinned, or tenant index hashed over the pool); requests wait for it.
//!   Perfect residency and bitstream locality, but a hot tenant cannot
//!   borrow idle boards.
//! - [`PlacementPolicy::LeastLoaded`] — the free board with the least
//!   accumulated busy time serves next; the board's dispatch policy picks
//!   the request. Best raw utilization, no bitstream locality.
//! - [`PlacementPolicy::BitstreamAffine`] — route a request to a free
//!   board **already holding its optimal bitstream**, falling back to
//!   least-loaded; on a pool this turns most reconfigurations into routing
//!   decisions. With one board it degenerates to PR 1's reconfig-aware
//!   queue scan exactly.
//!
//! A single-board pool in serial mode is bit-for-bit identical to the PR 1
//! simulator (`tests/serve_traffic.rs` pins the PR 1 trace digests), so
//! pool runs stay comparable across the whole perf trajectory — which is
//! what the CI `bench-smoke` gate (see [`crate`] docs) relies on.

use agnn_algo::pipeline::SampleParams;
use agnn_core::runtime::AutoGnn;
use agnn_cost::{BitstreamLibrary, ReconfigPolicy, Workload};
use agnn_devices::ServiceStageSecs;
use agnn_hw::engine::ReconfigEvent;
use agnn_hw::shell::DELTA_BUFFERS;
use agnn_hw::HwConfig;

use crate::engine::Component;
use crate::metrics::BoardStats;

/// Requests a board can hold ingested-but-not-computing: one delta buffer
/// feeds the fabric while the other fills over DMA.
pub const STAGING_DEPTH: u32 = (DELTA_BUFFERS - 1) as u32;

/// How the pool routes an admitted request to a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Requests only run on their tenant's home board
    /// ([`crate::tenant::TenantSpec::home_board`]); they queue while it is
    /// busy even if other boards idle.
    TenantAffine,
    /// The free board with the least accumulated busy time serves next;
    /// the dispatch policy picks which queued request it takes.
    #[default]
    LeastLoaded,
    /// Prefer a free board whose programmed bitstream already matches the
    /// request's cost-model optimum; fall back to least-loaded when no
    /// queued request matches any free board.
    BitstreamAffine,
}

impl PlacementPolicy {
    /// Stable lowercase identifier used in reports and benchmark IDs.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::TenantAffine => "tenant_affine",
            PlacementPolicy::LeastLoaded => "least_loaded",
            PlacementPolicy::BitstreamAffine => "bitstream_affine",
        }
    }
}

/// Whether (and when) a tenant's graph may cross the PCIe switch from a
/// peer board's DRAM instead of re-crossing the host link.
///
/// A migration is an `Ingest` stage whose source is another board: the
/// warm prefix moves board-to-board at switch bandwidth
/// ([`agnn_hw::shell::PcieSwitchModel`]), only growth the peer never saw
/// comes from the host, and the transfer occupies **both** boards' DMA
/// engines (pipelinable behind each fabric like any other ingest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigratePolicy {
    /// No cross-board transfers: every cold ingest re-uploads from the
    /// host and requests wait for their affine board. Reproduces the
    /// pre-migration schedules bit-for-bit.
    #[default]
    Off,
    /// A tenant dispatched to a board where its graph is not resident
    /// pulls it from the peer board holding the largest copy (when that
    /// peer's DMA engine is idle) — DRAM-evicted tenants rehydrate at
    /// switch bandwidth.
    PeerRehydrate,
    /// [`MigratePolicy::PeerRehydrate`], plus proactive splitting: when
    /// every queued request is waiting for a busy affine/home board and
    /// the queue has grown past `queue_threshold`, the front request
    /// claims the least-loaded free board and its tenant's graph migrates
    /// there — a hot tenant splits across boards instead of serializing
    /// on one.
    SplitHot {
        /// Queue depth beyond which waiting-for-affinity gives way to
        /// splitting.
        queue_threshold: usize,
    },
}

impl MigratePolicy {
    /// The splitting preset with an 8-request queue threshold: early
    /// enough that a hot tenant spills before its backlog snowballs, deep
    /// enough that a single slow request does not scatter bitstreams.
    pub fn split_hot() -> Self {
        MigratePolicy::SplitHot { queue_threshold: 8 }
    }

    /// Stable lowercase identifier used in reports and benchmark IDs.
    pub fn name(&self) -> &'static str {
        match self {
            MigratePolicy::Off => "off",
            MigratePolicy::PeerRehydrate => "peer_rehydrate",
            MigratePolicy::SplitHot { .. } => "split_hot",
        }
    }

    /// Whether cold ingests may source from peer boards at all.
    pub fn pulls_from_peers(&self) -> bool {
        !matches!(self, MigratePolicy::Off)
    }

    /// The queue depth that triggers a proactive split, if enabled.
    pub fn split_threshold(&self) -> Option<usize> {
        match *self {
            MigratePolicy::SplitHot { queue_threshold } => Some(queue_threshold),
            _ => None,
        }
    }
}

/// Byte split of one migration ingest: the warm prefix that crossed the
/// PCIe switch and the growth that still came from the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationTransfer {
    /// Bytes pulled from the peer board's DRAM over the switch.
    pub switch_bytes: u64,
    /// Bytes the peer never held, uploaded from the host.
    pub host_bytes: u64,
}

/// Per-tenant residency on one board's DRAM.
#[derive(Debug, Clone, Copy, Default)]
struct Residency {
    /// Graph bytes resident for this tenant.
    bytes: u64,
    /// LRU tick of the tenant's last upload (0 = never touched).
    touched: u64,
}

/// One simulated board: a forked [`AutoGnn`] runtime plus the pool-side
/// serving state the simulator tracks for it.
#[derive(Debug)]
struct Board {
    runtime: AutoGnn,
    /// A PCIe transfer (ingest or hand-off) is in flight.
    dma_busy: bool,
    /// Simulated second the in-flight DMA transfer completes (stale once
    /// `dma_busy` clears; overlap accounting reads it only while busy).
    dma_until: f64,
    /// The fabric is preprocessing (or reprogramming).
    fabric_busy: bool,
    /// Simulated second the fabric frees (stale once `fabric_busy`
    /// clears).
    fabric_until: f64,
    /// Ingested requests waiting for the fabric, bounded by
    /// [`STAGING_DEPTH`] (the delta buffers not currently being filled).
    staged: u32,
    /// Subgraph hand-offs waiting for the DMA engine.
    pending_handoffs: u32,
    /// Fabric occupancy (reconfig + preprocess; in serial mode the whole
    /// request interval, as in PR 2).
    busy_secs: f64,
    /// DMA-engine occupancy (pipelined mode only; serial folds transfers
    /// into `busy_secs`).
    dma_secs: f64,
    completed: u64,
    reconfigs: u64,
    reconfig_secs: f64,
    /// Tenants evicted from this board's DRAM to make room.
    evictions: u64,
    /// Requests this board served by pulling the graph from a peer board.
    migrations: u64,
    /// Bytes this board pulled in over the PCIe switch.
    switch_bytes: u64,
    /// Bytes this board ingested from the host.
    host_bytes: u64,
    /// Graph bytes resident on this board, per tenant — each board has its
    /// own DDR, so residency (and therefore upload deltas) is per board.
    /// Invariant: a slot is either `Residency::default()` (not resident)
    /// or has `bytes > 0` — [`BoardPool::resident_boards`] relies on it.
    resident: Vec<Residency>,
    resident_total: u64,
    lru_clock: u64,
}

impl Board {
    fn new(runtime: AutoGnn, tenant_count: usize) -> Self {
        Board {
            runtime,
            dma_busy: false,
            dma_until: 0.0,
            fabric_busy: false,
            fabric_until: 0.0,
            staged: 0,
            pending_handoffs: 0,
            busy_secs: 0.0,
            dma_secs: 0.0,
            completed: 0,
            reconfigs: 0,
            reconfig_secs: 0.0,
            evictions: 0,
            migrations: 0,
            switch_bytes: 0,
            host_bytes: 0,
            resident: vec![Residency::default(); tenant_count],
            resident_total: 0,
            lru_clock: 0,
        }
    }

    /// Whether the board can accept a new request's ingest: DMA engine
    /// idle, a staging buffer free, and no subgraph hand-off queued for
    /// the engine. In serial mode `staged`/`pending_handoffs` never set,
    /// so this is exactly the PR 2 single-slot "free" predicate.
    fn can_accept(&self) -> bool {
        !self.dma_busy && self.staged < STAGING_DEPTH && self.pending_handoffs == 0
    }

    /// Removes `tenant` from this board's DRAM entirely, returning the
    /// bytes freed. The slot goes back to `Residency::default()` — bytes
    /// *and* LRU stamp — so residency bookkeeping stays exact: a tenant
    /// evicted from its only resident board no longer appears anywhere.
    fn evict_tenant(&mut self, tenant: usize) -> u64 {
        let freed = self.resident[tenant].bytes;
        self.resident_total -= freed;
        self.resident[tenant] = Residency::default();
        freed
    }

    /// Sets `tenant`'s resident graph to `coo_bytes`, evicting the
    /// least-recently-served *other* tenants until it fits under
    /// `capacity`. Returns the growth delta (bytes not yet resident).
    fn place_resident(&mut self, tenant: usize, coo_bytes: u64, capacity: u64) -> u64 {
        self.lru_clock += 1;
        let slot = &mut self.resident[tenant];
        let delta = coo_bytes.saturating_sub(slot.bytes);
        // Residency tracks the current graph size exactly (a shrinking
        // graph releases DRAM, as in PR 2); only growth crosses a link.
        self.resident_total = self.resident_total - slot.bytes + coo_bytes;
        if coo_bytes == 0 {
            // A graph shrunk to nothing is *not resident*: clearing the
            // LRU stamp too keeps `resident_boards` exact (a stale stamp
            // used to keep the tenant visible in residency bookkeeping).
            *slot = Residency::default();
        } else {
            slot.bytes = coo_bytes;
            slot.touched = self.lru_clock;
        }
        while self.resident_total > capacity {
            let victim = self
                .resident
                .iter()
                .enumerate()
                .filter(|(t, r)| *t != tenant && r.bytes > 0)
                .min_by_key(|(_, r)| r.touched)
                .map(|(t, _)| t);
            let Some(victim) = victim else {
                // Only the uploading tenant is resident; an oversized
                // single graph is the shell's capacity panic, not ours.
                break;
            };
            self.evict_tenant(victim);
            self.evictions += 1;
        }
        delta
    }
}

/// N simulated boards with independent bitstream state, fed by one
/// admission queue.
#[derive(Debug)]
pub struct BoardPool {
    boards: Vec<Board>,
    tenant_count: usize,
    /// Per-board DRAM budget for resident graphs.
    graph_capacity: u64,
}

impl BoardPool {
    /// A pool of `size` pristine boards serving `tenant_count` tenants,
    /// all running `params` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(
        size: usize,
        params: SampleParams,
        policy: ReconfigPolicy,
        tenant_count: usize,
    ) -> Self {
        assert!(size > 0, "pool must hold at least one board");
        let prototype = AutoGnn::with_policy(params, policy);
        let graph_capacity = prototype.dram_graph_capacity();
        let mut boards = Vec::with_capacity(size);
        for _ in 1..size {
            boards.push(Board::new(prototype.fork(), tenant_count));
        }
        boards.push(Board::new(prototype, tenant_count));
        BoardPool {
            boards,
            tenant_count,
            graph_capacity,
        }
    }

    /// Number of boards.
    pub fn size(&self) -> usize {
        self.boards.len()
    }

    /// Restores every board to factory state (fresh bitstream, empty
    /// memory, zeroed counters) so one pool replays many simulations.
    pub fn reset(&mut self) {
        for board in &mut self.boards {
            *board = Board::new(board.runtime.fork(), self.tenant_count);
        }
    }

    /// The bitstream library the cost model searches — identical on every
    /// board, so bitstream-choice caches can be shared pool-wide.
    pub fn library(&self) -> &BitstreamLibrary {
        self.boards[0].runtime.library()
    }

    /// The reconfiguration policy in force (same on every board).
    pub fn policy(&self) -> ReconfigPolicy {
        self.boards[0].runtime.policy()
    }

    /// The PCIe link model of the boards' shells (identical on every
    /// board) — per-stage transfer pricing routes through it.
    pub fn pcie(&self) -> agnn_hw::shell::PcieModel {
        self.boards[0].runtime.pcie()
    }

    /// The configuration currently programmed on board `index`.
    pub fn config(&self, index: usize) -> HwConfig {
        self.boards[index].runtime.config()
    }

    /// Whether board `index` can admit a new request (see
    /// `Board::can_accept`); in serial mode this is exactly "not busy".
    pub fn is_free(&self, index: usize) -> bool {
        self.boards[index].can_accept()
    }

    /// True when at least one board can admit a request.
    pub fn any_free(&self) -> bool {
        self.boards.iter().any(Board::can_accept)
    }

    /// Indices of admission-ready boards, in board order.
    pub fn free_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.boards
            .iter()
            .enumerate()
            .filter(|(_, b)| b.can_accept())
            .map(|(i, _)| i)
    }

    /// The admission-ready board with the least accumulated busy time
    /// (ties broken by the lowest index), or `None` when every board is
    /// busy.
    pub fn least_loaded_free(&self) -> Option<usize> {
        self.free_indices().min_by(|&a, &b| {
            self.boards[a]
                .busy_secs
                .total_cmp(&self.boards[b].busy_secs)
        })
    }

    /// The first admission-ready board already programmed with `config`.
    pub fn free_with_config(&self, config: HwConfig) -> Option<usize> {
        self.free_indices().find(|&i| self.config(i) == config)
    }

    /// True when any board — busy or free — is programmed with `config`.
    /// `BitstreamAffine` placement uses this to wait for a busy board
    /// holding the right bitstream instead of reprogramming another one.
    pub fn any_with_config(&self, config: HwConfig) -> bool {
        (0..self.boards.len()).any(|i| self.config(i) == config)
    }

    /// Reprograms board `index` if `best` differs from its current
    /// bitstream and the board's policy clears the gain threshold; returns
    /// the stall seconds charged, or `None` when no switch happens.
    pub fn maybe_reconfigure(
        &mut self,
        index: usize,
        workload: &Workload,
        best: HwConfig,
    ) -> Option<f64> {
        let board = &self.boards[index];
        let current = board.runtime.config();
        if best == current
            || !board
                .runtime
                .policy()
                .should_reconfigure(workload, current, best)
        {
            return None;
        }
        Some(self.apply_reconfigure(index, best))
    }

    /// Reprograms board `index` to `best` unconditionally and charges the
    /// board's reconfiguration counters, returning the stall seconds. The
    /// decision half of [`BoardPool::maybe_reconfigure`] lives with the
    /// caller — the simulator routes it through a memo of
    /// [`ReconfigPolicy::should_reconfigure`] verdicts (pure in workload
    /// and the config pair) so repeated dispatches of one drift bucket
    /// skip the cost-model estimates.
    pub fn apply_reconfigure(&mut self, index: usize, best: HwConfig) -> f64 {
        let board = &mut self.boards[index];
        let ReconfigEvent { seconds, .. } = board.runtime.force_reconfigure(best);
        board.reconfigs += 1;
        board.reconfig_secs += seconds;
        seconds
    }

    /// Analytic preprocessing seconds for `workload` under board `index`'s
    /// current configuration.
    pub fn stage_secs(&self, index: usize, workload: &Workload) -> f64 {
        self.boards[index]
            .runtime
            .analytic_stage_secs(workload)
            .total()
    }

    /// Analytic per-lifecycle-stage seconds for `workload` on board
    /// `index` with `delta_bytes` still to upload — the staged price the
    /// simulator schedules against the board's DMA and fabric slots.
    pub fn service_secs(
        &self,
        index: usize,
        workload: &Workload,
        delta_bytes: u64,
    ) -> ServiceStageSecs {
        self.boards[index]
            .runtime
            .analytic_service_secs(workload, delta_bytes)
    }

    /// Updates tenant residency on board `index` to `coo_bytes` and
    /// returns the upload delta (0 when the graph is already resident).
    ///
    /// Residency is bounded by the board's DRAM graph capacity: when the
    /// upload would overflow it, the least-recently-served *other* tenants
    /// are evicted (deterministically, oldest upload first) until the
    /// graph fits — their next request pays a full cold re-upload.
    pub fn upload_delta(&mut self, index: usize, tenant: usize, coo_bytes: u64) -> u64 {
        let capacity = self.graph_capacity;
        let board = &mut self.boards[index];
        let delta = board.place_resident(tenant, coo_bytes, capacity);
        board.host_bytes += delta;
        delta
    }

    /// Ingests `tenant`'s graph onto board `dest` **from board `source`'s
    /// DRAM**: the warm prefix the peer holds crosses the PCIe switch,
    /// only growth the peer never saw comes from the host, and `dest`'s
    /// residency is updated exactly as a host upload would (same LRU
    /// eviction under the DRAM budget). The source keeps its copy — a
    /// migration is a read, so a hot tenant can split across boards.
    ///
    /// Callers price the returned byte split on both boards' DMA engines
    /// and must hold `source`'s engine for the switch leg.
    pub fn migrate_ingest(
        &mut self,
        dest: usize,
        source: usize,
        tenant: usize,
        coo_bytes: u64,
    ) -> MigrationTransfer {
        debug_assert_ne!(dest, source, "a board cannot migrate from itself");
        let peer_bytes = self.boards[source].resident[tenant].bytes;
        debug_assert!(peer_bytes > 0, "migration source holds no copy");
        let dest_bytes = self.boards[dest].resident[tenant].bytes;
        let (switch_bytes, host_bytes) =
            agnn_hw::shell::peer_transfer_split(coo_bytes, peer_bytes, dest_bytes);
        let capacity = self.graph_capacity;
        let board = &mut self.boards[dest];
        board.place_resident(tenant, coo_bytes, capacity);
        board.migrations += 1;
        board.switch_bytes += switch_bytes;
        board.host_bytes += host_bytes;
        MigrationTransfer {
            switch_bytes,
            host_bytes,
        }
    }

    /// Graph bytes board `index` holds for `tenant` (0 = not resident).
    pub fn resident_bytes(&self, index: usize, tenant: usize) -> u64 {
        self.boards[index].resident[tenant].bytes
    }

    /// Total graph bytes resident in board `index`'s DRAM across all
    /// tenants — the trace residency counter samples this at dispatch.
    pub fn resident_total_bytes(&self, index: usize) -> u64 {
        self.boards[index].resident_total
    }

    /// Boards whose DRAM still holds a copy of `tenant`'s graph, in board
    /// order. Exact: a tenant evicted from (or shrunk to nothing on) its
    /// only resident board appears nowhere.
    pub fn resident_boards(&self, tenant: usize) -> impl Iterator<Item = usize> + '_ {
        self.boards
            .iter()
            .enumerate()
            .filter(move |(_, b)| b.resident[tenant].bytes > 0)
            .map(|(i, _)| i)
    }

    /// The best migration source for `tenant` onto board `dest`: among
    /// peers holding a copy **whose DMA engine is idle** (the switch leg
    /// occupies it), the one with the most resident bytes, ties broken by
    /// the lowest index. `None` when no usable peer exists.
    pub fn peer_source(&self, tenant: usize, dest: usize) -> Option<usize> {
        self.boards
            .iter()
            .enumerate()
            .filter(|(i, b)| *i != dest && !b.dma_busy && b.resident[tenant].bytes > 0)
            .max_by(|(ai, a), (bi, b)| {
                a.resident[tenant]
                    .bytes
                    .cmp(&b.resident[tenant].bytes)
                    .then(bi.cmp(ai))
            })
            .map(|(i, _)| i)
    }

    /// The PCIe switch model connecting the boards (identical on every
    /// board's shell) — migration transfer pricing routes through it.
    pub fn switch(&self) -> agnn_hw::shell::PcieSwitchModel {
        self.boards[0].runtime.pcie_switch()
    }

    /// Marks board `index` fully busy until `done` — the **serial** path:
    /// both slots held for the whole request, exactly the PR 2 board.
    pub fn occupy(&mut self, index: usize, now: f64, done: f64) {
        let board = &mut self.boards[index];
        debug_assert!(!board.dma_busy, "board {index} double-dispatched");
        board.dma_busy = true;
        board.fabric_busy = true;
        // Record the horizons too so the [`Component`] view of the board
        // (`next_tick`) is meaningful in serial mode as well; serial
        // overlap accounting never reads them.
        board.dma_until = done;
        board.fabric_until = done;
        board.busy_secs += (done - now).max(0.0);
    }

    /// Marks board `index` fully free again (serial service completion).
    pub fn release(&mut self, index: usize) {
        let board = &mut self.boards[index];
        debug_assert!(board.dma_busy, "board {index} released while idle");
        board.dma_busy = false;
        board.fabric_busy = false;
        board.completed += 1;
    }

    /// Occupies board `index`'s DMA engine until `done` (pipelined ingest
    /// or subgraph hand-off).
    pub fn occupy_dma(&mut self, index: usize, now: f64, done: f64) {
        let board = &mut self.boards[index];
        debug_assert!(!board.dma_busy, "board {index} DMA double-booked");
        board.dma_busy = true;
        board.dma_until = done;
        board.dma_secs += (done - now).max(0.0);
    }

    /// Frees board `index`'s DMA engine.
    pub fn release_dma(&mut self, index: usize) {
        debug_assert!(self.boards[index].dma_busy);
        self.boards[index].dma_busy = false;
    }

    /// Whether board `index`'s DMA engine is idle.
    pub fn dma_free(&self, index: usize) -> bool {
        !self.boards[index].dma_busy
    }

    /// When board `index`'s in-flight DMA transfer completes (meaningful
    /// only while the engine is busy).
    pub fn dma_until(&self, index: usize) -> f64 {
        self.boards[index].dma_until
    }

    /// Occupies board `index`'s fabric until `done` (reconfiguration stall
    /// + preprocessing).
    pub fn occupy_fabric(&mut self, index: usize, now: f64, done: f64) {
        let board = &mut self.boards[index];
        debug_assert!(!board.fabric_busy, "board {index} fabric double-booked");
        board.fabric_busy = true;
        board.fabric_until = done;
        board.busy_secs += (done - now).max(0.0);
    }

    /// Frees board `index`'s fabric.
    pub fn release_fabric(&mut self, index: usize) {
        debug_assert!(self.boards[index].fabric_busy);
        self.boards[index].fabric_busy = false;
    }

    /// Whether board `index`'s fabric is idle.
    pub fn fabric_free(&self, index: usize) -> bool {
        !self.boards[index].fabric_busy
    }

    /// When board `index`'s fabric frees (meaningful only while busy).
    pub fn fabric_until(&self, index: usize) -> f64 {
        self.boards[index].fabric_until
    }

    /// Parks an ingested request in one of board `index`'s staging
    /// buffers (it waits there for the fabric; admission stops once all
    /// [`STAGING_DEPTH`] buffers hold a request).
    pub fn stage(&mut self, index: usize) {
        let board = &mut self.boards[index];
        debug_assert!(board.staged < STAGING_DEPTH, "staging buffer overrun");
        board.staged += 1;
    }

    /// Releases one of board `index`'s staging buffers (a staged request
    /// acquired the fabric).
    pub fn unstage(&mut self, index: usize) {
        debug_assert!(self.boards[index].staged > 0);
        self.boards[index].staged -= 1;
    }

    /// Adjusts the count of subgraph hand-offs waiting for board
    /// `index`'s DMA engine (they outrank new ingests).
    pub fn add_pending_handoffs(&mut self, index: usize, delta: i32) {
        let board = &mut self.boards[index];
        board.pending_handoffs = board
            .pending_handoffs
            .checked_add_signed(delta)
            .expect("pending hand-off count underflow");
    }

    /// Counts one completed request on board `index` (pipelined mode; the
    /// serial path counts inside [`BoardPool::release`]).
    pub fn complete(&mut self, index: usize) {
        self.boards[index].completed += 1;
    }

    /// Per-board statistics snapshot, in board order.
    pub fn stats(&self) -> Vec<BoardStats> {
        self.boards
            .iter()
            .map(|b| BoardStats {
                completed: b.completed,
                reconfigs: b.reconfigs,
                reconfig_secs: b.reconfig_secs,
                busy_secs: b.busy_secs,
                dma_secs: b.dma_secs,
                evictions: b.evictions,
                migrations: b.migrations,
                switch_bytes: b.switch_bytes,
                host_bytes: b.host_bytes,
            })
            .collect()
    }
}

impl Component for Board {
    /// The earliest simulated second one of the board's engines frees:
    /// the in-flight DMA transfer or the fabric pass, whichever completes
    /// first. `None` while both engines are idle (their `*_until` fields
    /// are stale then and must not be read).
    fn next_tick(&self) -> Option<f64> {
        let dma = self.dma_busy.then_some(self.dma_until);
        let fabric = self.fabric_busy.then_some(self.fabric_until);
        match (dma, fabric) {
            (Some(d), Some(f)) => Some(d.min(f)),
            (dma, fabric) => dma.or(fabric),
        }
    }

    /// Boards mutate on explicit completion events
    /// ([`BoardPool::release_dma`] / [`BoardPool::release_fabric`] carry
    /// the semantics), so the component clock only checks that time never
    /// runs past an engine horizon without its completion having fired.
    fn tick(&mut self, now: f64) {
        debug_assert!(
            self.next_tick().is_none_or(|t| now <= t),
            "board ticked to {now} past an engine horizon"
        );
        let _ = now;
    }
}

impl Component for BoardPool {
    /// The earliest engine horizon across the pool — what a conservative
    /// event core would use as its next synchronization point.
    fn next_tick(&self) -> Option<f64> {
        self.boards
            .iter()
            .filter_map(|b| b.next_tick())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Forwards the clock to every board (each validates its own
    /// horizon).
    fn tick(&mut self, now: f64) {
        for board in &mut self.boards {
            board.tick(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(size: usize) -> BoardPool {
        BoardPool::new(size, SampleParams::new(10, 2), ReconfigPolicy::default(), 3)
    }

    /// The [`Component`] view: `next_tick` is the earliest busy-engine
    /// horizon (DMA or fabric, pool-wide the min over boards), `None`
    /// when everything idles, and `tick` observes without mutating.
    #[test]
    fn component_next_tick_tracks_the_earliest_engine_horizon() {
        let mut pool = pool(2);
        assert_eq!(pool.next_tick(), None, "idle pool has no horizon");

        pool.occupy_dma(0, 0.0, 5.0);
        assert_eq!(pool.next_tick(), Some(5.0));
        pool.occupy_fabric(0, 0.0, 3.0);
        assert_eq!(pool.next_tick(), Some(3.0), "fabric frees first");
        pool.occupy_dma(1, 0.0, 2.0);
        assert_eq!(pool.next_tick(), Some(2.0), "pool min spans boards");

        pool.tick(2.0); // At a horizon is fine; past one would assert.
        pool.release_dma(1);
        assert_eq!(pool.next_tick(), Some(3.0));
        pool.release_fabric(0);
        assert_eq!(pool.next_tick(), Some(5.0));
        pool.release_dma(0);
        assert_eq!(pool.next_tick(), None);

        // The serial path records horizons too.
        pool.occupy(0, 1.0, 4.0);
        assert_eq!(pool.next_tick(), Some(4.0));
        pool.release(0);
        assert_eq!(pool.next_tick(), None);
    }

    #[test]
    fn boards_start_free_and_identically_configured() {
        let pool = pool(4);
        assert_eq!(pool.size(), 4);
        assert!(pool.any_free());
        assert_eq!(pool.free_indices().count(), 4);
        for i in 1..4 {
            assert_eq!(pool.config(i), pool.config(0));
        }
    }

    #[test]
    fn least_loaded_breaks_ties_by_index_and_tracks_busy_time() {
        let mut pool = pool(3);
        assert_eq!(pool.least_loaded_free(), Some(0));
        pool.occupy(0, 0.0, 10.0);
        assert_eq!(pool.least_loaded_free(), Some(1));
        pool.release(0);
        // Board 0 now carries 10 busy seconds; 1 and 2 are still at zero.
        assert_eq!(pool.least_loaded_free(), Some(1));
        pool.occupy(1, 0.0, 1.0);
        pool.occupy(2, 0.0, 1.0);
        pool.release(1);
        pool.release(2);
        assert_eq!(pool.least_loaded_free(), Some(1), "1 < 10 busy secs");
    }

    #[test]
    fn residency_is_per_board() {
        let mut pool = pool(2);
        assert_eq!(pool.upload_delta(0, 1, 1_000), 1_000, "cold on board 0");
        assert_eq!(pool.upload_delta(0, 1, 1_000), 0, "resident on board 0");
        assert_eq!(pool.upload_delta(1, 1, 1_000), 1_000, "cold on board 1");
        assert_eq!(pool.upload_delta(0, 1, 1_500), 500, "delta only");
    }

    #[test]
    fn reset_restores_factory_state() {
        let mut pool = pool(2);
        pool.occupy(0, 0.0, 5.0);
        pool.release(0);
        pool.upload_delta(1, 0, 2_000);
        pool.reset();
        assert_eq!(pool.stats()[0].completed, 0);
        assert_eq!(pool.stats()[0].busy_secs, 0.0);
        assert_eq!(pool.upload_delta(1, 0, 2_000), 2_000, "memory evicted");
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        pool(0);
    }

    #[test]
    fn placement_policy_names_are_stable() {
        assert_eq!(PlacementPolicy::TenantAffine.name(), "tenant_affine");
        assert_eq!(PlacementPolicy::LeastLoaded.name(), "least_loaded");
        assert_eq!(PlacementPolicy::BitstreamAffine.name(), "bitstream_affine");
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::LeastLoaded);
    }

    #[test]
    fn dma_and_fabric_slots_are_independent() {
        let mut pool = pool(1);
        pool.occupy_dma(0, 0.0, 1.0);
        assert!(!pool.is_free(0), "DMA in flight blocks admission");
        assert!(pool.fabric_free(0), "fabric still idle");
        pool.release_dma(0);
        pool.occupy_fabric(0, 1.0, 3.0);
        assert!(pool.is_free(0), "fabric compute does not block ingest");
        assert!(pool.dma_free(0));
        pool.occupy_dma(0, 1.0, 2.0);
        assert!(!pool.is_free(0));
        pool.release_dma(0);
        pool.stage(0);
        assert!(!pool.is_free(0), "staging buffer full blocks admission");
        pool.unstage(0);
        pool.release_fabric(0);
        assert!(pool.is_free(0));
        let stats = pool.stats();
        assert_eq!(stats[0].dma_secs, 2.0, "uploads charged to the DMA clock");
        assert_eq!(stats[0].busy_secs, 2.0, "fabric interval charged");
    }

    #[test]
    fn pending_handoffs_block_admission() {
        let mut pool = pool(1);
        pool.add_pending_handoffs(0, 1);
        assert!(!pool.is_free(0), "queued hand-off owns the DMA engine next");
        pool.add_pending_handoffs(0, -1);
        assert!(pool.is_free(0));
    }

    #[test]
    fn residency_is_capacity_bounded_with_lru_eviction() {
        let mut pool = BoardPool::new(
            1,
            SampleParams::new(10, 2),
            ReconfigPolicy::default(),
            4, // tenants
        );
        let cap = pool.graph_capacity;
        let third = cap / 3;
        assert_eq!(pool.upload_delta(0, 0, third), third);
        assert_eq!(pool.upload_delta(0, 1, third), third);
        assert_eq!(pool.upload_delta(0, 2, third), third);
        // A fourth tenant overflows: tenant 0 (least recently served) is
        // evicted to make room.
        assert_eq!(pool.upload_delta(0, 3, third), third);
        assert_eq!(pool.stats()[0].evictions, 1);
        assert_eq!(
            pool.upload_delta(0, 0, third),
            third,
            "evicted tenant pays a full cold re-upload"
        );
        // ... which in turn evicted tenant 1, the next-oldest.
        assert_eq!(pool.stats()[0].evictions, 2);
        assert_eq!(pool.upload_delta(0, 2, third), 0, "tenant 2 still warm");
    }

    #[test]
    fn shrinking_graphs_release_dram() {
        let mut pool = BoardPool::new(
            1,
            SampleParams::new(10, 2),
            ReconfigPolicy::default(),
            2, // tenants
        );
        let cap = pool.graph_capacity;
        assert_eq!(pool.upload_delta(0, 0, cap), cap);
        // Tenant 0 shrinks to a quarter: nothing crosses PCIe, but the
        // freed DRAM lets tenant 1 become resident without any eviction.
        assert_eq!(pool.upload_delta(0, 0, cap / 4), 0);
        assert_eq!(pool.upload_delta(0, 1, cap / 2), cap / 2);
        assert_eq!(pool.stats()[0].evictions, 0);
        assert_eq!(pool.upload_delta(0, 0, cap / 4), 0, "still resident");
    }

    #[test]
    fn small_working_sets_never_evict() {
        let mut pool = pool(1);
        for round in 0..10 {
            for tenant in 0..3 {
                pool.upload_delta(0, tenant, 1_000_000 + round * 1_000);
            }
        }
        assert_eq!(pool.stats()[0].evictions, 0);
    }

    /// Regression (satellite fix): residency bookkeeping must be exact on
    /// *every* path — LRU eviction, a graph shrinking to nothing, and
    /// reset. A tenant evicted from its only resident board must appear
    /// on no board at all.
    #[test]
    fn resident_boards_is_exact_across_eviction_paths() {
        let mut pool = BoardPool::new(2, SampleParams::new(10, 2), ReconfigPolicy::default(), 3);
        let third = pool.graph_capacity / 3;
        assert_eq!(pool.resident_boards(0).count(), 0, "pristine pool");

        pool.upload_delta(0, 0, third);
        pool.upload_delta(1, 0, third);
        assert_eq!(pool.resident_boards(0).collect::<Vec<_>>(), vec![0, 1]);

        // LRU pressure on board 0 evicts tenant 0 there; board 1's copy
        // survives, so the tenant is resident on exactly one board.
        pool.upload_delta(0, 1, third);
        pool.upload_delta(0, 2, third * 2);
        assert_eq!(pool.stats()[0].evictions, 1);
        assert_eq!(pool.resident_boards(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(pool.resident_bytes(0, 0), 0);

        // The shrink-to-zero path: a zero-byte graph is *not* resident
        // (the stale-LRU-stamp path that used to keep it visible).
        pool.upload_delta(1, 0, 0);
        assert_eq!(
            pool.resident_boards(0).count(),
            0,
            "evicted from its only resident board, the tenant must vanish"
        );
        assert_eq!(pool.upload_delta(1, 0, third), third, "cold re-upload");

        pool.reset();
        for tenant in 0..3 {
            assert_eq!(pool.resident_boards(tenant).count(), 0);
        }
    }

    #[test]
    fn migrate_ingest_splits_bytes_and_keeps_the_source_copy() {
        let mut pool = BoardPool::new(3, SampleParams::new(10, 2), ReconfigPolicy::default(), 2);
        pool.upload_delta(0, 0, 1_000_000);
        assert_eq!(pool.peer_source(0, 1), Some(0));

        // The graph grew to 1.2 MB since board 0 ingested it: the warm
        // 1 MB crosses the switch, only the growth hits the host.
        let transfer = pool.migrate_ingest(1, 0, 0, 1_200_000);
        assert_eq!(
            transfer,
            MigrationTransfer {
                switch_bytes: 1_000_000,
                host_bytes: 200_000,
            }
        );
        assert_eq!(pool.resident_bytes(1, 0), 1_200_000, "dest fully warm");
        assert_eq!(
            pool.resident_bytes(0, 0),
            1_000_000,
            "source keeps its copy"
        );
        assert_eq!(pool.resident_boards(0).collect::<Vec<_>>(), vec![0, 1]);

        let stats = pool.stats();
        assert_eq!(stats[1].migrations, 1);
        assert_eq!(stats[1].switch_bytes, 1_000_000);
        assert_eq!(stats[1].host_bytes, 200_000);
        assert_eq!(stats[0].migrations, 0, "source-side counters untouched");

        // The bigger copy wins the source election; a busy DMA disqualifies.
        assert_eq!(pool.peer_source(0, 2), Some(1), "largest copy preferred");
        pool.occupy_dma(1, 0.0, 1.0);
        assert_eq!(pool.peer_source(0, 2), Some(0), "busy DMA disqualifies");
        pool.occupy_dma(0, 0.0, 1.0);
        assert_eq!(pool.peer_source(0, 2), None, "no idle peer, no source");
    }

    #[test]
    fn migrate_policy_names_and_presets_are_stable() {
        assert_eq!(MigratePolicy::default(), MigratePolicy::Off);
        assert_eq!(MigratePolicy::Off.name(), "off");
        assert_eq!(MigratePolicy::PeerRehydrate.name(), "peer_rehydrate");
        assert_eq!(MigratePolicy::split_hot().name(), "split_hot");
        assert!(!MigratePolicy::Off.pulls_from_peers());
        assert!(MigratePolicy::PeerRehydrate.pulls_from_peers());
        assert_eq!(MigratePolicy::Off.split_threshold(), None);
        assert_eq!(MigratePolicy::PeerRehydrate.split_threshold(), None);
        assert_eq!(MigratePolicy::split_hot().split_threshold(), Some(8));
    }

    #[test]
    fn host_bytes_accumulate_on_the_host_path_only() {
        let mut pool = pool(2);
        pool.upload_delta(0, 0, 500_000);
        pool.upload_delta(0, 0, 600_000); // +100k delta
        assert_eq!(pool.stats()[0].host_bytes, 600_000);
        assert_eq!(pool.stats()[0].switch_bytes, 0);
        let transfer = pool.migrate_ingest(1, 0, 0, 600_000);
        assert_eq!(transfer.host_bytes, 0, "peer holds the whole graph");
        assert_eq!(pool.stats()[1].host_bytes, 0);
        assert_eq!(pool.stats()[1].switch_bytes, 600_000);
        assert!(pool.switch().bandwidth > pool.pcie().bandwidth);
    }
}

//! A pool of simulated accelerator boards behind one admission queue.
//!
//! PR 1's `agnn-serve` time-multiplexed a single VPK180, so every shift in
//! the tenant mix forced an ICAP stall. A [`BoardPool`] holds N boards,
//! each with its **own** bitstream state, reconfiguration clock, in-flight
//! slot and resident-graph memory — each board forks its own
//! [`AutoGnn`] runtime, so every board is an independent cost-model
//! decision point. The shared admission queue feeds the pool through a
//! pluggable [`PlacementPolicy`]:
//!
//! - [`PlacementPolicy::TenantAffine`] — each tenant has a home board
//!   (pinned, or tenant index hashed over the pool); requests wait for it.
//!   Perfect residency and bitstream locality, but a hot tenant cannot
//!   borrow idle boards.
//! - [`PlacementPolicy::LeastLoaded`] — the free board with the least
//!   accumulated busy time serves next; the board's dispatch policy picks
//!   the request. Best raw utilization, no bitstream locality.
//! - [`PlacementPolicy::BitstreamAffine`] — route a request to a free
//!   board **already holding its optimal bitstream**, falling back to
//!   least-loaded; on a pool this turns most reconfigurations into routing
//!   decisions. With one board it degenerates to PR 1's reconfig-aware
//!   queue scan exactly.
//!
//! A single-board pool is bit-for-bit identical to the PR 1 simulator
//! (`tests/serve_traffic.rs` pins the PR 1 trace digests), so pool runs
//! stay comparable across the whole perf trajectory — which is what the
//! CI `bench-smoke` gate (see [`crate`] docs) relies on.

use agnn_algo::pipeline::SampleParams;
use agnn_core::runtime::AutoGnn;
use agnn_cost::{BitstreamLibrary, ReconfigPolicy, Workload};
use agnn_hw::engine::ReconfigEvent;
use agnn_hw::HwConfig;

use crate::metrics::BoardStats;

/// How the pool routes an admitted request to a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Requests only run on their tenant's home board
    /// ([`crate::tenant::TenantSpec::home_board`]); they queue while it is
    /// busy even if other boards idle.
    TenantAffine,
    /// The free board with the least accumulated busy time serves next;
    /// the dispatch policy picks which queued request it takes.
    #[default]
    LeastLoaded,
    /// Prefer a free board whose programmed bitstream already matches the
    /// request's cost-model optimum; fall back to least-loaded when no
    /// queued request matches any free board.
    BitstreamAffine,
}

impl PlacementPolicy {
    /// Stable lowercase identifier used in reports and benchmark IDs.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::TenantAffine => "tenant_affine",
            PlacementPolicy::LeastLoaded => "least_loaded",
            PlacementPolicy::BitstreamAffine => "bitstream_affine",
        }
    }
}

/// One simulated board: a forked [`AutoGnn`] runtime plus the pool-side
/// serving state the simulator tracks for it.
#[derive(Debug)]
struct Board {
    runtime: AutoGnn,
    busy: bool,
    busy_secs: f64,
    completed: u64,
    reconfigs: u64,
    reconfig_secs: f64,
    /// Graph bytes resident on this board, per tenant — each board has its
    /// own DDR, so residency (and therefore upload deltas) is per board.
    resident_bytes: Vec<u64>,
}

impl Board {
    fn new(runtime: AutoGnn, tenant_count: usize) -> Self {
        Board {
            runtime,
            busy: false,
            busy_secs: 0.0,
            completed: 0,
            reconfigs: 0,
            reconfig_secs: 0.0,
            resident_bytes: vec![0; tenant_count],
        }
    }
}

/// N simulated boards with independent bitstream state, fed by one
/// admission queue.
#[derive(Debug)]
pub struct BoardPool {
    boards: Vec<Board>,
    tenant_count: usize,
}

impl BoardPool {
    /// A pool of `size` pristine boards serving `tenant_count` tenants,
    /// all running `params` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(
        size: usize,
        params: SampleParams,
        policy: ReconfigPolicy,
        tenant_count: usize,
    ) -> Self {
        assert!(size > 0, "pool must hold at least one board");
        let prototype = AutoGnn::with_policy(params, policy);
        let mut boards = Vec::with_capacity(size);
        for _ in 1..size {
            boards.push(Board::new(prototype.fork(), tenant_count));
        }
        boards.push(Board::new(prototype, tenant_count));
        BoardPool {
            boards,
            tenant_count,
        }
    }

    /// Number of boards.
    pub fn size(&self) -> usize {
        self.boards.len()
    }

    /// Restores every board to factory state (fresh bitstream, empty
    /// memory, zeroed counters) so one pool replays many simulations.
    pub fn reset(&mut self) {
        for board in &mut self.boards {
            *board = Board::new(board.runtime.fork(), self.tenant_count);
        }
    }

    /// The bitstream library the cost model searches — identical on every
    /// board, so bitstream-choice caches can be shared pool-wide.
    pub fn library(&self) -> &BitstreamLibrary {
        self.boards[0].runtime.library()
    }

    /// The reconfiguration policy in force (same on every board).
    pub fn policy(&self) -> ReconfigPolicy {
        self.boards[0].runtime.policy()
    }

    /// The configuration currently programmed on board `index`.
    pub fn config(&self, index: usize) -> HwConfig {
        self.boards[index].runtime.config()
    }

    /// Whether board `index` has a free in-flight slot.
    pub fn is_free(&self, index: usize) -> bool {
        !self.boards[index].busy
    }

    /// True when at least one board is free.
    pub fn any_free(&self) -> bool {
        self.boards.iter().any(|b| !b.busy)
    }

    /// Indices of free boards, in board order.
    pub fn free_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.boards
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.busy)
            .map(|(i, _)| i)
    }

    /// The free board with the least accumulated busy time (ties broken by
    /// the lowest index), or `None` when every board is busy.
    pub fn least_loaded_free(&self) -> Option<usize> {
        self.free_indices().min_by(|&a, &b| {
            self.boards[a]
                .busy_secs
                .total_cmp(&self.boards[b].busy_secs)
        })
    }

    /// The first free board already programmed with `config`.
    pub fn free_with_config(&self, config: HwConfig) -> Option<usize> {
        self.free_indices().find(|&i| self.config(i) == config)
    }

    /// True when any board — busy or free — is programmed with `config`.
    /// `BitstreamAffine` placement uses this to wait for a busy board
    /// holding the right bitstream instead of reprogramming another one.
    pub fn any_with_config(&self, config: HwConfig) -> bool {
        (0..self.boards.len()).any(|i| self.config(i) == config)
    }

    /// Reprograms board `index` if `best` differs from its current
    /// bitstream and the board's policy clears the gain threshold; returns
    /// the stall seconds charged, or `None` when no switch happens.
    pub fn maybe_reconfigure(
        &mut self,
        index: usize,
        workload: &Workload,
        best: HwConfig,
    ) -> Option<f64> {
        let board = &mut self.boards[index];
        let current = board.runtime.config();
        if best == current
            || !board
                .runtime
                .policy()
                .should_reconfigure(workload, current, best)
        {
            return None;
        }
        let ReconfigEvent { seconds, .. } = board.runtime.force_reconfigure(best);
        board.reconfigs += 1;
        board.reconfig_secs += seconds;
        Some(seconds)
    }

    /// Analytic preprocessing seconds for `workload` under board `index`'s
    /// current configuration.
    pub fn stage_secs(&self, index: usize, workload: &Workload) -> f64 {
        self.boards[index]
            .runtime
            .analytic_stage_secs(workload)
            .total()
    }

    /// Updates tenant residency on board `index` to `coo_bytes` and
    /// returns the upload delta (0 when the graph is already resident).
    pub fn upload_delta(&mut self, index: usize, tenant: usize, coo_bytes: u64) -> u64 {
        let resident = &mut self.boards[index].resident_bytes[tenant];
        let delta = coo_bytes.saturating_sub(*resident);
        *resident = coo_bytes;
        delta
    }

    /// Marks board `index` busy until `done` (called at dispatch).
    pub fn occupy(&mut self, index: usize, now: f64, done: f64) {
        let board = &mut self.boards[index];
        debug_assert!(!board.busy, "board {index} double-dispatched");
        board.busy = true;
        board.busy_secs += (done - now).max(0.0);
    }

    /// Marks board `index` free again (called at service completion).
    pub fn release(&mut self, index: usize) {
        let board = &mut self.boards[index];
        debug_assert!(board.busy, "board {index} released while idle");
        board.busy = false;
        board.completed += 1;
    }

    /// Per-board statistics snapshot, in board order.
    pub fn stats(&self) -> Vec<BoardStats> {
        self.boards
            .iter()
            .map(|b| BoardStats {
                completed: b.completed,
                reconfigs: b.reconfigs,
                reconfig_secs: b.reconfig_secs,
                busy_secs: b.busy_secs,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(size: usize) -> BoardPool {
        BoardPool::new(size, SampleParams::new(10, 2), ReconfigPolicy::default(), 3)
    }

    #[test]
    fn boards_start_free_and_identically_configured() {
        let pool = pool(4);
        assert_eq!(pool.size(), 4);
        assert!(pool.any_free());
        assert_eq!(pool.free_indices().count(), 4);
        for i in 1..4 {
            assert_eq!(pool.config(i), pool.config(0));
        }
    }

    #[test]
    fn least_loaded_breaks_ties_by_index_and_tracks_busy_time() {
        let mut pool = pool(3);
        assert_eq!(pool.least_loaded_free(), Some(0));
        pool.occupy(0, 0.0, 10.0);
        assert_eq!(pool.least_loaded_free(), Some(1));
        pool.release(0);
        // Board 0 now carries 10 busy seconds; 1 and 2 are still at zero.
        assert_eq!(pool.least_loaded_free(), Some(1));
        pool.occupy(1, 0.0, 1.0);
        pool.occupy(2, 0.0, 1.0);
        pool.release(1);
        pool.release(2);
        assert_eq!(pool.least_loaded_free(), Some(1), "1 < 10 busy secs");
    }

    #[test]
    fn residency_is_per_board() {
        let mut pool = pool(2);
        assert_eq!(pool.upload_delta(0, 1, 1_000), 1_000, "cold on board 0");
        assert_eq!(pool.upload_delta(0, 1, 1_000), 0, "resident on board 0");
        assert_eq!(pool.upload_delta(1, 1, 1_000), 1_000, "cold on board 1");
        assert_eq!(pool.upload_delta(0, 1, 1_500), 500, "delta only");
    }

    #[test]
    fn reset_restores_factory_state() {
        let mut pool = pool(2);
        pool.occupy(0, 0.0, 5.0);
        pool.release(0);
        pool.upload_delta(1, 0, 2_000);
        pool.reset();
        assert_eq!(pool.stats()[0].completed, 0);
        assert_eq!(pool.stats()[0].busy_secs, 0.0);
        assert_eq!(pool.upload_delta(1, 0, 2_000), 2_000, "memory evicted");
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        pool(0);
    }

    #[test]
    fn placement_policy_names_are_stable() {
        assert_eq!(PlacementPolicy::TenantAffine.name(), "tenant_affine");
        assert_eq!(PlacementPolicy::LeastLoaded.name(), "least_loaded");
        assert_eq!(PlacementPolicy::BitstreamAffine.name(), "bitstream_affine");
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::LeastLoaded);
    }
}

//! The pluggable admission/dispatch scheduler.
//!
//! PR 1–4 baked the admission queue into the simulator as a single
//! FIFO-bounded `VecDeque`: one bursty tenant could fill the shared queue
//! and starve everyone else, and every dispatch paid whatever
//! reconfiguration the cost model asked for. This module extracts that
//! core into a [`SchedPolicy`] trait owning the three decisions the event
//! loop delegates:
//!
//! - **enqueue/drop** ([`SchedPolicy::admit`]) — whether an arriving
//!   request is queued or refused (per-tenant quotas live here);
//! - **pick order** ([`SchedPolicy::scan`] / [`SchedPolicy::take`]) — the
//!   order in which queued requests are offered to placement/dispatch;
//! - **reconfiguration gating** ([`SchedPolicy::allow_reconfig`]) —
//!   whether a dispatch may pay an ICAP stall right now.
//!
//! Three policies implement it:
//!
//! - [`queue::Fifo`] — the pre-refactor scheduler, **bit-for-bit**: one
//!   bounded queue in arrival order, drop on overflow, reconfigure
//!   whenever the cost model clears its gain threshold. Every golden
//!   trace digest pinned in `tests/serve_traffic.rs` is reproduced
//!   exactly (the *Fifo-equivalence invariant* — see below).
//! - [`wfq::WeightedFair`] — deficit-round-robin over per-tenant queues
//!   with per-tenant weights ([`crate::tenant::TenantSpec::weight`]) and
//!   a per-tenant quota, under a bounded aggregate depth. A bursty
//!   aggressor can only ever occupy its quota and its weight's share of
//!   service; victims keep their latency.
//! - [`slo::SloAware`] — FIFO order plus a per-tenant latency EWMA: a
//!   dispatch may only trigger a bitstream reconfiguration when the
//!   tenant's predicted p99 (EWMA mean + z·stddev, queueing included)
//!   exceeds its SLO budget, so steady within-budget traffic stops paying
//!   ICAP stalls.
//!
//! # The Fifo-equivalence invariant
//!
//! [`SchedKind::Fifo`] must schedule **identically** to the pre-refactor
//! `VecDeque` path: same admissions, same drops, same scan order offered
//! to `select_dispatch`, `allow_reconfig` always true. The simulator's
//! event loop was refactored so that, under `Fifo`, every operation maps
//! one-to-one onto the old queue ops — which is why the PR 1–4 golden
//! digests (and the CI perf baselines) survive this refactor unchanged.
//!
//! # Tracing the scheduler's share of latency
//!
//! The queue-wait interval this module controls — [`SchedPolicy::admit`]
//! to [`SchedPolicy::take`] — is exactly the queue span the event loop
//! emits into a [`crate::trace::TraceSink`]
//! ([`crate::trace::SpanKind::Queue`] on [`crate::trace::Track::Queue`],
//! emitted by `sim.rs` at dispatch), and the `queue_secs` component of
//! the report's stall attribution ([`crate::metrics::StallBreakdown`]).
//! Comparing that component across [`SchedKind`]s is how "the scheduler
//! is (not) the bottleneck" is read off a report.
//!
//! # Scan/take contract
//!
//! [`SchedPolicy::scan`] returns the queued requests in the policy's
//! offer order; [`SchedPolicy::take`] removes by *scan position* and must
//! be called before any other mutation invalidates the mapping (the event
//! loop always scans and takes back to back). Position 0 is the request
//! the policy most wants served; a dispatch policy that picks a later
//! position (reconfig-aware batching) is overriding the scheduler, and
//! the policy accounts for it (WFQ charges the tenant's deficit).

pub mod predictor;
pub mod queue;
pub mod slo;
pub mod wfq;

use crate::metrics::RequestLatency;
use crate::tenant::TenantSpec;

pub use predictor::LatencyPredictor;
pub use queue::Fifo;
pub use slo::SloAware;
pub use wfq::WeightedFair;

/// One admitted request waiting for dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Tenant index (declaration order).
    pub tenant: usize,
    /// Arrival time in simulated seconds.
    pub arrival_secs: f64,
}

/// The scheduler's enqueue/drop/pick/reconfig-gate decisions, extracted
/// from the event loop (see the [module docs](self)).
pub trait SchedPolicy {
    /// Stable lowercase identifier used in reports and benchmark IDs.
    fn name(&self) -> &'static str;

    /// Offers an arriving request; `false` means it is dropped (queue
    /// full, or the tenant's quota exhausted) — the caller accounts the
    /// drop.
    fn admit(&mut self, request: Request) -> bool;

    /// Number of queued requests.
    fn len(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queued requests in the policy's offer order (position 0 is the
    /// scheduler's preferred next pick). Valid until the next mutation.
    fn scan(&mut self) -> &[Request];

    /// Removes and returns the request at `position` of the **most
    /// recent** [`scan`](SchedPolicy::scan) order.
    fn take(&mut self, position: usize) -> Request;

    /// Removes every queued request whose deadline has passed —
    /// `now - arrival_secs > deadlines[tenant]`, where `deadlines` is
    /// indexed by tenant and `None` entries never expire — appending
    /// them to `expired` (reused across calls so the hot loop never
    /// allocates). Policy bookkeeping must match a hypothetical take of
    /// each dead request **without charging service** for it: an
    /// expired request consumed nothing, so a WFQ tenant's deficit is
    /// untouched unless the expiry drains its queue (which resets it,
    /// like any drain). The event loop only calls this when some tenant
    /// actually carries a deadline, so deadline-free runs never touch
    /// the path — the deadline Off-equivalence invariant. The default
    /// removes nothing (correct only for a policy holding no queue);
    /// every bundled policy overrides it.
    fn expire(&mut self, now: f64, deadlines: &[Option<f64>], expired: &mut Vec<Request>) {
        let _ = (now, deadlines, expired);
    }

    /// Whether a dispatch for `tenant` may pay a bitstream
    /// reconfiguration right now. The default never gates — exactly the
    /// pre-refactor behavior.
    fn allow_reconfig(&self, tenant: usize, now: f64) -> bool {
        let _ = (tenant, now);
        true
    }

    /// Observes a completed request (latency feedback for SLO tracking).
    fn on_complete(&mut self, tenant: usize, latency: &RequestLatency, now: f64) {
        let _ = (tenant, latency, now);
    }
}

/// Which scheduler a simulation runs — the `Copy` configuration form of
/// the [`SchedPolicy`] trait objects ([`SchedKind::build`] instantiates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SchedKind {
    /// The pre-refactor bounded FIFO queue, bit-for-bit (the
    /// Fifo-equivalence invariant pins every golden trace digest).
    #[default]
    Fifo,
    /// Deficit-round-robin weighted fair queueing over per-tenant queues
    /// (weights from [`TenantSpec::weight`]), each tenant bounded by
    /// `per_tenant_quota` inside the aggregate queue capacity.
    WeightedFair {
        /// Most requests one tenant may hold queued; arrivals beyond it
        /// are dropped *for that tenant only* — a burst cannot evict
        /// other tenants' backlog.
        per_tenant_quota: usize,
    },
    /// FIFO order plus SLO-driven reconfiguration gating: a dispatch may
    /// only reprogram the fabric when the tenant's predicted p99 (latency
    /// EWMA + z·stddev) exceeds its SLO budget
    /// ([`TenantSpec::slo_secs`], falling back to `default_slo_secs`).
    SloAware {
        /// SLO budget for tenants that do not declare their own.
        default_slo_secs: f64,
    },
}

/// The instantiated scheduler as a closed enum — the event loop's
/// devirtualized form of [`SchedPolicy`].
///
/// The hot dispatch loop calls `admit`/`scan`/`take`/`len` on every
/// event; routing those through a `Box<dyn SchedPolicy>` pays an
/// indirect call each time. This enum makes the dispatch a jump table
/// the compiler can inline through ([`SchedKind::instantiate`] builds
/// it; [`SchedKind::build`] still hands out the boxed trait object for
/// callers that want dynamic composition). Behavior is identical —
/// every method forwards to the same policy implementation.
#[derive(Debug)]
pub enum Scheduler {
    /// The bounded arrival-order queue ([`queue::Fifo`]).
    Fifo(Fifo),
    /// Deficit-round-robin fair queueing ([`wfq::WeightedFair`]).
    WeightedFair(WeightedFair),
    /// SLO-gated FIFO ([`slo::SloAware`]).
    SloAware(SloAware),
}

impl SchedPolicy for Scheduler {
    #[inline]
    fn name(&self) -> &'static str {
        match self {
            Scheduler::Fifo(s) => s.name(),
            Scheduler::WeightedFair(s) => s.name(),
            Scheduler::SloAware(s) => s.name(),
        }
    }

    #[inline]
    fn admit(&mut self, request: Request) -> bool {
        match self {
            Scheduler::Fifo(s) => s.admit(request),
            Scheduler::WeightedFair(s) => s.admit(request),
            Scheduler::SloAware(s) => s.admit(request),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Scheduler::Fifo(s) => s.len(),
            Scheduler::WeightedFair(s) => s.len(),
            Scheduler::SloAware(s) => s.len(),
        }
    }

    #[inline]
    fn scan(&mut self) -> &[Request] {
        match self {
            Scheduler::Fifo(s) => s.scan(),
            Scheduler::WeightedFair(s) => s.scan(),
            Scheduler::SloAware(s) => s.scan(),
        }
    }

    #[inline]
    fn take(&mut self, position: usize) -> Request {
        match self {
            Scheduler::Fifo(s) => s.take(position),
            Scheduler::WeightedFair(s) => s.take(position),
            Scheduler::SloAware(s) => s.take(position),
        }
    }

    #[inline]
    fn expire(&mut self, now: f64, deadlines: &[Option<f64>], expired: &mut Vec<Request>) {
        match self {
            Scheduler::Fifo(s) => s.expire(now, deadlines, expired),
            Scheduler::WeightedFair(s) => s.expire(now, deadlines, expired),
            Scheduler::SloAware(s) => s.expire(now, deadlines, expired),
        }
    }

    #[inline]
    fn allow_reconfig(&self, tenant: usize, now: f64) -> bool {
        match self {
            Scheduler::Fifo(s) => s.allow_reconfig(tenant, now),
            Scheduler::WeightedFair(s) => s.allow_reconfig(tenant, now),
            Scheduler::SloAware(s) => s.allow_reconfig(tenant, now),
        }
    }

    #[inline]
    fn on_complete(&mut self, tenant: usize, latency: &RequestLatency, now: f64) {
        match self {
            Scheduler::Fifo(s) => s.on_complete(tenant, latency, now),
            Scheduler::WeightedFair(s) => s.on_complete(tenant, latency, now),
            Scheduler::SloAware(s) => s.on_complete(tenant, latency, now),
        }
    }
}

impl SchedKind {
    /// The weighted-fair preset: a 64-request per-tenant quota — deep
    /// enough to absorb a diurnal swell, shallow enough that one tenant
    /// can never own a 512-deep aggregate queue.
    pub fn weighted_fair() -> Self {
        SchedKind::WeightedFair {
            per_tenant_quota: 64,
        }
    }

    /// The SLO-aware preset: a 1-second default p99 budget (interactive
    /// serving; tenants override via [`TenantSpec::slo_secs`]).
    pub fn slo_aware() -> Self {
        SchedKind::SloAware {
            default_slo_secs: 1.0,
        }
    }

    /// Stable lowercase identifier used in reports and benchmark IDs.
    pub fn name(&self) -> &'static str {
        match self {
            SchedKind::Fifo => "fifo",
            SchedKind::WeightedFair { .. } => "wfq",
            SchedKind::SloAware { .. } => "slo",
        }
    }

    /// Instantiates the scheduler for a deployment of `tenants` under an
    /// aggregate queue bound of `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, a weighted-fair quota is zero, or a
    /// tenant weight / SLO budget is not positive and finite.
    pub fn build(&self, tenants: &[TenantSpec], capacity: usize) -> Box<dyn SchedPolicy> {
        Box::new(self.instantiate(tenants, capacity))
    }

    /// [`build`](SchedKind::build) without the box: the [`Scheduler`]
    /// enum the event loop dispatches on statically.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`build`](SchedKind::build).
    pub fn instantiate(&self, tenants: &[TenantSpec], capacity: usize) -> Scheduler {
        assert!(capacity > 0, "queue capacity must be positive");
        match *self {
            SchedKind::Fifo => Scheduler::Fifo(Fifo::new(capacity)),
            SchedKind::WeightedFair { per_tenant_quota } => {
                Scheduler::WeightedFair(WeightedFair::new(
                    tenants.iter().map(|t| t.weight).collect(),
                    capacity,
                    per_tenant_quota,
                ))
            }
            SchedKind::SloAware { default_slo_secs } => Scheduler::SloAware(SloAware::new(
                tenants
                    .iter()
                    .map(|t| t.slo_secs.unwrap_or(default_slo_secs))
                    .collect(),
                capacity,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agnn_graph::datasets::Dataset;

    fn tenants(n: usize) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::new(format!("t{i}"), Dataset::Movie, 1.0))
            .collect()
    }

    #[test]
    fn kind_names_and_presets_are_stable() {
        assert_eq!(SchedKind::default(), SchedKind::Fifo);
        assert_eq!(SchedKind::Fifo.name(), "fifo");
        assert_eq!(SchedKind::weighted_fair().name(), "wfq");
        assert_eq!(SchedKind::slo_aware().name(), "slo");
        assert_eq!(
            SchedKind::weighted_fair(),
            SchedKind::WeightedFair {
                per_tenant_quota: 64
            }
        );
        assert_eq!(
            SchedKind::slo_aware(),
            SchedKind::SloAware {
                default_slo_secs: 1.0
            }
        );
    }

    #[test]
    fn build_instantiates_each_policy() {
        let ts = tenants(3);
        for kind in [
            SchedKind::Fifo,
            SchedKind::weighted_fair(),
            SchedKind::slo_aware(),
        ] {
            let mut sched = kind.build(&ts, 8);
            assert_eq!(sched.name(), kind.name());
            assert!(sched.is_empty());
            assert!(sched.admit(Request {
                tenant: 0,
                arrival_secs: 0.0
            }));
            assert_eq!(sched.len(), 1);
            assert_eq!(sched.scan().len(), 1);
            let rq = sched.take(0);
            assert_eq!(rq.tenant, 0);
            assert!(sched.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_capacity_is_rejected() {
        SchedKind::Fifo.build(&tenants(1), 0);
    }
}

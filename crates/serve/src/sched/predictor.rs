//! The shared per-tenant latency EWMA — one predictor for SLO gating
//! and hedge triggering.
//!
//! [`super::slo::SloAware`]'s reconfiguration gate and the simulator's
//! hedged-dispatch trigger both need the same estimate: "what is this
//! tenant's p99 end-to-end latency right now?". Before this module each
//! site grew its own copy of the EWMA update; extracting it here keeps
//! the two consumers numerically identical (same smoothing factor, same
//! z-score, same cold-start behavior) so a gate decision and a hedge
//! decision made at the same instant agree on the prediction.

/// EWMA smoothing factor for the per-tenant latency tracker (~the last
/// dozen requests dominate the estimate).
pub const EWMA_ALPHA: f64 = 0.15;
/// Standard-normal z-score of the 99th percentile: the predicted p99 is
/// `mean + Z_P99 · stddev` of the EWMA-tracked latency distribution.
pub const Z_P99: f64 = 2.326;

/// Per-tenant exponentially weighted latency statistics with a p99
/// projection.
///
/// Tracks an EWMA of the observed end-to-end latency and of the squared
/// deviation from that mean; [`predicted_p99`](Self::predicted_p99) is
/// `mean + Z_P99 · stddev`. A tenant with no observation yet is *cold*
/// ([`is_warm`](Self::is_warm) is `false`) and predicts `0.0` — callers
/// decide what cold means (the SLO gate stays open, the hedge trigger
/// stays closed).
#[derive(Debug, Clone)]
pub struct LatencyPredictor {
    /// Per-tenant EWMA of end-to-end latency.
    mean: Vec<f64>,
    /// Per-tenant EWMA of squared deviation from the mean.
    var: Vec<f64>,
    /// Observation count per tenant (0 = cold).
    samples: Vec<u64>,
}

impl LatencyPredictor {
    /// A cold predictor for `tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn new(tenants: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        LatencyPredictor {
            mean: vec![0.0; tenants],
            var: vec![0.0; tenants],
            samples: vec![0; tenants],
        }
    }

    /// Feeds one completed request's end-to-end latency into the
    /// tenant's EWMA. The first observation seeds the mean directly
    /// (variance zero); later ones apply the standard EWMA update.
    pub fn observe(&mut self, tenant: usize, total_secs: f64) {
        if self.samples[tenant] == 0 {
            self.mean[tenant] = total_secs;
            self.var[tenant] = 0.0;
        } else {
            let dev = total_secs - self.mean[tenant];
            self.mean[tenant] += EWMA_ALPHA * dev;
            self.var[tenant] = (1.0 - EWMA_ALPHA) * (self.var[tenant] + EWMA_ALPHA * dev * dev);
        }
        self.samples[tenant] += 1;
    }

    /// The tenant's current predicted p99 in seconds (0 while cold).
    pub fn predicted_p99(&self, tenant: usize) -> f64 {
        if self.samples[tenant] == 0 {
            0.0
        } else {
            self.mean[tenant] + Z_P99 * self.var[tenant].max(0.0).sqrt()
        }
    }

    /// True once the tenant has at least one observation.
    pub fn is_warm(&self, tenant: usize) -> bool {
        self.samples[tenant] > 0
    }

    /// Observations recorded for the tenant so far.
    pub fn samples(&self, tenant: usize) -> u64 {
        self.samples[tenant]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_predicts_zero() {
        let p = LatencyPredictor::new(2);
        assert!(!p.is_warm(0));
        assert_eq!(p.samples(1), 0);
        assert_eq!(p.predicted_p99(0), 0.0);
    }

    #[test]
    fn first_observation_seeds_the_mean() {
        let mut p = LatencyPredictor::new(1);
        p.observe(0, 0.5);
        assert!(p.is_warm(0));
        assert_eq!(p.samples(0), 1);
        // Variance is zero after one sample, so p99 == mean.
        assert!((p.predicted_p99(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn steady_traffic_converges_and_a_tail_raises_the_prediction() {
        let mut p = LatencyPredictor::new(1);
        for _ in 0..50 {
            p.observe(0, 0.1);
        }
        assert!(p.predicted_p99(0) < 0.2);
        for _ in 0..20 {
            p.observe(0, 3.0);
        }
        assert!(p.predicted_p99(0) > 1.0, "EWMA follows the degradation");
    }

    #[test]
    fn tenants_are_independent() {
        let mut p = LatencyPredictor::new(2);
        for _ in 0..30 {
            p.observe(0, 1.0);
        }
        assert!(p.predicted_p99(0) > 0.5);
        assert!(!p.is_warm(1));
        assert_eq!(p.predicted_p99(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_are_rejected() {
        LatencyPredictor::new(0);
    }
}

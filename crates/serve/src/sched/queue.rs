//! The pre-refactor bounded FIFO admission queue, bit-for-bit.

use std::collections::VecDeque;

use super::{Request, SchedPolicy};

/// One bounded queue in strict arrival order: admit while depth is below
/// capacity, drop on overflow, offer requests exactly as they arrived,
/// never gate a reconfiguration. This is the scheduler the simulator had
/// baked in before the `sched` extraction — the *Fifo-equivalence
/// invariant* ([module docs](super)) holds because every trait call maps
/// one-to-one onto the old `VecDeque` operation.
#[derive(Debug)]
pub struct Fifo {
    queue: VecDeque<Request>,
    capacity: usize,
}

impl Fifo {
    /// A FIFO queue admitting at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Fifo {
            queue: VecDeque::new(),
            capacity,
        }
    }
}

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn admit(&mut self, request: Request) -> bool {
        if self.queue.len() >= self.capacity {
            return false;
        }
        self.queue.push_back(request);
        true
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn scan(&mut self) -> &[Request] {
        // No copy: the ring buffer is rotated in place (amortized free —
        // a bounded queue that has wrapped stays contiguous until the
        // head moves again), exactly matching the pre-refactor borrow.
        self.queue.make_contiguous()
    }

    fn take(&mut self, position: usize) -> Request {
        self.queue
            .remove(position)
            .expect("take position within the queue")
    }

    fn expire(&mut self, now: f64, deadlines: &[Option<f64>], expired: &mut Vec<Request>) {
        // Deadlines differ per tenant, so dead requests are interleaved
        // with live ones — a full pass, preserving relative order.
        let mut i = 0;
        while i < self.queue.len() {
            let rq = self.queue[i];
            match deadlines[rq.tenant] {
                Some(d) if now - rq.arrival_secs > d => {
                    expired.push(self.queue.remove(i).expect("index in bounds"));
                }
                _ => i += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rq(tenant: usize, at: f64) -> Request {
        Request {
            tenant,
            arrival_secs: at,
        }
    }

    #[test]
    fn admits_in_order_and_drops_on_overflow() {
        let mut q = Fifo::new(2);
        assert!(q.admit(rq(0, 1.0)));
        assert!(q.admit(rq(1, 2.0)));
        assert!(!q.admit(rq(2, 3.0)), "overflow drops");
        assert_eq!(q.len(), 2);
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(order, vec![0, 1], "strict arrival order");
    }

    #[test]
    fn take_removes_by_position() {
        let mut q = Fifo::new(8);
        for i in 0..4 {
            q.admit(rq(i, i as f64));
        }
        q.scan();
        assert_eq!(q.take(2).tenant, 2, "mid-queue take (reconfig batching)");
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(order, vec![0, 1, 3]);
        assert_eq!(q.take(0).tenant, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn never_gates_reconfigurations() {
        let q = Fifo::new(1);
        assert!(q.allow_reconfig(0, 0.0));
        assert!(q.allow_reconfig(7, 1e9));
    }

    #[test]
    fn expire_removes_interleaved_dead_requests_preserving_order() {
        let mut q = Fifo::new(8);
        // Tenant 0 has a 1 s deadline, tenant 1 none.
        q.admit(rq(0, 0.0)); // dead at t=2
        q.admit(rq(1, 0.5)); // immortal
        q.admit(rq(0, 1.5)); // still live at t=2 (0.5 s old)
        let deadlines = vec![Some(1.0), None];
        let mut expired = Vec::new();
        q.expire(2.5, &deadlines, &mut expired);
        assert_eq!(expired, vec![rq(0, 0.0)]);
        let order: Vec<f64> = q.scan().iter().map(|r| r.arrival_secs).collect();
        assert_eq!(order, vec![0.5, 1.5], "survivors keep arrival order");
    }

    #[test]
    fn expire_is_exclusive_at_the_deadline_instant() {
        let mut q = Fifo::new(4);
        q.admit(rq(0, 0.0));
        let mut expired = Vec::new();
        // Exactly at the deadline the request is still servable.
        q.expire(1.0, &[Some(1.0)], &mut expired);
        assert!(expired.is_empty());
        q.expire(1.0 + 1e-9, &[Some(1.0)], &mut expired);
        assert_eq!(expired.len(), 1);
        assert!(q.is_empty());
    }
}

//! SLO-driven reconfiguration gating over a FIFO queue.

use crate::metrics::RequestLatency;

use super::{queue::Fifo, Request, SchedPolicy};

/// EWMA smoothing factor for the per-tenant latency tracker (~the last
/// dozen requests dominate the estimate).
const EWMA_ALPHA: f64 = 0.15;
/// Standard-normal z-score of the 99th percentile: the predicted p99 is
/// `mean + Z_P99 · stddev` of the EWMA-tracked latency distribution.
const Z_P99: f64 = 2.326;

/// FIFO admission and offer order, plus an SLO-driven reconfiguration
/// gate: a dispatch may only pay an ICAP stall when the tenant's
/// **predicted p99** — an exponentially weighted mean of its end-to-end
/// latency (queueing included, so a building backlog raises the
/// prediction) plus `Z_P99` weighted deviations — exceeds its SLO
/// budget.
///
/// The cost model's per-request gain threshold keeps firing on every
/// drift step even when tenants are comfortably inside their SLOs; this
/// policy converts those stalls into headroom: while every tenant's
/// predicted tail clears its budget, boards keep serving on whatever
/// bitstream they hold, and the fabric reprograms only when a tenant is
/// actually about to miss. Queueing order is untouched (bit-identical to
/// [`Fifo`] admission/offer decisions), so any schedule difference comes
/// from the gate alone.
///
/// A tenant with no completed request yet always passes the gate — a cold
/// deployment must be allowed its first configuration.
#[derive(Debug)]
pub struct SloAware {
    inner: Fifo,
    /// Effective per-tenant p99 budget in seconds.
    budgets: Vec<f64>,
    /// Per-tenant EWMA of end-to-end latency.
    mean: Vec<f64>,
    /// Per-tenant EWMA of squared deviation from the mean.
    var: Vec<f64>,
    /// Completed-request count per tenant (0 = cold, gate open).
    samples: Vec<u64>,
}

impl SloAware {
    /// An SLO-aware scheduler for tenants with the given p99 `budgets`
    /// (seconds), over a FIFO queue of `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty or any budget is not positive and
    /// finite.
    pub fn new(budgets: Vec<f64>, capacity: usize) -> Self {
        assert!(!budgets.is_empty(), "need at least one tenant budget");
        assert!(
            budgets.iter().all(|b| *b > 0.0 && b.is_finite()),
            "SLO budgets must be positive and finite"
        );
        let n = budgets.len();
        SloAware {
            inner: Fifo::new(capacity),
            budgets,
            mean: vec![0.0; n],
            var: vec![0.0; n],
            samples: vec![0; n],
        }
    }

    /// The tenant's current predicted p99 in seconds (0 while cold).
    pub fn predicted_p99(&self, tenant: usize) -> f64 {
        if self.samples[tenant] == 0 {
            0.0
        } else {
            self.mean[tenant] + Z_P99 * self.var[tenant].max(0.0).sqrt()
        }
    }
}

impl SchedPolicy for SloAware {
    fn name(&self) -> &'static str {
        "slo"
    }

    fn admit(&mut self, request: Request) -> bool {
        self.inner.admit(request)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan(&mut self) -> &[Request] {
        self.inner.scan()
    }

    fn take(&mut self, position: usize) -> Request {
        self.inner.take(position)
    }

    fn allow_reconfig(&self, tenant: usize, _now: f64) -> bool {
        self.samples[tenant] == 0 || self.predicted_p99(tenant) > self.budgets[tenant]
    }

    fn on_complete(&mut self, tenant: usize, latency: &RequestLatency, _now: f64) {
        let x = latency.total();
        if self.samples[tenant] == 0 {
            self.mean[tenant] = x;
            self.var[tenant] = 0.0;
        } else {
            let dev = x - self.mean[tenant];
            self.mean[tenant] += EWMA_ALPHA * dev;
            self.var[tenant] = (1.0 - EWMA_ALPHA) * (self.var[tenant] + EWMA_ALPHA * dev * dev);
        }
        self.samples[tenant] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(total_secs: f64) -> RequestLatency {
        RequestLatency {
            preprocess_secs: total_secs,
            ..RequestLatency::default()
        }
    }

    #[test]
    fn cold_tenants_always_pass_the_gate() {
        let s = SloAware::new(vec![1.0, 1.0], 8);
        assert!(s.allow_reconfig(0, 0.0));
        assert_eq!(s.predicted_p99(0), 0.0);
    }

    #[test]
    fn within_budget_traffic_closes_the_gate() {
        let mut s = SloAware::new(vec![1.0], 8);
        for _ in 0..50 {
            s.on_complete(0, &lat(0.1), 0.0);
        }
        assert!(s.predicted_p99(0) < 0.2);
        assert!(!s.allow_reconfig(0, 0.0), "comfortably inside the SLO");
    }

    #[test]
    fn a_building_tail_reopens_the_gate() {
        let mut s = SloAware::new(vec![1.0], 8);
        for _ in 0..20 {
            s.on_complete(0, &lat(0.5), 0.0);
        }
        assert!(!s.allow_reconfig(0, 0.0));
        for _ in 0..20 {
            s.on_complete(0, &lat(3.0), 0.0);
        }
        assert!(
            s.predicted_p99(0) > 1.0,
            "EWMA follows the degradation: {}",
            s.predicted_p99(0)
        );
        assert!(s.allow_reconfig(0, 0.0), "SLO breach reopens the gate");
    }

    #[test]
    fn budgets_are_per_tenant() {
        let mut s = SloAware::new(vec![0.2, 5.0], 8);
        for t in 0..2 {
            for _ in 0..30 {
                s.on_complete(t, &lat(1.0), 0.0);
            }
        }
        assert!(s.allow_reconfig(0, 0.0), "1 s tail breaches a 0.2 s budget");
        assert!(!s.allow_reconfig(1, 0.0), "but clears a 5 s budget");
    }

    #[test]
    fn queueing_behavior_is_fifo() {
        let mut s = SloAware::new(vec![1.0], 2);
        assert!(s.admit(Request {
            tenant: 0,
            arrival_secs: 1.0
        }));
        assert!(s.admit(Request {
            tenant: 0,
            arrival_secs: 2.0
        }));
        assert!(!s.admit(Request {
            tenant: 0,
            arrival_secs: 3.0
        }));
        assert_eq!(s.scan().len(), 2);
        assert_eq!(s.take(0).arrival_secs, 1.0);
    }

    #[test]
    #[should_panic(expected = "budgets must be positive")]
    fn non_positive_budgets_are_rejected() {
        SloAware::new(vec![-1.0], 8);
    }
}

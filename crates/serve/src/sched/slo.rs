//! SLO-driven reconfiguration gating over a FIFO queue.

use crate::metrics::RequestLatency;

use super::predictor::LatencyPredictor;
use super::{queue::Fifo, Request, SchedPolicy};

/// FIFO admission and offer order, plus an SLO-driven reconfiguration
/// gate: a dispatch may only pay an ICAP stall when the tenant's
/// **predicted p99** — an exponentially weighted mean of its end-to-end
/// latency (queueing included, so a building backlog raises the
/// prediction) plus [`super::predictor::Z_P99`] weighted deviations —
/// exceeds its SLO budget. The EWMA itself is the shared
/// [`LatencyPredictor`], the same estimator the simulator's hedged
/// dispatch consults.
///
/// The cost model's per-request gain threshold keeps firing on every
/// drift step even when tenants are comfortably inside their SLOs; this
/// policy converts those stalls into headroom: while every tenant's
/// predicted tail clears its budget, boards keep serving on whatever
/// bitstream they hold, and the fabric reprograms only when a tenant is
/// actually about to miss. Queueing order is untouched (bit-identical to
/// [`Fifo`] admission/offer decisions), so any schedule difference comes
/// from the gate alone.
///
/// A tenant with no completed request yet always passes the gate — a cold
/// deployment must be allowed its first configuration.
#[derive(Debug)]
pub struct SloAware {
    inner: Fifo,
    /// Effective per-tenant p99 budget in seconds.
    budgets: Vec<f64>,
    /// The shared per-tenant latency EWMA (0 samples = cold, gate open).
    predictor: LatencyPredictor,
}

impl SloAware {
    /// An SLO-aware scheduler for tenants with the given p99 `budgets`
    /// (seconds), over a FIFO queue of `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty or any budget is not positive and
    /// finite.
    pub fn new(budgets: Vec<f64>, capacity: usize) -> Self {
        assert!(!budgets.is_empty(), "need at least one tenant budget");
        assert!(
            budgets.iter().all(|b| *b > 0.0 && b.is_finite()),
            "SLO budgets must be positive and finite"
        );
        let n = budgets.len();
        SloAware {
            inner: Fifo::new(capacity),
            budgets,
            predictor: LatencyPredictor::new(n),
        }
    }

    /// The tenant's current predicted p99 in seconds (0 while cold).
    pub fn predicted_p99(&self, tenant: usize) -> f64 {
        self.predictor.predicted_p99(tenant)
    }
}

impl SchedPolicy for SloAware {
    fn name(&self) -> &'static str {
        "slo"
    }

    fn admit(&mut self, request: Request) -> bool {
        self.inner.admit(request)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan(&mut self) -> &[Request] {
        self.inner.scan()
    }

    fn take(&mut self, position: usize) -> Request {
        self.inner.take(position)
    }

    fn expire(&mut self, now: f64, deadlines: &[Option<f64>], expired: &mut Vec<Request>) {
        self.inner.expire(now, deadlines, expired);
    }

    fn allow_reconfig(&self, tenant: usize, _now: f64) -> bool {
        !self.predictor.is_warm(tenant) || self.predicted_p99(tenant) > self.budgets[tenant]
    }

    fn on_complete(&mut self, tenant: usize, latency: &RequestLatency, _now: f64) {
        self.predictor.observe(tenant, latency.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(total_secs: f64) -> RequestLatency {
        RequestLatency {
            preprocess_secs: total_secs,
            ..RequestLatency::default()
        }
    }

    #[test]
    fn cold_tenants_always_pass_the_gate() {
        let s = SloAware::new(vec![1.0, 1.0], 8);
        assert!(s.allow_reconfig(0, 0.0));
        assert_eq!(s.predicted_p99(0), 0.0);
    }

    #[test]
    fn within_budget_traffic_closes_the_gate() {
        let mut s = SloAware::new(vec![1.0], 8);
        for _ in 0..50 {
            s.on_complete(0, &lat(0.1), 0.0);
        }
        assert!(s.predicted_p99(0) < 0.2);
        assert!(!s.allow_reconfig(0, 0.0), "comfortably inside the SLO");
    }

    #[test]
    fn a_building_tail_reopens_the_gate() {
        let mut s = SloAware::new(vec![1.0], 8);
        for _ in 0..20 {
            s.on_complete(0, &lat(0.5), 0.0);
        }
        assert!(!s.allow_reconfig(0, 0.0));
        for _ in 0..20 {
            s.on_complete(0, &lat(3.0), 0.0);
        }
        assert!(
            s.predicted_p99(0) > 1.0,
            "EWMA follows the degradation: {}",
            s.predicted_p99(0)
        );
        assert!(s.allow_reconfig(0, 0.0), "SLO breach reopens the gate");
    }

    #[test]
    fn budgets_are_per_tenant() {
        let mut s = SloAware::new(vec![0.2, 5.0], 8);
        for t in 0..2 {
            for _ in 0..30 {
                s.on_complete(t, &lat(1.0), 0.0);
            }
        }
        assert!(s.allow_reconfig(0, 0.0), "1 s tail breaches a 0.2 s budget");
        assert!(!s.allow_reconfig(1, 0.0), "but clears a 5 s budget");
    }

    #[test]
    fn queueing_behavior_is_fifo() {
        let mut s = SloAware::new(vec![1.0], 2);
        assert!(s.admit(Request {
            tenant: 0,
            arrival_secs: 1.0
        }));
        assert!(s.admit(Request {
            tenant: 0,
            arrival_secs: 2.0
        }));
        assert!(!s.admit(Request {
            tenant: 0,
            arrival_secs: 3.0
        }));
        assert_eq!(s.scan().len(), 2);
        assert_eq!(s.take(0).arrival_secs, 1.0);
    }

    #[test]
    #[should_panic(expected = "budgets must be positive")]
    fn non_positive_budgets_are_rejected() {
        SloAware::new(vec![-1.0], 8);
    }
}

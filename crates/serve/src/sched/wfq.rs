//! Deficit-round-robin weighted fair queueing over per-tenant queues.

use std::collections::VecDeque;

use super::{Request, SchedPolicy};

/// How many rounds of future grant an out-of-order pick may pre-spend
/// before further charges are forgiven. Dispatch policies (reconfig-aware
/// batching) legitimately override the fair order; the clamp keeps the
/// penalty — and the scan replay depth — bounded by a constant instead of
/// the run length.
const MAX_PRESPEND_ROUNDS: f64 = 4.0;

/// Weighted fair queueing: one FIFO queue per tenant, served by deficit
/// round robin.
///
/// Each backlogged tenant is visited in rounds; a visit grants the tenant
/// its *quantum* (its weight normalized so the smallest weight grants
/// exactly one request per round) and serves whole requests while the
/// accumulated deficit covers them. A tenant that queues faster than its
/// share only ever drains at its weight's rate, and a backlogged tenant
/// with nonzero weight is served **within one full round** — the
/// starvation bound `tests` pin.
///
/// Admission is doubly bounded: the aggregate queue depth (shared
/// capacity) and a per-tenant quota. A bursty aggressor therefore cannot
/// evict other tenants' backlog at admission *or* out-run them at
/// dispatch — the two halves of the fairness story.
///
/// # Lazy grants
///
/// The committed state stores only per-tenant deficits (service consumed)
/// and the backlog round order; round grants are replayed virtually by
/// [`scan`](SchedPolicy::scan), which simulates the DRR drain of the
/// current backlog and offers requests in exactly that order. A take
/// charges the tenant's deficit only while *other* tenants are backlogged
/// (the virtual grants balance those charges, so taking scan position 0
/// repeatedly *is* textbook DRR; a sole backlogged tenant is never
/// charged — idle rounds would have granted it the quantum anyway).
/// Taking a later position (a dispatch policy overriding fairness)
/// pre-spends the tenant's future grant, clamped at
/// `MAX_PRESPEND_ROUNDS` so replays stay O(1).
#[derive(Debug)]
pub struct WeightedFair {
    /// Per-tenant FIFO queues.
    queues: Vec<VecDeque<Request>>,
    /// Per-tenant round grant, normalized so `min(quantum) == 1`.
    quantum: Vec<f64>,
    /// Per-tenant deficit: grant accumulated (virtually) minus service
    /// consumed. Only the consumed half is committed here, so values are
    /// ≤ 0 between scans.
    deficit: Vec<f64>,
    /// Backlogged tenants in round order (push order of first backlog).
    active: VecDeque<usize>,
    len: usize,
    capacity: usize,
    quota: usize,
    scratch: Vec<Request>,
    /// `(tenant, index in its queue)` per scan position.
    scan_map: Vec<(usize, usize)>,
    /// Reusable scan-replay buffers (cleared and refilled per scan, so
    /// the simulator's hottest loop never re-allocates them).
    replay_deficit: Vec<f64>,
    replay_round: VecDeque<usize>,
    replay_offered: Vec<usize>,
}

impl WeightedFair {
    /// A weighted fair queue for tenants with the given `weights`, under
    /// an aggregate bound of `capacity` and `per_tenant_quota` requests
    /// per tenant.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is not positive and
    /// finite, or the quota is zero.
    pub fn new(weights: Vec<f64>, capacity: usize, per_tenant_quota: usize) -> Self {
        assert!(!weights.is_empty(), "need at least one tenant weight");
        assert!(per_tenant_quota > 0, "per-tenant quota must be positive");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "tenant weights must be positive and finite"
        );
        let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let n = weights.len();
        WeightedFair {
            queues: vec![VecDeque::new(); n],
            quantum: weights.iter().map(|w| w / min).collect(),
            deficit: vec![0.0; n],
            active: VecDeque::new(),
            len: 0,
            capacity,
            quota: per_tenant_quota,
            scratch: Vec::new(),
            scan_map: Vec::new(),
            replay_deficit: Vec::new(),
            replay_round: VecDeque::new(),
            replay_offered: Vec::new(),
        }
    }

    /// Requests tenant `tenant` currently has queued.
    pub fn backlog(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }
}

impl SchedPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn admit(&mut self, request: Request) -> bool {
        let q = &mut self.queues[request.tenant];
        if self.len >= self.capacity || q.len() >= self.quota {
            return false;
        }
        if q.is_empty() {
            self.active.push_back(request.tenant);
        }
        q.push_back(request);
        self.len += 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan(&mut self) -> &[Request] {
        self.scratch.clear();
        self.scan_map.clear();
        self.replay_deficit.clear();
        self.replay_deficit.extend_from_slice(&self.deficit);
        self.replay_round.clear();
        self.replay_round.extend(self.active.iter().copied());
        self.replay_offered.clear();
        self.replay_offered.resize(self.queues.len(), 0);
        let deficit = &mut self.replay_deficit;
        let offered = &mut self.replay_offered;
        while let Some(tenant) = self.replay_round.pop_front() {
            deficit[tenant] += self.quantum[tenant];
            let queue = &self.queues[tenant];
            while deficit[tenant] >= 1.0 && offered[tenant] < queue.len() {
                self.scratch.push(queue[offered[tenant]]);
                self.scan_map.push((tenant, offered[tenant]));
                deficit[tenant] -= 1.0;
                offered[tenant] += 1;
            }
            if offered[tenant] < queue.len() {
                self.replay_round.push_back(tenant);
            }
        }
        debug_assert_eq!(self.scratch.len(), self.len, "scan offers everything");
        &self.scratch
    }

    fn take(&mut self, position: usize) -> Request {
        let (tenant, index) = self.scan_map[position];
        // Keep later scan positions of the same tenant addressable if the
        // caller ever took mid-queue; the event loop re-scans after every
        // take, so a stale map is never consulted — but shifting keeps the
        // mapping honest regardless.
        for entry in &mut self.scan_map[position..] {
            if entry.0 == tenant && entry.1 > index {
                entry.1 -= 1;
            }
        }
        let request = self.queues[tenant]
            .remove(index)
            .expect("scan_map position within the tenant queue");
        self.len -= 1;
        if self.queues[tenant].is_empty() {
            // A drained tenant leaves the round and forfeits its balance,
            // exactly like DRR resetting an emptied flow's deficit.
            self.active.retain(|t| *t != tenant);
            self.deficit[tenant] = 0.0;
        } else if self.active.len() == 1 {
            // No contention: the sole backlogged tenant owes nobody. In
            // textbook DRR the idle rounds would keep granting it quantum
            // anyway, so charging here would bank debt for capacity it
            // consumed while nothing else was waiting — and stall it for
            // several rounds the moment a competitor backlogs.
            self.deficit[tenant] = 0.0;
        } else {
            let floor = -MAX_PRESPEND_ROUNDS * self.quantum[tenant];
            self.deficit[tenant] = (self.deficit[tenant] - 1.0).max(floor);
        }
        request
    }

    fn expire(&mut self, now: f64, deadlines: &[Option<f64>], expired: &mut Vec<Request>) {
        for (tenant, deadline) in deadlines.iter().enumerate().take(self.queues.len()) {
            let Some(d) = *deadline else { continue };
            let queue = &mut self.queues[tenant];
            if queue.is_empty() {
                continue;
            }
            // A tenant queue is FIFO and its deadline is a constant, so
            // the dead requests are exactly a prefix.
            while queue.front().is_some_and(|rq| now - rq.arrival_secs > d) {
                expired.push(queue.pop_front().expect("front exists"));
                self.len -= 1;
            }
            if queue.is_empty() {
                // Same bookkeeping as a take() that drains the tenant:
                // leave the round and forfeit the deficit balance.
                self.active.retain(|t| *t != tenant);
                self.deficit[tenant] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rq(tenant: usize, at: f64) -> Request {
        Request {
            tenant,
            arrival_secs: at,
        }
    }

    /// Fills tenant `t` with `n` requests (arrival times just for identity).
    fn backlog(q: &mut WeightedFair, tenant: usize, n: usize) {
        for i in 0..n {
            assert!(q.admit(rq(tenant, tenant as f64 * 1e3 + i as f64)));
        }
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut q = WeightedFair::new(vec![1.0, 1.0, 1.0], 64, 16);
        backlog(&mut q, 0, 3);
        backlog(&mut q, 1, 3);
        backlog(&mut q, 2, 3);
        let mut order = Vec::new();
        while !q.is_empty() {
            q.scan();
            order.push(q.take(0).tenant);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weights_set_the_service_ratio() {
        // Weight 2 vs 1: tenant 0 gets two picks per round.
        let mut q = WeightedFair::new(vec![2.0, 1.0], 64, 32);
        backlog(&mut q, 0, 8);
        backlog(&mut q, 1, 8);
        let mut first_six = Vec::new();
        for _ in 0..6 {
            q.scan();
            first_six.push(q.take(0).tenant);
        }
        assert_eq!(first_six, vec![0, 0, 1, 0, 0, 1]);
    }

    /// The starvation bound the ISSUE names: any backlogged tenant with
    /// nonzero weight is served within one full deficit round — at most
    /// `Σ ceil(quantum)` picks from a fresh state.
    #[test]
    fn backlogged_tenant_served_within_one_round() {
        let weights: Vec<f64> = vec![8.0, 1.0, 4.0, 2.0];
        // min weight 1.0, so quantum_t == weight_t here.
        let round_picks: usize = weights.iter().map(|w| w.ceil() as usize).sum();
        let mut q = WeightedFair::new(weights, 1024, 256);
        for t in 0..4 {
            backlog(&mut q, t, 64);
        }
        let mut seen = [false; 4];
        for _ in 0..round_picks {
            q.scan();
            seen[q.take(0).tenant] = true;
        }
        assert_eq!(seen, [true; 4], "every tenant served within one round");
    }

    #[test]
    fn quota_bounds_each_tenant_and_capacity_bounds_the_aggregate() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 6, 4);
        backlog(&mut q, 0, 4);
        assert!(!q.admit(rq(0, 99.0)), "quota exhausted for tenant 0");
        backlog(&mut q, 1, 2);
        assert!(!q.admit(rq(1, 99.0)), "aggregate capacity reached");
        assert_eq!(q.len(), 6);
        assert_eq!(q.backlog(0), 4);
        assert_eq!(q.backlog(1), 2);
    }

    #[test]
    fn out_of_order_take_charges_the_tenant() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 64, 32);
        backlog(&mut q, 0, 4);
        backlog(&mut q, 1, 4);
        // A dispatch policy grabs tenant 1's whole backlog out of order.
        for _ in 0..3 {
            let scan: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
            let pos = scan.iter().position(|t| *t == 1).unwrap();
            assert_eq!(q.take(pos).tenant, 1);
        }
        // Tenant 1 pre-spent three rounds: the fair order now owes
        // tenant 0 several consecutive picks before tenant 1 reappears.
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(&order[..3], &[0, 0, 0], "over-served tenant waits");
        assert!(order.contains(&1), "but is never starved out entirely");
    }

    /// Regression (review fix): service consumed while a tenant was the
    /// *only* backlogged one must not bank debt against it — a competitor
    /// arriving later starts from parity, not from several rounds ahead.
    #[test]
    fn sole_backlog_service_is_never_charged() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 64, 32);
        backlog(&mut q, 0, 10);
        // Tenant 0 is served alone for a while (always the fair pick).
        for _ in 0..6 {
            q.scan();
            assert_eq!(q.take(0).tenant, 0);
        }
        // Tenant 1 backlogs: the two must alternate immediately — tenant 0
        // owes nothing for the uncontended stretch.
        backlog(&mut q, 1, 4);
        let mut order = Vec::new();
        for _ in 0..4 {
            q.scan();
            order.push(q.take(0).tenant);
        }
        assert_eq!(
            order,
            vec![0, 1, 0, 1],
            "parity from the first contended round"
        );
    }

    #[test]
    fn scan_offers_every_queued_request_exactly_once() {
        let mut q = WeightedFair::new(vec![3.0, 0.5, 1.0], 256, 128);
        backlog(&mut q, 0, 17);
        backlog(&mut q, 1, 5);
        backlog(&mut q, 2, 9);
        let scan = q.scan();
        assert_eq!(scan.len(), 31);
        let mut counts = [0usize; 3];
        for r in scan {
            counts[r.tenant] += 1;
        }
        assert_eq!(counts, [17, 5, 9]);
    }

    #[test]
    fn drained_tenant_rejoins_the_round_cleanly() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 64, 32);
        backlog(&mut q, 0, 1);
        backlog(&mut q, 1, 2);
        q.scan();
        assert_eq!(q.take(0).tenant, 0, "tenant 0 drains");
        q.scan();
        assert_eq!(q.take(0).tenant, 1);
        backlog(&mut q, 0, 1);
        // Tenant 1's last pick was uncontended (tenant 0 had drained), so
        // it owes nothing; the round order — tenant 1 joined first —
        // decides, and the re-backlogged tenant 0 joins at the back.
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weights_are_rejected() {
        WeightedFair::new(vec![1.0, 0.0], 8, 4);
    }

    #[test]
    fn expire_drains_dead_prefixes_and_keeps_the_round_consistent() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 64, 32);
        // Tenant 0: two old requests and one fresh; tenant 1: one old
        // request but no deadline.
        q.admit(rq(0, 0.0));
        q.admit(rq(0, 0.5));
        q.admit(rq(1, 0.0));
        q.admit(rq(0, 9.5));
        let mut expired = Vec::new();
        q.expire(10.0, &[Some(2.0), None], &mut expired);
        assert_eq!(expired, vec![rq(0, 0.0), rq(0, 0.5)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.backlog(0), 1);
        assert_eq!(q.backlog(1), 1);
        // Both tenants still alternate cleanly — no phantom round slots.
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn expiring_a_whole_tenant_leaves_the_round() {
        let mut q = WeightedFair::new(vec![1.0, 1.0], 64, 32);
        backlog(&mut q, 0, 2);
        backlog(&mut q, 1, 2);
        let mut expired = Vec::new();
        // Tenant 0's entire backlog is dead; tenant 1 is immortal.
        q.expire(1e6, &[Some(1.0), None], &mut expired);
        assert_eq!(expired.len(), 2);
        assert_eq!(q.backlog(0), 0);
        assert_eq!(q.len(), 2);
        // The drained tenant re-admits cleanly at the back of the round,
        // and the two tenants interleave from there.
        assert!(q.admit(rq(0, 1e6)));
        let order: Vec<usize> = q.scan().iter().map(|r| r.tenant).collect();
        assert_eq!(order, vec![1, 0, 1]);
        // Expiry charged no service: immediate alternation once both
        // contend again is preserved via take() bookkeeping.
        assert_eq!(q.take(0).tenant, 1);
    }
}

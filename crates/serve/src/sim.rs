//! The discrete-event traffic simulator.
//!
//! # Event model
//!
//! A binary-heap event queue advances simulated time (`now: f64` seconds;
//! ties broken by a monotone sequence number, so replays are bit-stable).
//! Five event kinds drive the simulation:
//!
//! - **`Arrival`** — a tenant's request arrives. It is offered to the
//!   configured [`crate::sched::SchedPolicy`] (refusals — shared queue
//!   full, or a per-tenant quota exhausted — are dropped and counted per
//!   tenant, never silently lost) and schedules the tenant's next arrival
//!   while offered load remains.
//! - **`IngestDone`** (pipelined mode only) — a request's graph-delta
//!   upload finished on a board's DMA engine. The request enters the
//!   fabric if it is idle, otherwise parks in the board's staging buffer.
//! - **`FabricDone`** (pipelined mode only) — a board's fabric finished
//!   preprocessing a request. The subgraph hand-off queues for the DMA
//!   engine, and any staged request acquires the fabric immediately.
//! - **`MigrationDone`** — the outbound switch leg of a cross-board
//!   migration finished: the **source** board's DMA engine stops reading
//!   the graph out of its DRAM and frees (in pipelined mode it
//!   immediately drains any waiting hand-off). The destination side needs
//!   no event of its own — the migration is just an ingest whose transfer
//!   time prices the switch leg plus any host top-up, so the existing
//!   `IngestDone`/`ServiceDone` flow completes it.
//! - **`ServiceDone`** — a request completed (in serial mode: the whole
//!   reconfig + upload + preprocess + hand-off interval; in pipelined
//!   mode: the hand-off transfer). Latency is recorded and the board slot
//!   frees.
//!
//! # Cross-board migration
//!
//! With [`ServeConfig::migrate`] enabled, a migration is an **ingest
//! whose source is a peer board's DRAM**: when a request lands on a board
//! where its tenant's graph is not resident and some peer still holds a
//! copy (with an idle DMA engine), the warm prefix crosses the PCIe
//! switch at peer-to-peer bandwidth
//! ([`agnn_hw::shell::PcieSwitchModel`]) and only growth the peer never
//! saw re-crosses the host link. The transfer is priced on **both**
//! boards' DMA resources — the destination's for the whole ingest, the
//! source's for the switch leg (released by `MigrationDone`) — and
//! pipelines behind each fabric like any other ingest.
//! [`MigratePolicy::PeerRehydrate`] enables exactly that rehydration
//! path; [`MigratePolicy::SplitHot`] additionally lets the front request
//! claim an idle board (a `Placement::Migrating` outcome) once every
//! affine board is busy and the queue outgrows a threshold, so a hot
//! tenant splits across boards instead of serializing on one.
//! [`MigratePolicy::Off`] never consults peers and reproduces the
//! pre-migration schedules bit-for-bit.
//!
//! # The two board slots
//!
//! Every [`BoardPool`] board exposes two in-flight slots mirroring the
//! VPK180 shell's independent engines: the **DMA slot** (PCIe — at most
//! one transfer in flight, an ingest or a subgraph hand-off) and the
//! **fabric slot** (UPE + SCR — at most one request preprocessing;
//! reconfiguration stalls are charged here, at fabric acquisition).
//!
//! With [`ServeConfig::overlap`] **off** (the default), a dispatched
//! request holds both slots for its whole staged timeline — stages run
//! back to back, exactly the monolithic `AutoGnn::serve` lifecycle.
//!
//! With `overlap` **on**, the slots are scheduled independently: a board
//! admits the next request's ingest as soon as its DMA engine frees, so a
//! graph delta lands in the second staging buffer
//! ([`agnn_hw::shell::DELTA_BUFFERS`]) while the previous batch occupies
//! the fabric, and the finished subgraph streams out under the next
//! request's preprocessing. The admission queue and the dispatch/placement
//! policies are untouched — only the meaning of "board free" narrows from
//! "fully idle" to "can accept an ingest".
//!
//! # The scheduler seam
//!
//! The admission/dispatch core lives behind [`crate::sched::SchedPolicy`]
//! ([`ServeConfig::scheduler`] picks the implementation). The event loop
//! delegates exactly three decisions to it:
//!
//! 1. **Admission** — an `Arrival` calls `admit`; a refusal is the drop
//!    path (counted against the arriving tenant).
//! 2. **Offer order** — each dispatch pass calls `scan` and hands the
//!    ordered view to placement ([`select_dispatch`]) and the
//!    [`DispatchPolicy`]; the chosen *scan position* is then removed with
//!    `take`. Under [`crate::sched::SchedKind::Fifo`] the scan order is
//!    arrival order, so placement/dispatch see exactly the pre-refactor
//!    queue; under weighted fair queueing the order is the deficit-round-
//!    robin fair schedule — placement reads the scheduler's preference as
//!    a hint and the dispatch policy may still batch around it (the
//!    scheduler charges the picked tenant's deficit).
//! 3. **Reconfiguration gating** — before a board pays an ICAP stall
//!    (serial dispatch, or fabric acquisition in pipelined mode), the
//!    loop asks `allow_reconfig`; [`crate::sched::SloAware`] closes that
//!    gate while the tenant's predicted p99 clears its SLO budget.
//!    Completions feed back through `on_complete`.
//!
//! **The Fifo-equivalence invariant:** with the default
//! [`crate::sched::SchedKind::Fifo`] every one of those calls maps
//! one-to-one onto the old baked-in `VecDeque` operation (admit =
//! bounded `push_back`, scan = the queue itself, take = `remove`,
//! `allow_reconfig` = always) — so every golden trace digest from PR 1–4
//! reproduces bit-for-bit, and the CI perf baselines survive the
//! refactor unchanged. `tests/serve_traffic.rs` pins this.
//!
//! # Why a 1-board serial pool is the PR 1 simulator
//!
//! In serial mode the two slots are held and released together, so a
//! single-board pool performs exactly the PR 1 sequence of
//! dispatch/complete events with identical prices — the same schedule,
//! latencies and trace digest bit-for-bit (pinned in
//! `tests/serve_traffic.rs`). Perf numbers therefore stay comparable
//! across the whole trajectory, which is what the CI `bench-smoke` gate
//! relies on.
//!
//! # Tracing
//!
//! [`TrafficSim::run_traced`] narrates the run into a
//! [`crate::trace::TraceSink`] as complete spans — the simulator is
//! analytic, so a stage's begin and end are both known when it is
//! scheduled. The span model (one track per board resource, a queue
//! track, counters for queue depth and residency) lives in
//! [`crate::trace`]; the emission sites here are:
//!
//! - **dispatch** — the request's queue span (arrival → dispatch), a
//!   fresh per-run request id, and in serial mode the whole back-to-back
//!   reconfig/ingest/preprocess/hand-off timeline at once;
//! - **fabric acquisition** (pipelined) — the ICAP stall and
//!   preprocessing spans;
//! - **hand-off start** (pipelined) — the DMA hand-off span;
//! - **migration dispatch** — the source board's outbound DMA leg;
//! - **admission/dispatch queue transitions** — queue-depth counter
//!   samples; dispatch also samples the board's resident DRAM bytes.
//!
//! Sinks are write-only, so tracing cannot perturb the schedule: a run
//! with any sink produces bit-for-bit the [`crate::trace::NullSink`]
//! report and the pinned golden digests (the digest-equivalence
//! invariant, proptested in `tests/serve_traffic.rs`). [`TrafficSim::run`]
//! itself measures the event loop — wall-clock seconds and events
//! processed land in [`TrafficReport::sim`] for the CI sim-speed gate.
//!
//! Every per-request price — upload delta, preprocessing, hand-off,
//! reconfiguration stall, inference tail — comes from the same models
//! `AutoGnn::serve` uses, via the analytic staged path
//! ([`BoardPool::service_secs`]), so the simulator replays hundreds of
//! thousands of requests in milliseconds.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

use agnn_cost::{CostModel, ReconfigPolicy, Workload};
use agnn_gnn::timing::GpuInferenceModel;
use agnn_hw::HwConfig;

use crate::metrics::{
    CompletedRequest, DepthTimeline, LatencyHistogram, RequestLatency, SimPerf, StageHistograms,
    StallBreakdown, TenantStats, TrafficReport,
};
use crate::pool::{BoardPool, MigratePolicy, PlacementPolicy};
use crate::sched::{Request, SchedKind, SchedPolicy};
use crate::tenant::TenantSpec;
use crate::trace::{
    BoardResource, CounterKind, CounterSample, NullSink, Span, SpanKind, TraceSink, Track,
};

/// How the scheduler picks the next request and pays reconfigurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Strict arrival order; the runtime's per-request threshold policy
    /// decides reconfigurations — interleaved tenants with different
    /// optimal bitstreams thrash the ICAP.
    Fifo,
    /// Serves queued requests whose optimal bitstream matches the one
    /// currently programmed first (in arrival order), switching only when
    /// none match — amortizing each `ReconfigEvent` over a whole batch. A
    /// starvation guard dispatches the front request once it has waited
    /// `max_queue_delay_secs`.
    ReconfigAware {
        /// Longest a request may be overtaken before it is served anyway.
        max_queue_delay_secs: f64,
    },
}

impl DispatchPolicy {
    /// The reconfig-aware policy with a 30-second starvation guard.
    pub fn reconfig_aware() -> Self {
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs: 30.0,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Deployment seed: drives every arrival stream.
    pub seed: u64,
    /// Admission-queue capacity; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Dispatch policy (which queued request a board serves next).
    pub policy: DispatchPolicy,
    /// Admission/dispatch scheduler: the bounded FIFO queue
    /// ([`SchedKind::Fifo`], bit-for-bit the pre-refactor schedules),
    /// weighted fair queueing with per-tenant quotas
    /// ([`SchedKind::WeightedFair`]), or SLO-driven reconfiguration
    /// gating ([`SchedKind::SloAware`]).
    pub scheduler: SchedKind,
    /// Number of simulated boards in the pool.
    pub boards: usize,
    /// Placement policy (which board an admitted request runs on).
    pub placement: PlacementPolicy,
    /// Cross-board migration policy: whether a cold tenant's graph may be
    /// pulled from a peer board's DRAM over the PCIe switch (and whether
    /// a hot tenant may proactively split across boards).
    /// [`MigratePolicy::Off`] reproduces the pre-migration schedules
    /// bit-for-bit.
    pub migrate: MigratePolicy,
    /// Pipeline boards' DMA against fabric compute: ingest the next
    /// request (double-buffered graph deltas) and stream finished
    /// subgraphs out while the fabric preprocesses. `false` replays the
    /// serial staged lifecycle bit-for-bit against the PR 1/PR 2 digests.
    pub overlap: bool,
    /// Per-board compute speed multiplier: preprocessing runs this many
    /// times faster, while ICAP reprogramming and PCIe transfers keep
    /// their physical rates. Models "one board N× as fast" comparisons
    /// against an N-board pool.
    pub compute_speedup: f64,
    /// Offered load: total arrivals generated before the queue drains.
    pub total_requests: u64,
    /// Drift quantization step in simulated seconds (bitstream choices are
    /// re-evaluated once per step per tenant).
    pub drift_step_secs: f64,
    /// Minimum predicted relative gain before a reconfiguration is paid.
    pub min_gain: f64,
    /// Queue-depth timeline decimation stride.
    pub depth_stride: u64,
    /// Keep a per-request completion log in the report (off by default —
    /// costs memory proportional to the trace).
    pub log_requests: bool,
}

impl ServeConfig {
    /// Every knob at its deployment default — the single source of truth
    /// for field defaults. `Default` and the named presets all delegate
    /// here, so a new knob cannot silently diverge between constructors.
    pub fn base() -> Self {
        ServeConfig {
            seed: 0,
            queue_capacity: 256,
            policy: DispatchPolicy::Fifo,
            scheduler: SchedKind::Fifo,
            boards: 1,
            placement: PlacementPolicy::LeastLoaded,
            migrate: MigratePolicy::Off,
            overlap: false,
            compute_speedup: 1.0,
            total_requests: 10_000,
            drift_step_secs: 3_600.0,
            min_gain: 0.10,
            depth_stride: 64,
            log_requests: false,
        }
    }

    /// The reconfig-aware deployment preset (30-second starvation guard).
    pub fn reconfig_aware() -> Self {
        ServeConfig {
            policy: DispatchPolicy::reconfig_aware(),
            ..Self::base()
        }
    }

    /// The pipelined preset: reconfig-aware dispatch with DMA/fabric
    /// overlap enabled.
    pub fn pipelined() -> Self {
        ServeConfig {
            overlap: true,
            ..Self::reconfig_aware()
        }
    }

    /// The weighted-fair preset: deficit-round-robin per-tenant queues
    /// with the default quota ([`SchedKind::weighted_fair`]) over the
    /// pipelined lifecycle, dispatched in **strict scan order**
    /// ([`DispatchPolicy::Fifo`]). Strict order is deliberate: the fair
    /// schedule *is* the scan order, and reconfig-aware batching would
    /// override it — letting a board serve the aggressor's matching
    /// bitstream for up to its starvation guard while victims wait, which
    /// is exactly the isolation WFQ exists to provide.
    pub fn weighted_fair() -> Self {
        ServeConfig {
            scheduler: SchedKind::weighted_fair(),
            policy: DispatchPolicy::Fifo,
            ..Self::pipelined()
        }
    }

    /// The SLO-aware preset: FIFO-order queueing whose reconfigurations
    /// are gated on predicted p99 vs the tenants' SLO budgets
    /// ([`SchedKind::slo_aware`]), on top of the pipelined deployment.
    pub fn slo_aware() -> Self {
        ServeConfig {
            scheduler: SchedKind::slo_aware(),
            ..Self::pipelined()
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// A dispatched request flowing through a board's staged pipeline
/// (pipelined mode only); the timestamps accumulate as stages complete.
#[derive(Debug, Clone, Copy)]
struct Pipelined {
    tenant: usize,
    /// Per-run monotone request id linking this request's trace spans.
    trace_id: u64,
    arrival_secs: f64,
    dispatch_secs: f64,
    workload: Workload,
    best: HwConfig,
    upload_secs: f64,
    ingest_done_secs: f64,
    fabric_start_secs: f64,
    fabric_done_secs: f64,
    reconfig_secs: f64,
    preprocess_secs: f64,
    host_bytes: u64,
    switch_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A request of `tenant` arrives.
    Arrival { tenant: usize },
    /// Board `board` finished a graph-delta ingest (pipelined mode).
    IngestDone { board: usize },
    /// Board `board`'s fabric finished preprocessing (pipelined mode).
    FabricDone { board: usize },
    /// Board `board`'s **outbound** switch leg of a migration finished:
    /// its DMA engine stops reading the graph out of DRAM and frees.
    MigrationDone { board: usize },
    /// Board `board` completes `tenant`'s request with `latency`.
    ServiceDone {
        tenant: usize,
        board: usize,
        arrival_secs: f64,
        latency: RequestLatency,
        host_bytes: u64,
        switch_bytes: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event;
        // the sequence number breaks time ties deterministically.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FNV-1a accumulator for the order-sensitive event-trace digest.
#[derive(Debug, Clone, Copy)]
struct TraceDigest(u64);

impl TraceDigest {
    fn new() -> Self {
        TraceDigest(0xCBF2_9CE4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        let mut h = self.0;
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// The multi-tenant traffic simulator over a board pool.
#[derive(Debug)]
pub struct TrafficSim {
    tenants: Vec<TenantSpec>,
    config: ServeConfig,
    pool: BoardPool,
}

/// Mutable tallies shared by the serial and pipelined completion paths.
struct RunStats {
    tenants: Vec<TenantStats>,
    /// Per-tenant SLO budgets ([`TenantSpec::slo_secs`]); violations are
    /// counted here, independent of the scheduler in force.
    slo: Vec<Option<f64>>,
    stages: StageHistograms,
    requests: Vec<CompletedRequest>,
    /// Aggregate stall attribution over completed requests (each
    /// request's five components sum to its end-to-end latency).
    stall: StallBreakdown,
    reconfigs: u64,
    reconfig_secs: f64,
    overlap_secs: f64,
    last_board_free: f64,
}

impl RunStats {
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        tenant: usize,
        arrival_secs: f64,
        latency: RequestLatency,
        host_bytes: u64,
        switch_bytes: u64,
        log: bool,
    ) {
        let budget = self.slo[tenant];
        let t = &mut self.tenants[tenant];
        t.completed += 1;
        t.latency.record(latency.total());
        t.queue_wait.record(latency.queue_secs);
        if budget.is_some_and(|budget| latency.total() > budget) {
            t.slo_violations += 1;
        }
        t.board_secs += latency.board_secs();
        self.stages.record(&latency);
        self.stall.accumulate(&StallBreakdown::of(&latency));
        if log {
            self.requests.push(CompletedRequest {
                tenant,
                arrival_secs,
                latency,
                host_bytes,
                switch_bytes,
            });
        }
    }
}

/// Per-board pipeline payloads (pipelined mode only): the requests
/// currently ingesting / staged / preprocessing and the hand-offs waiting
/// for the DMA engine. Slot occupancy and busy horizons live on the
/// [`BoardPool`] boards themselves — the pool's `stage`/`unstage` and
/// `add_pending_handoffs` counters mirror these queues' lengths.
struct Pipeline {
    ingesting: Vec<Option<Pipelined>>,
    /// FIFO of ingested requests waiting for the fabric, at most
    /// [`crate::pool::STAGING_DEPTH`] deep (the pool enforces the bound
    /// at admission).
    staged: Vec<VecDeque<Pipelined>>,
    in_fabric: Vec<Option<Pipelined>>,
    handoffs: Vec<VecDeque<Pipelined>>,
}

impl Pipeline {
    fn new(boards: usize) -> Self {
        Pipeline {
            ingesting: vec![None; boards],
            staged: vec![VecDeque::new(); boards],
            in_fabric: vec![None; boards],
            handoffs: vec![VecDeque::new(); boards],
        }
    }
}

impl TrafficSim {
    /// A simulator over `tenants` with `config`. The board pool is built
    /// here (one forked `AutoGnn` runtime per board) and reset at the
    /// start of every [`run`](TrafficSim::run), so one simulator can
    /// replay many deterministic simulations.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, the queue capacity or board count is
    /// zero, or the compute speedup is not a positive finite number.
    pub fn new(tenants: Vec<TenantSpec>, config: ServeConfig) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.compute_speedup > 0.0 && config.compute_speedup.is_finite(),
            "compute speedup must be positive and finite"
        );
        let pool = BoardPool::new(
            config.boards,
            tenants[0].params,
            ReconfigPolicy {
                min_gain: config.min_gain,
            },
            tenants.len(),
        );
        TrafficSim {
            tenants,
            config,
            pool,
        }
    }

    /// Number of boards in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.size()
    }

    /// Runs the simulation to completion and reports. Takes `&mut self`
    /// because the pool carries mutable per-board state (bitstreams,
    /// residency, busy slots); the pool is reset first, so repeated runs
    /// of the same simulator are identical.
    pub fn run(&mut self) -> TrafficReport {
        self.run_traced(&mut NullSink)
    }

    /// [`run`](TrafficSim::run) with the event loop narrating spans and
    /// counters into `sink` (see the [module docs](self) for the emission
    /// sites). Sinks are write-only, so the report — digest included — is
    /// bit-for-bit the untraced run's.
    pub fn run_traced(&mut self, sink: &mut dyn TraceSink) -> TrafficReport {
        let wall_start = Instant::now();
        let cfg = self.config;
        let TrafficSim { tenants, pool, .. } = self;
        pool.reset();
        // Multi-board (or pipelined) runs tag reconfiguration and
        // completion digest words with the board index; the single-board
        // serial layout is frozen so PR 1 digests stay reproducible.
        let tag_boards = pool.size() > 1 || cfg.overlap;
        let pcie = pool.pcie();
        let switch = pool.switch();
        let inference_model = GpuInferenceModel::default();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time: f64, kind: EventKind| {
            heap.push(Event { time, seq, kind });
            seq += 1;
        };

        // Independent seeded arrival streams; the first arrival of every
        // tenant primes the heap.
        let mut rngs: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| t.arrival_rng(cfg.seed, i))
            .collect();
        let mut offered = 0u64;
        for (i, t) in tenants.iter().enumerate() {
            if offered < cfg.total_requests {
                let at = t.arrival.next_after(0.0, &mut rngs[i]);
                push(&mut heap, at, EventKind::Arrival { tenant: i });
                offered += 1;
            }
        }

        // The pluggable admission/dispatch scheduler (see the module
        // docs' "scheduler seam"): `Fifo` is the pre-refactor bounded
        // queue bit-for-bit.
        let mut sched = cfg.scheduler.build(tenants, cfg.queue_capacity);
        // (drift bucket, best config) per tenant — shared across boards:
        // every board searches the identical bitstream library.
        let mut best_cache: Vec<Option<(u64, HwConfig)>> = vec![None; tenants.len()];

        let mut stats = RunStats {
            tenants: tenants
                .iter()
                .map(|t| TenantStats {
                    name: t.name.clone(),
                    latency: LatencyHistogram::default(),
                    ..TenantStats::default()
                })
                .collect(),
            slo: tenants.iter().map(|t| t.slo_secs).collect(),
            stages: StageHistograms::default(),
            requests: Vec::new(),
            stall: StallBreakdown::default(),
            reconfigs: 0,
            reconfig_secs: 0.0,
            overlap_secs: 0.0,
            last_board_free: 0.0,
        };
        let mut depth = DepthTimeline::with_stride(cfg.depth_stride);
        let mut digest = TraceDigest::new();
        let mut pipe = Pipeline::new(pool.size());
        // Self-metrics (events popped, wall clock) and the monotone
        // request id spans carry — none of it feeds back into the
        // schedule.
        let mut events = 0u64;
        let mut next_trace_id = 0u64;

        while let Some(event) = heap.pop() {
            events += 1;
            let now = event.time;
            match event.kind {
                EventKind::Arrival { tenant } => {
                    digest.push(0xA1);
                    digest.push(tenant as u64);
                    digest.push(now.to_bits());
                    // Keep the tenant's stream flowing while load remains.
                    if offered < cfg.total_requests {
                        let at = tenants[tenant].arrival.next_after(now, &mut rngs[tenant]);
                        push(&mut heap, at, EventKind::Arrival { tenant });
                        offered += 1;
                    }
                    // Bounded admission: the scheduler's refusal (shared
                    // queue full, or a per-tenant quota exhausted) is the
                    // drop path — counted, never silently lost.
                    if !sched.admit(Request {
                        tenant,
                        arrival_secs: now,
                    }) {
                        stats.tenants[tenant].dropped += 1;
                        digest.push(0xD0);
                        continue;
                    }
                    depth.record(now, sched.len());
                    if sink.enabled() {
                        sink.counter(CounterSample {
                            kind: CounterKind::QueueDepth,
                            time_secs: now,
                            value: sched.len() as f64,
                        });
                    }
                }
                EventKind::IngestDone { board } => {
                    let mut rq = pipe.ingesting[board]
                        .take()
                        .expect("ingest completion without an ingest in flight");
                    pool.release_dma(board);
                    rq.ingest_done_secs = now;
                    digest.push(0x16);
                    digest.push(rq.tenant as u64);
                    digest.push(board as u64);
                    if pool.fabric_free(board) && pipe.staged[board].is_empty() {
                        start_fabric(
                            rq,
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &*sched,
                            &mut digest,
                            &cfg,
                            sink,
                            &mut push,
                            &mut heap,
                        );
                    } else {
                        pool.stage(board);
                        pipe.staged[board].push_back(rq);
                    }
                    // The freed DMA engine drains any waiting hand-off.
                    start_handoff(
                        board,
                        now,
                        pool,
                        &mut pipe,
                        &mut stats,
                        &pcie,
                        &inference_model,
                        tenants,
                        sink,
                        &mut push,
                        &mut heap,
                    );
                }
                EventKind::FabricDone { board } => {
                    let mut rq = pipe.in_fabric[board]
                        .take()
                        .expect("fabric completion without a request in the fabric");
                    pool.release_fabric(board);
                    rq.fabric_done_secs = now;
                    digest.push(0xFB);
                    digest.push(rq.tenant as u64);
                    digest.push(board as u64);
                    pipe.handoffs[board].push_back(rq);
                    pool.add_pending_handoffs(board, 1);
                    start_handoff(
                        board,
                        now,
                        pool,
                        &mut pipe,
                        &mut stats,
                        &pcie,
                        &inference_model,
                        tenants,
                        sink,
                        &mut push,
                        &mut heap,
                    );
                    // The earliest staged request acquires the fabric
                    // immediately.
                    if let Some(staged) = pipe.staged[board].pop_front() {
                        pool.unstage(board);
                        start_fabric(
                            staged,
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &*sched,
                            &mut digest,
                            &cfg,
                            sink,
                            &mut push,
                            &mut heap,
                        );
                    }
                }
                EventKind::MigrationDone { board } => {
                    // The outbound switch leg finished: the source board's
                    // DMA engine stops streaming the graph out and frees.
                    pool.release_dma(board);
                    digest.push(0x37);
                    digest.push(board as u64);
                    if cfg.overlap {
                        start_handoff(
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &pcie,
                            &inference_model,
                            tenants,
                            sink,
                            &mut push,
                            &mut heap,
                        );
                    }
                }
                EventKind::ServiceDone {
                    tenant,
                    board,
                    arrival_secs,
                    latency,
                    host_bytes,
                    switch_bytes,
                } => {
                    stats.complete(
                        tenant,
                        arrival_secs,
                        latency,
                        host_bytes,
                        switch_bytes,
                        cfg.log_requests,
                    );
                    // Latency feedback for SLO-aware scheduling.
                    sched.on_complete(tenant, &latency, now);
                    digest.push(0x5D);
                    digest.push(tenant as u64);
                    digest.push(latency.total().to_bits());
                    if tag_boards {
                        digest.push(board as u64);
                    }
                    if cfg.overlap {
                        pool.release_dma(board);
                        pool.complete(board);
                        start_handoff(
                            board,
                            now,
                            pool,
                            &mut pipe,
                            &mut stats,
                            &pcie,
                            &inference_model,
                            tenants,
                            sink,
                            &mut push,
                            &mut heap,
                        );
                    } else {
                        pool.release(board);
                    }
                    stats.last_board_free = now;
                }
            }

            // Dispatch while boards are free and work waits. Each pass
            // offers the scheduler's scan order to placement; placement
            // and the dispatch policy pick the (request, board) pair.
            while pool.any_free() && !sched.is_empty() {
                let Some(placement) =
                    select_dispatch(tenants, &cfg, sched.scan(), &mut best_cache, pool, now)
                else {
                    break;
                };
                let (position, board) = match placement {
                    Placement::Serve { position, board } => (position, board),
                    Placement::Migrating { position, board } => {
                        // SplitHot overflow: the queue outgrew its
                        // threshold with every affine board busy, so the
                        // front request claims an idle board instead.
                        digest.push(0x51);
                        digest.push(board as u64);
                        (position, board)
                    }
                };
                let request = sched.take(position);
                depth.record(now, sched.len());
                // The request id its spans share; the queue span closes
                // here (arrival → dispatch — the admission scheduler's
                // share of the latency, cf. the sched module docs).
                let trace_id = next_trace_id;
                next_trace_id += 1;
                if sink.enabled() {
                    sink.counter(CounterSample {
                        kind: CounterKind::QueueDepth,
                        time_secs: now,
                        value: sched.len() as f64,
                    });
                    sink.span(Span {
                        track: Track::Queue,
                        kind: SpanKind::Queue,
                        tenant: request.tenant,
                        request: trace_id,
                        begin_secs: request.arrival_secs,
                        end_secs: now,
                    });
                }
                let tenant = &tenants[request.tenant];
                let workload = tenant.workload_at(now, cfg.drift_step_secs);
                let best = cached_best(
                    &mut best_cache,
                    request.tenant,
                    tenant,
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                let coo_bytes = workload.coo_bytes();

                // The ingest source: a cold tenant pulls its graph from a
                // peer board's DRAM over the PCIe switch when the policy
                // allows and an idle-DMA peer holds a copy; everything
                // else (warm or no peer) ingests from the host as before.
                let source = if cfg.migrate.pulls_from_peers()
                    && pool.resident_bytes(board, request.tenant) == 0
                {
                    pool.peer_source(request.tenant, board)
                } else {
                    None
                };
                let (host_bytes, switch_bytes, switch_secs) = match source {
                    Some(source) => {
                        let transfer =
                            pool.migrate_ingest(board, source, request.tenant, coo_bytes);
                        let switch_secs = switch.transfer_secs(transfer.switch_bytes);
                        // The outbound leg holds the source board's DMA
                        // engine until `MigrationDone` releases it.
                        pool.occupy_dma(source, now, now + switch_secs);
                        if cfg.overlap && !pool.fabric_free(source) {
                            stats.overlap_secs +=
                                ((now + switch_secs).min(pool.fabric_until(source)) - now).max(0.0);
                        }
                        digest.push(0x39);
                        digest.push(request.tenant as u64);
                        digest.push(board as u64);
                        digest.push(source as u64);
                        if sink.enabled() {
                            sink.span(Span {
                                track: Track::Board {
                                    board: source,
                                    resource: BoardResource::Dma,
                                },
                                kind: SpanKind::MigrateOut,
                                tenant: request.tenant,
                                request: trace_id,
                                begin_secs: now,
                                end_secs: now + switch_secs,
                            });
                        }
                        push(
                            &mut heap,
                            now + switch_secs,
                            EventKind::MigrationDone { board: source },
                        );
                        (transfer.host_bytes, transfer.switch_bytes, switch_secs)
                    }
                    None => (pool.upload_delta(board, request.tenant, coo_bytes), 0, 0.0),
                };
                if sink.enabled() {
                    // Residency moved (upload delta or migrated prefix):
                    // sample the board's DRAM occupancy.
                    sink.counter(CounterSample {
                        kind: CounterKind::ResidentBytes { board },
                        time_secs: now,
                        value: pool.resident_total_bytes(board) as f64,
                    });
                }

                if cfg.overlap {
                    // Pipelined: occupy only the DMA engine; the fabric
                    // (and the reconfiguration decision) waits until the
                    // delta has landed.
                    let upload_secs = switch_secs + pcie.transfer_secs(host_bytes);
                    let done = now + upload_secs;
                    pool.occupy_dma(board, now, done);
                    if !pool.fabric_free(board) {
                        stats.overlap_secs += (done.min(pool.fabric_until(board)) - now).max(0.0);
                    }
                    digest.push(0x1D);
                    digest.push(request.tenant as u64);
                    digest.push(board as u64);
                    if sink.enabled() {
                        sink.span(Span {
                            track: Track::Board {
                                board,
                                resource: BoardResource::Dma,
                            },
                            kind: SpanKind::Ingest,
                            tenant: request.tenant,
                            request: trace_id,
                            begin_secs: now,
                            end_secs: done,
                        });
                    }
                    pipe.ingesting[board] = Some(Pipelined {
                        tenant: request.tenant,
                        trace_id,
                        arrival_secs: request.arrival_secs,
                        dispatch_secs: now,
                        workload,
                        best,
                        upload_secs,
                        ingest_done_secs: done,
                        fabric_start_secs: done,
                        fabric_done_secs: done,
                        reconfig_secs: 0.0,
                        preprocess_secs: 0.0,
                        host_bytes,
                        switch_bytes,
                    });
                    push(&mut heap, done, EventKind::IngestDone { board });
                    continue;
                }

                // Serial: the board pays every stage back to back and both
                // slots stay held — the PR 1/PR 2 schedule bit-for-bit.
                // The scheduler may gate the reconfiguration (SLO-aware
                // policies keep a within-budget tenant on the current
                // bitstream); `Fifo` never does.
                let mut stall = 0.0;
                if sched.allow_reconfig(request.tenant, now) {
                    if let Some(secs) = pool.maybe_reconfigure(board, &workload, best) {
                        stall = secs;
                        stats.reconfigs += 1;
                        stats.reconfig_secs += stall;
                        stats.tenants[request.tenant].reconfigs += 1;
                        digest.push(0x2C);
                        if tag_boards {
                            digest.push(board as u64);
                        }
                    }
                }

                // Price the staged lifecycle analytically under the
                // board's (possibly new) configuration. The ingest leg
                // prices the host bytes; a migration adds its switch leg
                // on top (the peer prefix crossing board-to-board).
                let staged = pool.service_secs(board, &workload, host_bytes);
                let upload_secs = switch_secs + staged.ingest;
                let preprocess_secs = staged.preprocess.total() / cfg.compute_speedup;
                let download_secs = staged.compute;
                let inference_secs = inference_model.analytic_inference_secs(
                    &tenant.gnn,
                    workload.subgraph_nodes(),
                    workload.subgraph_edges(),
                );

                let done = now + stall + upload_secs + preprocess_secs + download_secs;
                pool.occupy(board, now, done);
                if sink.enabled() {
                    // Serial mode runs the stages back to back under both
                    // slots, so the whole timeline is known at dispatch:
                    // ICAP stall, then the DMA ingest, the fabric pass,
                    // and the hand-off closing at `done`.
                    let span = |resource, kind, begin_secs, end_secs| Span {
                        track: Track::Board { board, resource },
                        kind,
                        tenant: request.tenant,
                        request: trace_id,
                        begin_secs,
                        end_secs,
                    };
                    if stall > 0.0 {
                        sink.span(span(
                            BoardResource::Icap,
                            SpanKind::Reconfig,
                            now,
                            now + stall,
                        ));
                    }
                    let ingest_start = now + stall;
                    sink.span(span(
                        BoardResource::Dma,
                        SpanKind::Ingest,
                        ingest_start,
                        ingest_start + upload_secs,
                    ));
                    sink.span(span(
                        BoardResource::Fabric,
                        SpanKind::Preprocess,
                        ingest_start + upload_secs,
                        ingest_start + upload_secs + preprocess_secs,
                    ));
                    sink.span(span(
                        BoardResource::Dma,
                        SpanKind::Handoff,
                        done - download_secs,
                        done,
                    ));
                }
                push(
                    &mut heap,
                    done,
                    EventKind::ServiceDone {
                        tenant: request.tenant,
                        board,
                        arrival_secs: request.arrival_secs,
                        latency: RequestLatency {
                            queue_secs: now - request.arrival_secs,
                            reconfig_secs: stall,
                            upload_secs,
                            stage_wait_secs: 0.0,
                            preprocess_secs,
                            download_secs,
                            inference_secs,
                        },
                        host_bytes,
                        switch_bytes,
                    },
                );
            }
        }

        TrafficReport {
            tenants: stats.tenants,
            duration_secs: stats.last_board_free,
            reconfigs: stats.reconfigs,
            reconfig_secs: stats.reconfig_secs,
            queue_depth: depth,
            boards: pool.stats(),
            stages: stats.stages,
            overlap_secs: stats.overlap_secs,
            requests: stats.requests,
            stall: stats.stall,
            sim: SimPerf {
                wall_secs: wall_start.elapsed().as_secs_f64(),
                events,
            },
            trace_digest: digest.0,
        }
    }
}

/// Moves an ingested request into board `board`'s fabric at `now`: pays
/// the (deferred) reconfiguration decision — unless the scheduler's SLO
/// gate withholds it — prices preprocessing under the resulting
/// configuration, and schedules `FabricDone`.
#[allow(clippy::too_many_arguments)]
fn start_fabric(
    mut rq: Pipelined,
    board: usize,
    now: f64,
    pool: &mut BoardPool,
    pipe: &mut Pipeline,
    stats: &mut RunStats,
    sched: &dyn SchedPolicy,
    digest: &mut TraceDigest,
    cfg: &ServeConfig,
    sink: &mut dyn TraceSink,
    push: &mut impl FnMut(&mut BinaryHeap<Event>, f64, EventKind),
    heap: &mut BinaryHeap<Event>,
) {
    let mut stall = 0.0;
    if sched.allow_reconfig(rq.tenant, now) {
        if let Some(secs) = pool.maybe_reconfigure(board, &rq.workload, rq.best) {
            stall = secs;
            stats.reconfigs += 1;
            stats.reconfig_secs += stall;
            stats.tenants[rq.tenant].reconfigs += 1;
            digest.push(0x2C);
            digest.push(board as u64);
        }
    }
    let preprocess_secs = pool.stage_secs(board, &rq.workload) / cfg.compute_speedup;
    let done = now + stall + preprocess_secs;
    pool.occupy_fabric(board, now, done);
    if sink.enabled() {
        if stall > 0.0 {
            sink.span(Span {
                track: Track::Board {
                    board,
                    resource: BoardResource::Icap,
                },
                kind: SpanKind::Reconfig,
                tenant: rq.tenant,
                request: rq.trace_id,
                begin_secs: now,
                end_secs: now + stall,
            });
        }
        sink.span(Span {
            track: Track::Board {
                board,
                resource: BoardResource::Fabric,
            },
            kind: SpanKind::Preprocess,
            tenant: rq.tenant,
            request: rq.trace_id,
            begin_secs: now + stall,
            end_secs: done,
        });
    }
    // The fabric starting under an in-flight DMA transfer is pipeline
    // overlap (the symmetric case — DMA starting under the fabric — is
    // accounted at the transfer's start).
    if !pool.dma_free(board) {
        stats.overlap_secs += (done.min(pool.dma_until(board)) - now).max(0.0);
    }
    rq.fabric_start_secs = now;
    rq.reconfig_secs = stall;
    rq.preprocess_secs = preprocess_secs;
    pipe.in_fabric[board] = Some(rq);
    push(heap, done, EventKind::FabricDone { board });
}

/// Starts the next queued subgraph hand-off on board `board`'s DMA engine
/// if it is idle, scheduling the request's `ServiceDone`.
#[allow(clippy::too_many_arguments)]
fn start_handoff(
    board: usize,
    now: f64,
    pool: &mut BoardPool,
    pipe: &mut Pipeline,
    stats: &mut RunStats,
    pcie: &agnn_hw::shell::PcieModel,
    inference_model: &GpuInferenceModel,
    tenants: &[TenantSpec],
    sink: &mut dyn TraceSink,
    push: &mut impl FnMut(&mut BinaryHeap<Event>, f64, EventKind),
    heap: &mut BinaryHeap<Event>,
) {
    if !pool.dma_free(board) {
        return;
    }
    let Some(rq) = pipe.handoffs[board].pop_front() else {
        return;
    };
    pool.add_pending_handoffs(board, -1);
    let download_secs = pcie.transfer_secs(rq.workload.subgraph_bytes());
    let done = now + download_secs;
    pool.occupy_dma(board, now, done);
    if sink.enabled() {
        sink.span(Span {
            track: Track::Board {
                board,
                resource: BoardResource::Dma,
            },
            kind: SpanKind::Handoff,
            tenant: rq.tenant,
            request: rq.trace_id,
            begin_secs: now,
            end_secs: done,
        });
    }
    if !pool.fabric_free(board) {
        stats.overlap_secs += (done.min(pool.fabric_until(board)) - now).max(0.0);
    }
    let inference_secs = inference_model.analytic_inference_secs(
        &tenants[rq.tenant].gnn,
        rq.workload.subgraph_nodes(),
        rq.workload.subgraph_edges(),
    );
    let latency = RequestLatency {
        queue_secs: rq.dispatch_secs - rq.arrival_secs,
        reconfig_secs: rq.reconfig_secs,
        upload_secs: rq.upload_secs,
        stage_wait_secs: (rq.fabric_start_secs - rq.ingest_done_secs) + (now - rq.fabric_done_secs),
        preprocess_secs: rq.preprocess_secs,
        download_secs,
        inference_secs,
    };
    push(
        heap,
        done,
        EventKind::ServiceDone {
            tenant: rq.tenant,
            board,
            arrival_secs: rq.arrival_secs,
            latency,
            host_bytes: rq.host_bytes,
            switch_bytes: rq.switch_bytes,
        },
    );
}

/// Where (and how) the next dispatch lands.
enum Placement {
    /// Serve queue `position` on `board` — the request's placement-policy
    /// pick, ingesting from the host or a warm local copy.
    Serve { position: usize, board: usize },
    /// [`MigratePolicy::SplitHot`] overflow: serve queue `position` on
    /// idle `board` even though the request's affine/home board is busy —
    /// the tenant's graph migrates in from a peer when one holds a copy.
    Migrating { position: usize, board: usize },
}

/// The SplitHot fallback when every queued request is waiting for a busy
/// affine/home board: once the queue outgrows the policy threshold, the
/// front request claims the least-loaded free board as a
/// [`Placement::Migrating`] dispatch instead of waiting.
fn split_overflow(cfg: &ServeConfig, queue: &[Request], pool: &BoardPool) -> Option<Placement> {
    let threshold = cfg.migrate.split_threshold()?;
    if queue.len() < threshold {
        return None;
    }
    let board = pool.least_loaded_free()?;
    Some(Placement::Migrating { position: 0, board })
}

/// Picks the next dispatch, or `None` when no placement is currently
/// possible (e.g. every home board of every queued request is busy under
/// [`PlacementPolicy::TenantAffine`] and the migration policy keeps them
/// waiting). `queue` is the scheduler's scan order — arrival order under
/// [`SchedKind::Fifo`], the deficit-round-robin fair order under
/// [`SchedKind::WeightedFair`] — so placement reads the scheduler's
/// preference as a hint and positions index back into the scan.
fn select_dispatch(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &[Request],
    best_cache: &mut [Option<(u64, HwConfig)>],
    pool: &BoardPool,
    now: f64,
) -> Option<Placement> {
    match cfg.placement {
        // The home board of the earliest-arrived dispatchable request
        // serves; the dispatch policy then picks among the requests homed
        // to that board (a home board never serves foreign tenants, so
        // the reconfig-aware scan is restricted to its own backlog).
        PlacementPolicy::TenantAffine => {
            let Some(board) = queue.iter().find_map(|r| {
                let home = tenants[r.tenant].home_board(r.tenant, pool.size());
                pool.is_free(home).then_some(home)
            }) else {
                // Every home board is busy: wait, unless the queue has
                // outgrown the SplitHot threshold.
                return split_overflow(cfg, queue, pool);
            };
            let homed = |r: &Request| tenants[r.tenant].home_board(r.tenant, pool.size()) == board;
            let position =
                pick_for_board(tenants, cfg, queue, best_cache, pool, board, now, &homed)?;
            Some(Placement::Serve { position, board })
        }
        // The least-loaded free board serves; its dispatch policy picks
        // the request — with one board this is exactly the PR 1 scheduler.
        PlacementPolicy::LeastLoaded => {
            let board = pool.least_loaded_free()?;
            let position =
                pick_for_board(tenants, cfg, queue, best_cache, pool, board, now, &|_| true)?;
            Some(Placement::Serve { position, board })
        }
        // Route a request to a board already holding its bitstream. A
        // request whose bitstream lives on a *busy* board waits for it
        // (bounded by the starvation guard) instead of reprogramming an
        // idle board — that restraint is what turns reconfigurations into
        // routing decisions. Only a bitstream no board holds claims the
        // least-loaded free board and pays one switch.
        PlacementPolicy::BitstreamAffine => {
            let max_queue_delay_secs = match cfg.policy {
                // FIFO promises strict arrival order, so the affinity
                // scan must not overtake: placement only picks the front
                // request's board (a zero starvation bound).
                DispatchPolicy::Fifo => 0.0,
                DispatchPolicy::ReconfigAware {
                    max_queue_delay_secs,
                } => max_queue_delay_secs,
            };
            let front = &queue[0];
            if now - front.arrival_secs >= max_queue_delay_secs {
                let front_best = cached_best(
                    best_cache,
                    front.tenant,
                    &tenants[front.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                let board = pool
                    .free_with_config(front_best)
                    .or_else(|| pool.least_loaded_free())?;
                return Some(Placement::Serve { position: 0, board });
            }
            // Pass 1: the earliest request whose optimal bitstream is
            // already programmed on a free board (with one board this is
            // exactly the PR 1 reconfig-aware queue scan).
            for (position, r) in queue.iter().enumerate() {
                let best = cached_best(
                    best_cache,
                    r.tenant,
                    &tenants[r.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                if let Some(board) = pool.free_with_config(best) {
                    return Some(Placement::Serve { position, board });
                }
            }
            // Pass 2: the earliest request whose bitstream no board holds
            // claims the least-loaded free board.
            for (position, r) in queue.iter().enumerate() {
                let best = cached_best(
                    best_cache,
                    r.tenant,
                    &tenants[r.tenant],
                    now,
                    cfg.drift_step_secs,
                    pool,
                );
                if !pool.any_with_config(best) {
                    let board = pool.least_loaded_free()?;
                    return Some(Placement::Serve { position, board });
                }
            }
            // Every queued bitstream is held by a busy board: wait for
            // it — unless the queue has outgrown the SplitHot threshold,
            // in which case the hot tenant splits onto an idle board.
            split_overflow(cfg, queue, pool)
        }
    }
}

/// The queue position `board` serves next under the configured dispatch
/// policy (PR 1's pick, parameterized by the board's bitstream), scanning
/// only requests `eligible` admits — `TenantAffine` placement restricts
/// the scan to the board's own tenants, everything else passes all.
/// `None` when no queued request is eligible.
#[allow(clippy::too_many_arguments)]
fn pick_for_board(
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    queue: &[Request],
    best_cache: &mut [Option<(u64, HwConfig)>],
    pool: &BoardPool,
    board: usize,
    now: f64,
    eligible: &dyn Fn(&Request) -> bool,
) -> Option<usize> {
    let front_pos = queue.iter().position(eligible)?;
    match cfg.policy {
        DispatchPolicy::Fifo => Some(front_pos),
        DispatchPolicy::ReconfigAware {
            max_queue_delay_secs,
        } => {
            let front = &queue[front_pos];
            if now - front.arrival_secs >= max_queue_delay_secs {
                return Some(front_pos);
            }
            let current = pool.config(board);
            queue
                .iter()
                .enumerate()
                .filter(|(_, r)| eligible(r))
                .find(|(_, r)| {
                    cached_best(
                        best_cache,
                        r.tenant,
                        &tenants[r.tenant],
                        now,
                        cfg.drift_step_secs,
                        pool,
                    ) == current
                })
                .map(|(position, _)| position)
                .or(Some(front_pos))
        }
    }
}

/// The library-optimal configuration for a tenant's current drift bucket,
/// memoized per tenant. The workload (and its `powf` drift factors) is only
/// built on a bucket miss — the dispatch scan hits the cache for every
/// queued request inside a drift step. The cache is sound pool-wide: all
/// boards search the same bitstream library.
fn cached_best(
    cache: &mut [Option<(u64, HwConfig)>],
    index: usize,
    tenant: &TenantSpec,
    now: f64,
    step_secs: f64,
    pool: &BoardPool,
) -> HwConfig {
    let bucket = tenant.drift_bucket(now, step_secs);
    if let Some((cached_bucket, config)) = cache[index] {
        if cached_bucket == bucket {
            return config;
        }
    }
    let workload = tenant.workload_at(now, step_secs);
    let best = CostModel.choose_config(&workload, pool.library());
    cache[index] = Some((bucket, best));
    best
}

/// Runs one simulation over `tenants` with `config`.
pub fn simulate(tenants: Vec<TenantSpec>, config: ServeConfig) -> TrafficReport {
    let mut sim = TrafficSim::new(tenants, config);
    sim.run()
}
